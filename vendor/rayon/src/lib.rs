//! Offline, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored because the build container has no network access.
//!
//! Supports the `into_par_iter().map(f).collect()` / `par_iter().map(f).collect()`
//! shape the workspace uses.  Work is executed on scoped OS threads (one per
//! available core, capped by the number of items) pulling items from a shared
//! queue, and results are returned **in input order** — same observable
//! semantics as real rayon's indexed parallel iterators.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Returns the number of worker threads a parallel call will use for `len` items.
///
/// Like real rayon's global pool, the `RAYON_NUM_THREADS` environment
/// variable (a positive integer) overrides the detected parallelism — the
/// workspace's determinism tests use it to prove results are identical
/// across thread counts.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator, consuming the collection.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter;

    /// Creates a parallel iterator over references into `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A parallel iterator over a materialised list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f`, to be executed in parallel on `collect`.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items the iterator will yield.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; execution happens in [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map on scoped worker threads and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Applies `f` to every item on a pool of scoped threads, preserving order.
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                match next {
                    Some((index, item)) => {
                        let out = f(item);
                        done.lock().expect("results poisoned").push((index, out));
                    }
                    None => break,
                }
            });
        }
    });

    let mut results = done.into_inner().expect("results poisoned");
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256u32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        // On a multi-core machine more than one worker participates; on a
        // single-core machine the sequential fallback is the correct answer.
        if super::current_num_threads() > 1 {
            assert!(!seen.lock().unwrap().is_empty());
        }
    }
}
