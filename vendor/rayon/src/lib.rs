//! Offline, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored because the build container has no network access.
//!
//! Supports the `into_par_iter().map(f).collect()` / `par_iter().map(f).collect()`
//! shape the workspace uses.  Work is executed on scoped OS threads (one per
//! available core, capped by the number of items) pulling items from a shared
//! queue, and results are returned **in input order** — same observable
//! semantics as real rayon's indexed parallel iterators.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Explicit worker count installed by [`set_num_threads`] (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Worker count installed by [`ThreadPool::install`] on the calling
    /// thread (0 = no pool installed).  Thread-local because parallel calls
    /// read their pool size on the thread that *issues* them, which is how
    /// nested pools (a sweep trial installing an engine pool) stay scoped.
    static POOL_NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Configures the global pool size programmatically, like real rayon's
/// `ThreadPoolBuilder::build_global`: an explicit setting takes precedence
/// over the `RAYON_NUM_THREADS` environment variable.  Passing `0` clears
/// the setting.  Calls inside a [`ThreadPool::install`] scope are still
/// governed by that pool.
pub fn set_num_threads(n: usize) {
    GLOBAL_NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Returns the number of worker threads a parallel call will use for `len` items.
///
/// Precedence mirrors real rayon: a [`ThreadPool::install`] scope on the
/// calling thread wins, then an explicit [`set_num_threads`], then the
/// `RAYON_NUM_THREADS` environment variable (a positive integer), then the
/// detected parallelism.  The workspace's determinism tests force the env
/// override to prove results are identical across thread counts.
pub fn current_num_threads() -> usize {
    let installed = POOL_NUM_THREADS.with(Cell::get);
    if installed >= 1 {
        return installed;
    }
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global >= 1 {
        return global;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for an explicitly sized [`ThreadPool`], mirroring the subset of
/// real rayon's `ThreadPoolBuilder` the workspace uses.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with no explicit thread count (the pool then
    /// resolves to the global/env/detected count at call time).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's worker count (`0` = resolve at call time).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  Infallible in this vendored subset (workers are
    /// scoped threads spawned per call, so there is nothing to pre-allocate).
    pub fn build(self) -> ThreadPool {
        ThreadPool {
            num_threads: self.num_threads,
        }
    }
}

/// An explicitly sized pool scope.  Unlike real rayon this holds no OS
/// threads — it only pins the worker count that parallel calls issued from
/// inside [`install`](Self::install) will use; the scoped worker threads are
/// spawned per call as always.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing every parallel call
    /// `op` issues from the current thread, restoring the previous pool (if
    /// any) afterwards — including on unwind.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_NUM_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_NUM_THREADS.with(|c| c.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    /// The pool's worker count (resolving a `0` builder setting at call time).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads >= 1 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Conversion into a parallel iterator, consuming the collection.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter;

    /// Creates a parallel iterator over references into `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A parallel iterator over a materialised list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f`, to be executed in parallel on `collect`.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of items the iterator will yield.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; execution happens in [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map on scoped worker threads and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Applies `f` to every item on a pool of scoped threads, preserving order.
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                match next {
                    Some((index, item)) => {
                        let out = f(item);
                        done.lock().expect("results poisoned").push((index, out));
                    }
                    None => break,
                }
            });
        }
    });

    let mut results = done.into_inner().expect("results poisoned");
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn install_scopes_the_worker_count_and_restores_it() {
        let outer = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build();
        assert_eq!(pool.current_num_threads(), 3);
        let inner = pool.install(super::current_num_threads);
        assert_eq!(inner, 3);
        // Nested installs shadow and restore like a stack.
        let nested = pool.install(|| {
            let deeper = super::ThreadPoolBuilder::new().num_threads(7).build();
            let d = deeper.install(super::current_num_threads);
            (d, super::current_num_threads())
        });
        assert_eq!(nested, (7, 3));
        assert_eq!(super::current_num_threads(), outer);
    }

    #[test]
    fn install_restores_on_unwind() {
        let outer = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new().num_threads(5).build();
        let res = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(res.is_err());
        assert_eq!(super::current_num_threads(), outer);
    }

    #[test]
    fn install_governs_parallel_calls_issued_inside() {
        // A 1-thread pool forces the sequential fallback even on multi-core
        // machines: every closure runs on the calling thread.
        let caller = std::thread::current().id();
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..64u32)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256u32)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        // On a multi-core machine more than one worker participates; on a
        // single-core machine the sequential fallback is the correct answer.
        if super::current_num_threads() > 1 {
            assert!(!seen.lock().unwrap().is_empty());
        }
    }
}
