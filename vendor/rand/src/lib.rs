//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API), vendored because the build container has no network access.
//!
//! Only the surface this workspace actually uses is provided:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool`, `fill_bytes`,
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`,
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64 (the same
//!   construction the real `SmallRng` uses on 64-bit targets),
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Everything is deterministic given a seed, on every platform, which the
//! workspace's reproducibility tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range from which [`Rng::gen_range`] can sample a single value.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to the unit interval `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is below
/// `span / 2^64`, far beyond what any test here can observe, and keeping it
/// rejection-free makes every draw cost exactly one `next_u64`).
fn below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut state = 0x6A09_E667_F3BC_C909;
                for word in &mut s {
                    *word = splitmix64(&mut state);
                }
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace treats the standard generator as the small one.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| crate::RngCore::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| crate::RngCore::next_u64(&mut b)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_only_fails_on_empty() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
    }
}
