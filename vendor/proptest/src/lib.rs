//! Offline, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest), vendored because the build
//! container has no network access.
//!
//! Supports the shape this workspace uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(20))]
//!
//!     #[test]
//!     fn my_property(n in 4usize..32, p in 0.1f64..0.9) { ... }
//! }
//! ```
//!
//! Ranges of integers and floats are the only strategies.  Each generated
//! test draws its cases from a [`rand::rngs::SmallRng`] seeded from a stable
//! hash of the test's name, so runs are fully deterministic — there is no
//! failure persistence and no shrinking; a failing case panics with the
//! sampled arguments printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic source of cases for generated property tests.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the RNG for a property, seeded from a stable hash of its name.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a: stable across platforms and compiler versions.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// Asserts a condition inside a property, printing the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines deterministic property tests over range strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut cases = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case_index in 0..config.cases {
                $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut cases);)*
                let guard = $crate::__CaseReporter {
                    name: stringify!($name),
                    case_index,
                    values: || vec![$( (stringify!($arg), format!("{:?}", $arg)) ),*],
                };
                $body
                std::mem::forget(guard);
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// Prints the sampled arguments of a failing case while unwinding.
#[doc(hidden)]
pub struct __CaseReporter<F: Fn() -> Vec<(&'static str, String)>> {
    #[doc(hidden)]
    pub name: &'static str,
    #[doc(hidden)]
    pub case_index: u32,
    #[doc(hidden)]
    pub values: F,
}

impl<F: Fn() -> Vec<(&'static str, String)>> Drop for __CaseReporter<F> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest case {} of `{}` failed with:",
                self.case_index, self.name
            );
            for (arg, value) in (self.values)() {
                eprintln!("    {arg} = {value}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Sampled values respect their ranges.
        #[test]
        fn samples_stay_in_range(n in 3usize..9, x in 0.25f64..0.75, s in 10u64..1_000) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((10..1_000).contains(&s));
        }
    }

    proptest! {
        /// The default config applies when no inner attribute is given.
        #[test]
        fn default_config_runs(k in 1u32..4) {
            prop_assert!((1..4).contains(&k));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let xs: Vec<u64> = (0..8).map(|_| a.rng().gen_range(0u64..1_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.rng().gen_range(0u64..1_000)).collect();
        assert_eq!(xs, ys);
    }
}
