//! Integration tests of the parallel scenario-sweep runner: grid coverage,
//! reproducibility of the JSON report, and the `experiments sweep` binary
//! end to end.

use gossip_bench::json::Json;
use gossip_bench::sweep::{GraphFamily, LatencyProfile, ProtocolKind, SweepSpec};

fn small_spec() -> SweepSpec {
    SweepSpec {
        families: vec![
            GraphFamily::Clique,
            GraphFamily::Cycle,
            GraphFamily::Dumbbell,
            GraphFamily::RingOfCliques,
            GraphFamily::ErdosRenyi { p: 0.35 },
        ],
        sizes: vec![8, 12],
        profiles: vec![
            LatencyProfile::AsBuilt,
            LatencyProfile::TwoLevel {
                slow: 8,
                fast_probability: 0.5,
            },
        ],
        protocols: vec![ProtocolKind::PushPull, ProtocolKind::Flooding],
        trials: 4,
        base_seed: 2024,
        dense_size_cap: None,
        heavy_size_cap: None,
        extra: Vec::new(),
    }
}

#[test]
fn sweep_report_is_byte_identical_across_runs() {
    let a = small_spec().run().to_json();
    let b = small_spec().run().to_json();
    assert_eq!(a, b, "same spec + seed must serialise identically");
}

#[test]
fn sweep_report_json_parses_and_covers_the_grid() {
    let spec = small_spec();
    let report = spec.run();
    let parsed = Json::parse(&report.to_json()).expect("report must be valid JSON");

    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("gossip-sweep/v5")
    );
    assert_eq!(
        parsed.get("trials_per_scenario").and_then(Json::as_i64),
        Some(4)
    );
    let scenarios = parsed.get("scenarios").and_then(Json::as_array).unwrap();
    assert_eq!(scenarios.len(), spec.scenario_count());
    assert_eq!(scenarios.len(), 5 * 2 * 2 * 2);

    let mut families_seen = std::collections::BTreeSet::new();
    for s in scenarios {
        families_seen.insert(s.get("family").and_then(Json::as_str).unwrap().to_string());
        let trials = s.get("trials").and_then(Json::as_i64).unwrap();
        let completed = s.get("completed").and_then(Json::as_i64).unwrap();
        assert_eq!(trials, 4);
        assert_eq!(completed, trials, "all sweep trials must disseminate");
        let median = s.get("rounds_median").and_then(Json::as_i64).unwrap();
        let p95 = s.get("rounds_p95").and_then(Json::as_i64).unwrap();
        let max = s.get("rounds_max").and_then(Json::as_i64).unwrap();
        assert!(0 < median && median <= p95 && p95 <= max);
        // v2: every push-pull/flooding cell carries the engine's
        // deterministic peak-memory figure.
        let mem = s.get("peak_mem_bytes").and_then(Json::as_i64).unwrap();
        assert!(mem > 0, "cheap protocols must report peak memory");
        // v5: fault-free cells carry an all-zero graceful-degradation
        // section with profile "none".
        assert_eq!(s.get("fault_profile").and_then(Json::as_str), Some("none"));
        assert_eq!(s.get("crashes").and_then(Json::as_i64), Some(0));
        assert_eq!(s.get("stranded_rumors_max").and_then(Json::as_i64), Some(0));
    }
    assert!(
        families_seen.len() >= 4,
        "sweep must cover at least four graph families"
    );
}

#[test]
fn per_trial_seeding_makes_random_families_vary_between_trials() {
    let spec = SweepSpec {
        families: vec![GraphFamily::ErdosRenyi { p: 0.3 }],
        sizes: vec![16],
        profiles: vec![LatencyProfile::UniformRandom { max: 10 }],
        protocols: vec![ProtocolKind::PushPull],
        trials: 8,
        base_seed: 5,
        dense_size_cap: None,
        heavy_size_cap: None,
        extra: Vec::new(),
    };
    let report = spec.run();
    let summary = &report.scenarios[0];
    // Eight independent Erdős–Rényi instances with random latencies cannot
    // all take exactly the same number of rounds.
    assert!(
        summary.rounds_min < summary.rounds_max,
        "trials must be independently seeded (min {} == max {})",
        summary.rounds_min,
        summary.rounds_max
    );
}

// The end-to-end test of the `experiments sweep` CLI lives in
// `crates/bench/tests/sweep_cli.rs`: only tests in the binary's own package
// get the `CARGO_BIN_EXE_*` guarantee that the invoked binary is fresh.
