//! Cross-crate integration tests for the paper's lower bounds (Section 3):
//! the guessing game is hard in the way Lemmas 7–8 state, the Lemma 6
//! reduction is sound, and gossip on the constructed networks (Theorems 9, 10
//! and 13) really does pay the predicted costs.

use gossip_core::push_pull;
use gossip_graph::{metrics, NodeId};
use gossip_lowerbound::gadgets;
use gossip_lowerbound::game::GuessingGame;
use gossip_lowerbound::predicates::TargetPredicate;
use gossip_lowerbound::reduction::push_pull_reduction;
use gossip_lowerbound::strategies::{play, FreshGreedy, RandomGuessing};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn average_rounds<F>(trials: u64, seed: u64, mut run: F) -> f64
where
    F: FnMut(&mut SmallRng) -> u64,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0;
    for _ in 0..trials {
        total += run(&mut rng);
    }
    total as f64 / trials as f64
}

#[test]
fn lemma7_singleton_game_scales_linearly_in_m() {
    let rounds_for = |m: usize, seed: u64| {
        average_rounds(60, seed, |rng| {
            let game = GuessingGame::new(m, TargetPredicate::Singleton, rng);
            play(game, &mut RandomGuessing, 10_000_000, rng).rounds
        })
    };
    let small = rounds_for(16, 1);
    let medium = rounds_for(64, 2);
    let large = rounds_for(128, 3);
    // Linear growth (the per-round hit probability is ~2/m, so the mean is
    // ~m/2); the averages are noisy, so only coarse ratios are asserted.
    assert!(
        medium > 2.0 * small,
        "m=16 -> {small:.1}, m=64 -> {medium:.1}"
    );
    assert!(
        large > 1.3 * medium,
        "m=64 -> {medium:.1}, m=128 -> {large:.1}"
    );
}

#[test]
fn lemma8_random_p_game_scales_inversely_in_p() {
    let rounds_for = |p: f64, seed: u64| {
        average_rounds(15, seed, |rng| {
            let game = GuessingGame::new(48, TargetPredicate::Random { p }, rng);
            play(game, &mut FreshGreedy::default(), 10_000_000, rng).rounds
        })
    };
    let dense = rounds_for(0.4, 10);
    let sparse = rounds_for(0.05, 11);
    assert!(
        sparse > 3.0 * dense,
        "p=0.4 -> {dense:.1} rounds, p=0.05 -> {sparse:.1} rounds; expected ~1/p scaling"
    );
}

#[test]
fn lemma8_random_guessing_pays_a_log_factor_over_informed_guessing() {
    let p = 0.04;
    let informed = average_rounds(12, 20, |rng| {
        let game = GuessingGame::new(64, TargetPredicate::Random { p }, rng);
        play(game, &mut FreshGreedy::default(), 10_000_000, rng).rounds
    });
    let random = average_rounds(12, 21, |rng| {
        let game = GuessingGame::new(64, TargetPredicate::Random { p }, rng);
        play(game, &mut RandomGuessing, 10_000_000, rng).rounds
    });
    assert!(
        random > 1.5 * informed,
        "random guessing ({random:.1}) should pay a log m factor over informed ({informed:.1})"
    );
}

#[test]
fn lemma6_reduction_never_needs_more_rounds_than_the_gossip_run() {
    let mut rng = SmallRng::seed_from_u64(30);
    for p in [0.3, 0.1] {
        let net =
            gadgets::gadget(10, 1, 400, TargetPredicate::Random { p }, false, &mut rng).unwrap();
        for seed in 0..4 {
            let out = push_pull_reduction(&net, seed);
            assert!(out.gossip_completed);
            let game_rounds = out
                .game_rounds
                .expect("local broadcast solved => game solved");
            assert!(
                game_rounds <= out.gossip_rounds + 1,
                "game needed {game_rounds} rounds but gossip only ran {}",
                out.gossip_rounds
            );
        }
    }
}

#[test]
fn theorem9_network_local_broadcast_grows_with_delta_despite_small_diameter() {
    let mut rng = SmallRng::seed_from_u64(40);
    let small_delta = gadgets::theorem9_network(64, 4, &mut rng).unwrap();
    let large_delta = gadgets::theorem9_network(64, 16, &mut rng).unwrap();

    let avg = |net: &gadgets::GadgetNetwork| {
        (0..4)
            .map(|s| push_pull_reduction(net, s).gossip_rounds)
            .sum::<u64>() as f64
            / 4.0
    };
    let small = avg(&small_delta);
    let large = avg(&large_delta);
    assert!(
        large > 1.5 * small,
        "local broadcast should get harder with Delta: Delta=4 -> {small:.1}, Delta=16 -> {large:.1}"
    );
}

#[test]
fn theorem10_network_has_the_claimed_diameter_and_conductance_shape() {
    let mut rng = SmallRng::seed_from_u64(50);
    let phi = 0.2;
    let ell = 4;
    let net = gadgets::theorem10_network(32, phi, ell, &mut rng).unwrap();
    // Weighted diameter O(ell): every right node has a fast edge w.h.p.
    let d = metrics::weighted_diameter(&net.graph).unwrap();
    assert!(d <= 3 * ell, "diameter {d} should be O(ell = {ell})");
    // The number of hidden fast edges concentrates around phi * n^2.
    let expected = phi * 32.0 * 32.0;
    let got = net.target.len() as f64;
    assert!(got > 0.5 * expected && got < 1.6 * expected);
}

#[test]
fn theorem10_push_pull_cost_grows_as_phi_shrinks() {
    let mut rng = SmallRng::seed_from_u64(60);
    let dense = gadgets::theorem10_network(32, 0.4, 2, &mut rng).unwrap();
    let sparse = gadgets::theorem10_network(32, 0.05, 2, &mut rng).unwrap();
    let avg = |net: &gadgets::GadgetNetwork| {
        (0..4)
            .map(|s| push_pull_reduction(net, s).gossip_rounds)
            .sum::<u64>() as f64
            / 4.0
    };
    let dense_rounds = avg(&dense);
    let sparse_rounds = avg(&sparse);
    assert!(
        sparse_rounds > 1.5 * dense_rounds,
        "phi=0.4 -> {dense_rounds:.1} rounds, phi=0.05 -> {sparse_rounds:.1} rounds"
    );
}

#[test]
fn theorem13_ring_structure_matches_the_paper() {
    let mut rng = SmallRng::seed_from_u64(70);
    let ring = gadgets::theorem13_ring(8, 5, 32, &mut rng).unwrap();
    // Observation 14: (3s-1)-regular.
    for v in ring.graph.nodes() {
        assert_eq!(ring.graph.degree(v), 3 * 5 - 1);
    }
    // Weighted diameter Θ(k/2): with one fast edge per layer pair plus
    // latency-1 cliques, crossing half the ring costs Θ(k).
    let d = metrics::weighted_diameter(&ring.graph).unwrap();
    assert!(d >= (ring.layers as u64) / 2, "diameter {d} below k/2");
    assert!(d <= 3 * ring.layers as u64 + 2, "diameter {d} above O(k)");
}

#[test]
fn theorem13_broadcast_cost_increases_with_ell_then_flattens() {
    let mut rng = SmallRng::seed_from_u64(80);
    let mut rounds = Vec::new();
    for ell in [2u64, 16, 128] {
        let ring = gadgets::theorem13_ring(5, 5, ell, &mut rng).unwrap();
        let r = push_pull::broadcast(&ring.graph, NodeId::new(0), 3);
        assert!(r.completed);
        rounds.push(r.rounds);
    }
    // Raising ell from 2 to 16 must raise the broadcast cost (the ell/phi regime).
    assert!(
        rounds[1] > rounds[0],
        "rounds {rounds:?} should increase when the slow latency grows from 2 to 16"
    );
    // The flattening towards Delta + D keeps even ell = 128 within a moderate
    // multiple of the ell = 16 cost (it cannot keep scaling linearly in ell).
    assert!(
        rounds[2] < rounds[1] * 16,
        "rounds {rounds:?}: the cost must not keep growing linearly in ell"
    );
}
