//! Thread-count invariance of the sharded engine.
//!
//! [`Simulation::run_sharded`] executes the per-round decision pass and the
//! completion-merge pass on a worker pool, but its observable behaviour is
//! defined to be *independent of the pool size*: per-(round, node) RNG
//! streams, worklist-order concatenation of shard results, and the canonical
//! (ascending destination, stable flight order) merge reduction make every
//! run a pure function of `(graph, config, protocol, seed)`.  These tests
//! pin that down: the serial driver ([`Simulation::run`]) and the sharded
//! driver at 1, 2 and 8 threads must produce **fully identical**
//! [`RunReport`]s — memory diagnostics included, since the merge machinery
//! replays the same serial walk — and identical final rumor states.
//!
//! The fault layer rides the same passes (crash surgery happens between
//! rounds, loss is drawn per flight from its own stream), so a churn-heavy
//! run must be byte-identical across thread counts too, graceful-degradation
//! section included.

use gossip_graph::{generators, Graph, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::{
    ChurnSpec, ExchangeMode, FaultPlan, RumorId, RumorSet, RunReport, ShardedProtocol, SimConfig,
    Simulation, Termination,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Thread counts every scenario is replayed under (beyond the serial
/// driver): the inline path, a small pool, and an oversubscribed pool.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs one protocol once with the serial driver and once per pool size
/// with the sharded driver, requiring full report *and* rumor-state
/// equality throughout.
fn assert_thread_invariant<P: ShardedProtocol, F: Fn() -> P>(
    g: &Graph,
    config: &SimConfig,
    make_protocol: F,
    label: &str,
) -> RunReport {
    let mut serial_sim = Simulation::new(g, config.clone());
    let serial_report = serial_sim.run(&mut make_protocol());
    let serial_rumors: Vec<RumorSet> = serial_sim.into_rumors();

    for threads in THREAD_COUNTS {
        let threaded = config.clone().threads(threads);
        let mut sim = Simulation::new(g, threaded);
        let report = sim.run_sharded(&mut make_protocol());
        // Full equality, not `semantics()`: the sharded pass must reproduce
        // the serial engine's memory diagnostics bit for bit.
        assert_eq!(
            report, serial_report,
            "{label}: report diverged at {threads} threads"
        );
        assert_eq!(
            sim.into_rumors(),
            serial_rumors,
            "{label}: rumor state diverged at {threads} threads"
        );
    }
    serial_report
}

/// A connected Erdős–Rényi instance big enough that the decision pass
/// genuinely shards (above `MIN_PAR_DECISIONS`) and each round carries
/// hundreds of completions into the merge pass.
fn mid_size_er(seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generators::erdos_renyi(700, 0.012, 1, &mut rng).unwrap();
    gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: 6 }
        .apply(&g, &mut rng)
        .unwrap()
}

#[test]
fn all_to_all_reports_are_identical_across_thread_counts() {
    let g = mid_size_er(0xA11);
    let config = SimConfig::new(41)
        .termination(Termination::AllKnowAll)
        .max_rounds(5_000);
    let report = assert_thread_invariant(&g, &config, || RandomPushPull::new(&g), "push-pull a2a");
    assert!(report.completed, "{report}");
    assert_thread_invariant(&g, &config, || RoundRobinFlood::new(&g), "flood a2a");
}

#[test]
fn one_to_all_with_forced_shadows_is_identical_across_thread_counts() {
    let g = mid_size_er(0xB22);
    let config = SimConfig::new(43)
        .termination(Termination::AllKnowRumorOf(NodeId::new(350)))
        .track_rumor(RumorId::from(350usize))
        .shadow_compaction(0)
        .max_rounds(5_000);
    let report = assert_thread_invariant(&g, &config, || RandomPushPull::new(&g), "shadowed 12a");
    assert!(report.completed, "{report}");
    assert_thread_invariant(
        &g,
        &config,
        || RoundRobinFlood::new(&g),
        "shadowed 12a flood",
    );
}

#[test]
fn blocking_mode_is_identical_across_thread_counts() {
    let g = mid_size_er(0xC33);
    let config = SimConfig::new(47)
        .termination(Termination::FixedRounds(80))
        .mode(ExchangeMode::Blocking);
    assert_thread_invariant(
        &g,
        &config,
        || RandomPushPull::new(&g),
        "blocking push-pull",
    );
    assert_thread_invariant(&g, &config, || RoundRobinFlood::new(&g), "blocking flood");
}

/// The event-driven endgame: a star driven far past saturation skips long
/// idle stretches; the skip bookkeeping must not depend on the pool size.
#[test]
fn skipping_endgame_is_identical_across_thread_counts() {
    let g = generators::star(2048, 1).unwrap();
    let config = SimConfig::new(53).termination(Termination::FixedRounds(600));
    let report = assert_thread_invariant(&g, &config, || RandomPushPull::new(&g), "skipping star");
    let mem = report.mem.unwrap();
    assert!(mem.rounds_skipped > 0, "the endgame must fast-forward");
    assert_thread_invariant(
        &g,
        &config,
        || RoundRobinFlood::new(&g),
        "skipping star flood",
    );
}

/// The churn-profile gate: crash-stop churn with amnesiac rejoins, link
/// cuts and message loss, replayed at 1 vs 4 threads (and the serial
/// driver), must agree byte for byte — fault section included.
#[test]
fn churn_profile_runs_are_identical_across_thread_counts() {
    let g = mid_size_er(0xD44);
    let spec = ChurnSpec {
        crash_permille: 100,
        rejoin_after: Some(24),
        cut_permille: 20,
        loss_ppm: 50_000,
        window: (1, 96),
    };
    let plan = FaultPlan::random_churn(&g, 0xFA17, &spec);
    let config = SimConfig::new(59)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .track_rumor(RumorId::from(0usize))
        .max_rounds(5_000)
        .faults(plan);

    let mut one_sim = Simulation::new(&g, config.clone().threads(1));
    let one = one_sim.run_sharded(&mut RandomPushPull::new(&g));
    let mut four_sim = Simulation::new(&g, config.clone().threads(4));
    let four = four_sim.run_sharded(&mut RandomPushPull::new(&g));
    assert!(
        one.faults.is_some(),
        "a churned run must report a fault section"
    );
    assert_eq!(one, four, "churned run diverged between 1 and 4 threads");
    assert_eq!(one_sim.into_rumors(), four_sim.into_rumors());

    // And the serial driver agrees with both.
    let report = assert_thread_invariant(&g, &config, || RandomPushPull::new(&g), "churn");
    assert_eq!(report, one);
    assert_thread_invariant(&g, &config, || RoundRobinFlood::new(&g), "churn flood");
}
