//! Cross-crate integration tests for the paper's upper bounds: push–pull
//! (Theorem 29), spanner broadcast (Theorem 20/25), pattern broadcast
//! (Lemmas 26–28) and the unified algorithm (Theorem 31) all complete within
//! (a constant multiple of) their claimed round bounds on a battery of graphs.

use gossip_conductance::{critical_conductance, Method};
use gossip_core::{pattern, push_pull, spanner, spanner_broadcast, unified};
use gossip_graph::{generators, metrics, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

fn battery() -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(9);
    vec![
        ("clique", generators::clique(24, 1).unwrap()),
        ("slow clique", generators::clique(16, 8).unwrap()),
        ("cycle", generators::cycle(24, 3).unwrap()),
        ("grid", generators::grid(5, 5, 2).unwrap()),
        ("star", generators::star(24, 4).unwrap()),
        ("dumbbell", generators::dumbbell(10, 32).unwrap()),
        (
            "ring of cliques",
            generators::ring_of_cliques(5, 5, 8).unwrap(),
        ),
        (
            "slow-cut expander",
            generators::slow_cut_expander(32, 6, 16, &mut rng).unwrap(),
        ),
        ("binary tree", generators::binary_tree(31, 4).unwrap()),
    ]
}

#[test]
fn push_pull_completes_within_theorem29_bound() {
    for (name, g) in battery() {
        let crit = critical_conductance(&g, Method::SweepCut).unwrap();
        let report = push_pull::broadcast(&g, NodeId::new(0), 13);
        assert!(report.completed, "{name}: push-pull did not complete");
        if crit.phi_star > 0.0 {
            let bound = crit.ell_star as f64 / crit.phi_star * log2(g.node_count());
            assert!(
                (report.rounds as f64) <= 12.0 * bound + 20.0,
                "{name}: push-pull took {} rounds, far above (ell*/phi*) log n = {bound:.1}",
                report.rounds
            );
        }
    }
}

#[test]
fn push_pull_beats_the_flooding_baseline_on_poorly_conductive_graphs() {
    // On the star, the paper's argument for push-pull needs the pull step; our
    // baseline comparison simply checks both complete and report sane numbers.
    let g = generators::star(40, 2).unwrap();
    let pp = push_pull::broadcast(&g, NodeId::new(1), 3);
    let flood = gossip_core::flooding::broadcast(&g, NodeId::new(1), 3);
    assert!(pp.completed && flood.completed);
    assert!(
        pp.rounds >= 2,
        "a latency-2 star cannot finish in under one exchange"
    );
}

#[test]
fn spanner_broadcast_completes_within_theorem25_bound() {
    for (name, g) in battery() {
        let d = metrics::weighted_diameter(&g).unwrap();
        let report = spanner_broadcast::run_known_diameter(&g, 5);
        assert!(
            report.completed,
            "{name}: spanner broadcast did not complete"
        );
        let bound = (d as f64) * log2(g.node_count()).powi(3);
        assert!(
            (report.rounds as f64) <= 12.0 * bound + 50.0,
            "{name}: spanner broadcast took {} rounds vs D log^3 n = {bound:.1}",
            report.rounds
        );
    }
}

#[test]
fn unknown_diameter_costs_at_most_a_constant_factor_more() {
    for (name, g) in [
        ("dumbbell", generators::dumbbell(8, 16).unwrap()),
        (
            "ring of cliques",
            generators::ring_of_cliques(4, 6, 8).unwrap(),
        ),
        ("grid", generators::grid(4, 6, 3).unwrap()),
    ] {
        let known = spanner_broadcast::run_known_diameter(&g, 8);
        let unknown = spanner_broadcast::run_unknown_diameter(&g, 8);
        assert!(known.completed && unknown.completed, "{name}");
        // The doubling driver pays every failed guess plus a termination check
        // per guess; the costs grow geometrically in the guess, so the total
        // stays within a moderate constant factor of the known-D run.
        assert!(
            unknown.rounds <= 12 * known.rounds + 200,
            "{name}: guess-and-double ({}) should stay within a small factor of known-D ({})",
            unknown.rounds,
            known.rounds
        );
    }
}

#[test]
fn pattern_broadcast_completes_within_lemma27_bound() {
    for (name, g) in [
        ("cycle", generators::cycle(16, 2).unwrap()),
        ("grid", generators::grid(4, 4, 3).unwrap()),
        ("dumbbell", generators::dumbbell(6, 8).unwrap()),
        (
            "ring of cliques",
            generators::ring_of_cliques(4, 4, 4).unwrap(),
        ),
    ] {
        let d = metrics::weighted_diameter(&g).unwrap().max(1);
        let report = pattern::run_known_diameter(&g, 3);
        assert!(
            report.completed,
            "{name}: pattern broadcast did not complete"
        );
        let bound = d as f64 * log2(g.node_count()).powi(2) * (d as f64).log2().max(1.0);
        assert!(
            (report.rounds as f64) <= 20.0 * bound + 50.0,
            "{name}: pattern broadcast took {} rounds vs D log^2 n log D = {bound:.1}",
            report.rounds
        );
    }
}

#[test]
fn spanner_has_logarithmic_stretch_size_and_out_degree() {
    let mut rng = SmallRng::seed_from_u64(31);
    let base = generators::erdos_renyi(80, 0.15, 1, &mut rng).unwrap();
    let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: 12 }
        .apply(&base, &mut rng)
        .unwrap();
    let s = spanner::log_spanner(&g, 17);
    let k = log2(g.node_count()).ceil() as usize;
    let stretch = s.stretch(&g).expect("spanner preserves connectivity");
    assert!(stretch <= spanner::stretch_bound(k) as f64 + 1e-9);
    assert!(s.edge_count() as f64 <= 4.0 * g.node_count() as f64 * log2(g.node_count()));
    assert!((s.max_out_degree() as f64) <= 6.0 * log2(g.node_count()));
}

#[test]
fn unified_always_matches_the_better_route() {
    for (name, g) in battery() {
        let r = unified::run_known_latencies(&g, NodeId::new(0), 21);
        assert!(r.completed, "{name}: unified run failed");
        assert_eq!(
            r.rounds,
            r.push_pull.rounds.min(r.spanner_route.rounds),
            "{name}: unified must take the minimum of the two routes"
        );
    }
}

#[test]
fn every_algorithm_disseminates_on_a_weighted_random_graph() {
    let mut rng = SmallRng::seed_from_u64(77);
    let base = generators::erdos_renyi(40, 0.2, 1, &mut rng).unwrap();
    let g = gossip_graph::latency::LatencyScheme::TwoLevel {
        fast: 1,
        slow: 24,
        fast_probability: 0.5,
    }
    .apply(&base, &mut rng)
    .unwrap();

    assert!(push_pull::broadcast(&g, NodeId::new(0), 1).completed);
    assert!(push_pull::all_to_all(&g, 1).completed);
    assert!(gossip_core::flooding::all_to_all(&g, 1).completed);
    assert!(spanner_broadcast::run_known_diameter(&g, 1).completed);
    assert!(spanner_broadcast::run_unknown_diameter(&g, 1).completed);
    assert!(pattern::run_known_diameter(&g, 1).completed);
    assert!(pattern::run_unknown_diameter(&g, 1).completed);
}
