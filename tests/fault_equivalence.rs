//! Equivalence and correctness of the deterministic fault-injection layer.
//!
//! The fault semantics (crash-stop churn, amnesiac rejoin, link cuts,
//! message loss — see `gossip_sim::FaultPlan`) are interpreted by two
//! engines: the snapshot-free [`Simulation`] with its engine surgery
//! (calendar cancellation, watermark invalidation, counter re-derivation)
//! and the snapshot-per-exchange [`ReferenceSimulation`] oracle.  Both must
//! produce **byte-identical** semantic reports — including the
//! [`FaultReport`](gossip_sim::FaultReport) graceful-degradation section —
//! and identical final rumor states, on the standard grid and on random
//! (graph, fault plan) instances.
//!
//! Also pinned here:
//!
//! * crashing an already-quiescent node is semantically invisible (the
//!   degradation section aside),
//! * a crash landing inside a victim's own `max_latency + 1` delivery
//!   window never double-adjusts a termination counter (the
//!   silent-overcount regression),
//! * residual reachability and stranded-rumor accounting agree with a
//!   brute-force recomputation at scale.

use gossip_bench::sweep::SweepSpec;
use gossip_bench::Scale;
use gossip_graph::{generators, Graph, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::reference::ReferenceSimulation;
use gossip_sim::{
    ChurnSpec, FaultPlan, Protocol, RumorId, RunReport, SimConfig, Simulation, Termination,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs one protocol under one faulted config on both engines and requires
/// identical semantic reports (fault section included) and identical final
/// rumor states.
fn assert_fault_equivalent<P: Protocol, F: Fn() -> P>(
    g: &Graph,
    config: &SimConfig,
    make_protocol: F,
    label: &str,
) -> RunReport {
    let mut new_protocol = make_protocol();
    let mut new_sim = Simulation::new(g, config.clone());
    let new_report = new_sim.run(&mut new_protocol);

    let mut ref_protocol = make_protocol();
    let mut ref_sim = ReferenceSimulation::new(g, config.clone());
    let ref_report = ref_sim.run(&mut ref_protocol);

    assert!(
        new_report.faults.is_some() && ref_report.faults.is_some(),
        "a run with an attached fault plan must report a fault section: {label}"
    );
    assert_eq!(
        new_report.semantics(),
        ref_report.semantics(),
        "report mismatch: {label}"
    );
    assert_eq!(
        new_sim.into_rumors(),
        ref_sim.into_rumors(),
        "rumor-state mismatch: {label}"
    );
    new_report
}

/// The faulted configurations equivalence is checked under.  Round caps are
/// finite because churn can strand rumors and make dissemination conditions
/// unreachable.
fn faulted_configs(seed: u64, n: usize, plan: &FaultPlan) -> Vec<(SimConfig, &'static str)> {
    vec![
        (
            SimConfig::new(seed)
                .termination(Termination::AllKnowAll)
                .max_rounds(300)
                .faults(plan.clone()),
            "all-know-all",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::AllKnowRumorOf(NodeId::new(n / 2)))
                .track_rumor(RumorId::from(n / 2))
                .max_rounds(300)
                .faults(plan.clone()),
            "one-to-all+tracking",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::LocalBroadcast(1))
                .max_rounds(300)
                .faults(plan.clone()),
            "local-broadcast",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::FixedRounds(90))
                .mode(gossip_sim::ExchangeMode::Blocking)
                .faults(plan.clone()),
            "fixed-rounds+blocking",
        ),
    ]
}

/// Seeded churn over the full Quick grid: every (family, size, profile)
/// scenario gets a seed-derived plan with crashes, rejoins, link cuts and
/// 10% message loss, and both engines must agree byte-for-byte under every
/// termination condition and both bundled protocols.
#[test]
fn engines_agree_on_seeded_churn_over_the_quick_grid() {
    let spec = SweepSpec::standard(Scale::Quick);
    let churn = ChurnSpec {
        crash_permille: 150,
        rejoin_after: Some(23),
        cut_permille: 60,
        loss_ppm: 100_000,
        window: (1, 40),
    };
    let mut checked = 0usize;
    for family in &spec.families {
        for &size in &spec.sizes {
            for profile in &spec.profiles {
                let seed = 11u64;
                let mut graph_rng = SmallRng::seed_from_u64(seed ^ 0xA11CE);
                let base = family.build(size, &mut graph_rng);
                let g = profile.apply(&base, &mut graph_rng);
                let plan = FaultPlan::random_churn(&g, seed ^ 0xFA17, &churn);
                for (config, config_label) in faulted_configs(seed, g.node_count(), &plan) {
                    let label = format!(
                        "{}/{}/{}/{}",
                        family.name(),
                        size,
                        profile.name(),
                        config_label
                    );
                    assert_fault_equivalent(
                        &g,
                        &config,
                        || RandomPushPull::new(&g),
                        &format!("push-pull {label}"),
                    );
                    assert_fault_equivalent(
                        &g,
                        &config,
                        || RoundRobinFlood::new(&g),
                        &format!("flood {label}"),
                    );
                    checked += 2;
                }
            }
        }
    }
    // 7 families x 2 sizes x 4 profiles x 4 configs x 2 protocols.
    assert_eq!(checked, 7 * 2 * 4 * 4 * 2);
}

/// An *inert* plan still produces a fault section — all zeros, full residual
/// connectivity — and changes nothing else relative to a plan-free run.
#[test]
fn inert_plan_reports_a_zeroed_degradation_section() {
    let g = generators::clique(12, 2).unwrap();
    let base = SimConfig::new(3).termination(Termination::AllKnowAll);
    let faultless = Simulation::new(&g, base.clone()).run(&mut RandomPushPull::new(&g));
    let inert =
        Simulation::new(&g, base.faults(FaultPlan::new())).run(&mut RandomPushPull::new(&g));
    assert_eq!(faultless.faults, None);
    let section = inert.faults.expect("inert plan still reports");
    assert_eq!(section.crashes, 0);
    assert_eq!(section.exchanges_lost, 0);
    assert_eq!(section.alive_nodes, 12);
    assert_eq!(section.residual_components, 1);
    assert_eq!(section.largest_component, 12);
    assert_eq!(section.stranded_rumors, 0);
    assert_eq!(section.recovery_latency, None);
    let mut stripped = inert.semantics();
    stripped.faults = None;
    assert_eq!(
        stripped,
        faultless.semantics(),
        "inert faults change nothing"
    );
}

/// The silent-overcount regression: a crash landing at the victim's own
/// delivery round — inside the `max_latency + 1` calendar window, with
/// `shadow_compaction(0)` keeping the truncation machinery busy — must
/// cancel the in-flight exchanges *before* they deliver.  A late (or
/// double) adjustment would either complete the run on a rumor that was
/// never delivered or underflow the termination counters.
#[test]
fn crash_inside_own_delivery_window_cancels_instead_of_delivering() {
    // Two nodes, one latency-3 edge: both flood toward each other at round
    // 0, both exchanges complete at round 3 — and node 1 crashes at exactly
    // round 3, so nothing may ever deliver.
    let g = generators::path(2, 3).unwrap();
    let plan = FaultPlan::new().crash(3, NodeId::new(1));
    let config = SimConfig::new(7)
        .termination(Termination::AllKnowAll)
        .shadow_compaction(0)
        .max_rounds(40)
        .faults(plan);
    let report = assert_fault_equivalent(
        &g,
        &config,
        || RoundRobinFlood::new(&g),
        "crash-at-completion-round",
    );
    assert!(!report.completed, "the only rumor source is gone");
    let section = report.faults.unwrap();
    assert_eq!(section.crashes, 1);
    assert_eq!(
        section.exchanges_cancelled, 2,
        "both in-flight exchanges touched the victim"
    );
    assert_eq!(section.stranded_rumors, 1, "rumor 1 died with node 1");
    assert_eq!(section.alive_nodes, 1);
    assert_eq!(
        report.min_rumors_known, 1,
        "no delivery may survive the cancellation"
    );

    // Same shape against a crash one round *into* the window (round 2, with
    // re-initiations in flight): still byte-identical across engines.
    let plan = FaultPlan::new().crash(2, NodeId::new(1));
    let config = SimConfig::new(7)
        .termination(Termination::AllKnowAll)
        .shadow_compaction(0)
        .max_rounds(40)
        .faults(plan);
    assert_fault_equivalent(&g, &config, || RoundRobinFlood::new(&g), "crash-mid-window");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random fault plans on random graphs: crash/rejoin/cut/loss schedules
    /// derived from a seed, applied to random Erdős–Rényi instances with
    /// random latencies, must leave both engines byte-identical under every
    /// config shape.
    #[test]
    fn random_fault_plans_leave_engines_byte_identical(
        n in 4usize..40,
        p in 0.15f64..0.9,
        max_latency in 1u64..10,
        crash_permille in 0u16..400,
        cut_permille in 0u16..300,
        // 0 = crashed nodes stay down (the vendored proptest has no
        // `option::of`; 0 stands in for `None`).
        rejoin in 0u64..30,
        // Below 50k stands in for "reliable links" so both the lossless and
        // the lossy delivery paths get real coverage.
        loss_ppm in 0u32..300_000,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        let churn = ChurnSpec {
            crash_permille,
            rejoin_after: (rejoin > 0).then_some(rejoin),
            cut_permille,
            loss_ppm: if loss_ppm < 50_000 { 0 } else { loss_ppm },
            window: (1, 35),
        };
        let plan = FaultPlan::random_churn(&g, seed, &churn);
        for (config, label) in faulted_configs(seed, g.node_count(), &plan) {
            assert_fault_equivalent(&g, &config, || RandomPushPull::new(&g), label);
            assert_fault_equivalent(&g, &config, || RoundRobinFlood::new(&g), label);
        }
    }

    /// Crashing a node whose work is provably over — after the whole
    /// network saturated and every exchange drained — changes nothing about
    /// the run's semantics except the degradation section itself: same
    /// rounds, activations, messages, informed times, and minimum final
    /// rumor count as the fault-free run.
    #[test]
    fn crashing_an_already_quiescent_node_is_semantically_invisible(
        n in 4usize..28,
        p in 0.2f64..0.9,
        max_latency in 1u64..6,
        victim in 0usize..28,
        seed in 0u64..1_000,
    ) {
        let victim = victim % n;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x901E7);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();

        // Find the round by which dissemination finished and all exchanges
        // drained; past it, every push–pull node is saturated and quiescent.
        let probe = SimConfig::new(seed).termination(Termination::AllKnowAll).max_rounds(3_000);
        let probe_report = Simulation::new(&g, probe).run(&mut RandomPushPull::new(&g));
        if !probe_report.completed {
            // Disconnected sample: skip (the vendored proptest has no
            // `prop_assume`; connected ER samples dominate at these p).
            continue;
        }
        let horizon = probe_report.rounds + g.max_latency() + 2;
        let cap = horizon + 25;

        let base = SimConfig::new(seed)
            .termination(Termination::FixedRounds(cap))
            .max_rounds(cap + 1);
        let baseline = Simulation::new(&g, base.clone()).run(&mut RandomPushPull::new(&g));

        let plan = FaultPlan::new().crash(horizon, NodeId::new(victim));
        let faulted_config = base.faults(plan);
        let report = assert_fault_equivalent(
            &g,
            &faulted_config,
            || RandomPushPull::new(&g),
            "quiescent-crash",
        );
        let section = report.faults.unwrap();
        prop_assert_eq!(section.crashes, 1);
        prop_assert_eq!(section.exchanges_cancelled, 0, "nothing was in flight");
        prop_assert_eq!(section.stranded_rumors, 0, "everyone already knew everything");
        let mut stripped = report.semantics();
        stripped.faults = None;
        prop_assert_eq!(
            stripped,
            baseline.semantics(),
            "a post-quiescence crash must not change the run"
        );
    }
}

/// Residual-reachability accounting at scale: 10% crashes on a 4096-node
/// Erdős–Rényi graph.  The engine's `FaultReport` figures — alive count,
/// residual components, largest component, stranded rumors — must agree
/// with a brute-force recomputation from the plan and the final rumor sets.
#[test]
fn residual_accounting_matches_brute_force_at_4096_nodes() {
    let mut rng = SmallRng::seed_from_u64(40);
    let g = generators::erdos_renyi(4096, 0.005, 1, &mut rng).unwrap();
    let churn = ChurnSpec {
        crash_permille: 100,
        rejoin_after: None,
        cut_permille: 20,
        loss_ppm: 0,
        window: (1, 60),
    };
    let plan = FaultPlan::random_churn(&g, 40, &churn);
    let config = SimConfig::new(9)
        .termination(Termination::FixedRounds(250))
        .faults(plan.clone());
    let mut sim = Simulation::new(&g, config);
    let report = sim.run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "fixed-round runs always complete");
    let section = report.faults.unwrap();
    assert_eq!(section.crashes, 409, "100 permille of 4096, all applied");
    assert_eq!(section.alive_nodes, 4096 - 409);
    assert!(
        section.exchanges_cancelled > 0,
        "churn mid-run cancels flights"
    );

    // Brute force: replay the plan into dead-node / cut-edge sets (every
    // event fires inside the run's 250 rounds), BFS the residual topology,
    // and union the alive rumor sets.
    let n = g.node_count();
    let mut dead = vec![false; n];
    let mut cut = vec![false; g.edge_count()];
    for &(round, event) in plan.events() {
        assert!(round < 250);
        match event {
            gossip_sim::FaultEvent::Crash(v) => dead[v.index()] = true,
            gossip_sim::FaultEvent::Rejoin(v) => dead[v.index()] = false,
            gossip_sim::FaultEvent::CutLink(e) => cut[e.index()] = true,
        }
    }
    let mut seen = vec![false; n];
    let (mut components, mut largest) = (0u64, 0u64);
    for start in 0..n {
        if dead[start] || seen[start] {
            continue;
        }
        components += 1;
        let mut size = 0u64;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            size += 1;
            for (w, e) in g.neighbors(NodeId::new(v)) {
                if !dead[w.index()] && !cut[e.index()] && !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w.index());
                }
            }
        }
        largest = largest.max(size);
    }
    assert_eq!(section.residual_components, components);
    assert_eq!(section.largest_component, largest);

    let rumors = sim.rumors();
    let mut known = vec![false; n];
    for (i, set) in rumors.iter().enumerate() {
        if dead[i] {
            continue;
        }
        for r in set.iter() {
            known[r.index()] = true;
        }
    }
    let stranded = known.iter().filter(|k| !**k).count() as u64;
    assert_eq!(section.stranded_rumors, stranded);
}
