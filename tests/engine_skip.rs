//! Calendar-ring fast-forward edge cases of the event-driven scheduler.
//!
//! When the active worklist empties, the engine jumps the round clock to the
//! next non-empty calendar bucket instead of walking empty rounds.  The ring
//! addressing (`fire time % (max_latency + 1)`) makes three situations easy
//! to get wrong, and each is pinned here against the reference engine:
//!
//! * a jump whose next event sits **exactly one full ring lap away**
//!   (bucket index == current round's bucket, the wraparound case);
//! * a **shadow-compaction lap queued during a skipped window**
//!   (`shadow_compaction(0)` forces the lap; it must fire at its exact
//!   round, not be skipped over);
//! * a **`FixedRounds` target landing inside a skipped gap** (the clock must
//!   stop exactly on the target, dropping the still-in-flight exchanges).

use gossip_graph::{generators, NodeId};
use gossip_sim::protocols::RoundRobinFlood;
use gossip_sim::reference::ReferenceSimulation;
use gossip_sim::{Activity, NodeView, Protocol, RumorId, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;

/// Fires one exchange per node at round 0, then idles forever (but only
/// promises `IdleUntilWoken`, so completions keep re-offering it the chance
/// to act — which it declines).  This leaves rounds where rumor state
/// *changed* (queueing shadow laps) but no node stays active, the exact
/// shape that exercises ring wraparound.
#[derive(Default)]
struct OneShot {
    fired: Vec<bool>,
}

impl Protocol for OneShot {
    fn name(&self) -> &'static str {
        "one-shot"
    }

    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let i = view.node.index();
        if i >= self.fired.len() {
            self.fired.resize(i + 1, false);
        }
        if self.fired[i] || view.neighbors.is_empty() {
            return None;
        }
        self.fired[i] = true;
        Some(view.neighbors[0].0)
    }

    fn activity(&self, view: &NodeView<'_>) -> Activity {
        if view.neighbors.is_empty() {
            return Activity::Quiescent;
        }
        if self.fired.get(view.node.index()).copied().unwrap_or(false) {
            Activity::IdleUntilWoken
        } else {
            Activity::Active
        }
    }
}

/// Runs one config on both engines with the given protocol constructor and
/// requires identical semantics and final rumor state; returns the engine
/// report (with its `MemStats`).
fn assert_equivalent<P: Protocol>(
    g: &gossip_graph::Graph,
    config: &SimConfig,
    mut make: impl FnMut() -> P,
) -> gossip_sim::RunReport {
    let mut new_sim = Simulation::new(g, config.clone());
    let new_report = new_sim.run(&mut make());
    let mut ref_sim = ReferenceSimulation::new(g, config.clone());
    let ref_report = ref_sim.run(&mut make());
    assert_eq!(new_report.semantics(), ref_report.semantics());
    assert_eq!(new_sim.into_rumors(), ref_sim.into_rumors());
    new_report
}

/// The wraparound case: with `OneShot` on a latency-`L` edge, the round-`L`
/// delivery changes rumor state and queues a shadow lap into bucket
/// `L % (L + 1) = L` — the *current* bucket — which therefore fires exactly
/// one full ring revolution later, at round `2L + 1`.  A jump computed with
/// a naive `(bucket - round) % ring_len = 0` delta would either spin forever
/// or fire the lap a lap early.
#[test]
fn fast_forward_wraps_across_the_ring_boundary() {
    for latency in [2u64, 5, 10] {
        let g = generators::path(2, latency).unwrap();
        let budget = 4 * latency + 8;
        let config = SimConfig::new(1)
            .termination(Termination::FixedRounds(budget))
            .shadow_compaction(0);
        let report = assert_equivalent(&g, &config, OneShot::default);
        assert_eq!(report.rounds, budget, "latency {latency}");
        assert_eq!(report.activations, 2);
        assert_eq!(report.min_rumors_known, 2, "the exchange must land");
        let mem = report.mem.unwrap();
        // The ring has latency + 1 buckets; everything after round 0 is
        // driven by at most three events (delivery at L, the wrapped shadow
        // lap at 2L + 1, the collapse lap), so nearly the whole budget is
        // skipped.
        assert!(
            mem.rounds_skipped >= budget - 8,
            "latency {latency}: skipped only {} of {budget} rounds ({mem:?})",
            mem.rounds_skipped
        );
        assert!(
            mem.rounds_simulated <= 8,
            "latency {latency}: walked {} rounds ({mem:?})",
            mem.rounds_simulated
        );
        // The shadow/collapse lap queued during the skipped window must have
        // fired: both nodes saturate at round L, so one ring lap later both
        // collapse and their logs are reclaimed.
        assert_eq!(mem.collapsed_nodes, 2, "latency {latency} ({mem:?})");
        assert_eq!(mem.live_log_runs, 0);
        assert_eq!(mem.active_final, 0);
    }
}

/// A shadow-compaction lap queued while the worklist is occupied must still
/// fire when its bucket comes up inside a *later* skipped window, truncating
/// logs at exactly the round the reference semantics imply.  Flood on a
/// two-node high-latency path: the nodes wake at each delivery, relay once,
/// and idle again, so every shadow lap fires inside a skipped stretch.
#[test]
fn shadow_lap_queued_during_a_skipped_window_fires() {
    let g = generators::path(3, 9).unwrap();
    let config = SimConfig::new(4)
        .termination(Termination::FixedRounds(200))
        .track_rumor(RumorId::from(0usize))
        .shadow_compaction(0);
    let report = assert_equivalent(&g, &config, || RoundRobinFlood::new(&g));
    assert_eq!(report.rounds, 200);
    assert_eq!(report.min_rumors_known, 3, "the path must saturate");
    let mem = report.mem.unwrap();
    assert!(mem.rounds_skipped > 100, "{mem:?}");
    // All three nodes saturate and outlive their collapse lap well before
    // round 200 — the laps fired despite landing in skipped windows.
    assert_eq!(mem.collapsed_nodes, 3, "{mem:?}");
    assert_eq!(mem.live_log_runs, 0);
    assert!(mem.truncated_runs > 0);
}

/// `FixedRounds` landing strictly inside a skipped gap: the clock must stop
/// exactly on the target — with the exchange that would have completed later
/// dropped, exactly like the reference engine that walks every round.
#[test]
fn fixed_rounds_lands_inside_a_skipped_gap() {
    let g = generators::path(2, 10).unwrap();
    let config = SimConfig::new(1).termination(Termination::FixedRounds(7));
    let report = assert_equivalent(&g, &config, || RoundRobinFlood::new(&g));
    assert_eq!(report.rounds, 7, "the clock must stop on the target");
    assert!(report.completed);
    assert_eq!(
        report.min_rumors_known, 1,
        "the latency-10 exchange was still in flight and is dropped"
    );
    let mem = report.mem.unwrap();
    // Round 0: both initiate.  Round 1: both clean, worklist empties; the
    // only calendar event (delivery at round 10) lies beyond the target, so
    // the jump is capped at 7 and rounds 2..=6 are skipped.
    assert_eq!(mem.rounds_skipped, 5, "{mem:?}");
    assert_eq!(mem.rounds_simulated, 3, "{mem:?}");
}

/// Counts down a fixed number of silent rounds per node, then reports idle.
/// The last `on_round` call *mutates protocol state the current round's
/// termination check has already consumed* — `Termination::Quiescent` must
/// still fire at the exact round boundary the reference engine sees, not be
/// overshot by a fast-forward.
struct Countdown {
    remaining: Vec<u32>,
}

impl Protocol for Countdown {
    fn name(&self) -> &'static str {
        "countdown"
    }

    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let r = &mut self.remaining[view.node.index()];
        *r = r.saturating_sub(1);
        None
    }

    fn is_idle(&self, node: NodeId) -> bool {
        self.remaining[node.index()] == 0
    }

    fn activity(&self, view: &NodeView<'_>) -> Activity {
        if self.remaining[view.node.index()] == 0 {
            Activity::IdleUntilWoken
        } else {
            Activity::Active
        }
    }
}

/// `Termination::Quiescent` depends on protocol state that the decision
/// phase can change *after* the round's termination check ran.  When the
/// worklist then empties, the engine must not fast-forward past the round
/// boundary at which the reference engine observes the quiescence.
#[test]
fn quiescent_termination_fires_at_the_reference_round_despite_skipping() {
    for rounds in [1u32, 3, 7] {
        let g = generators::path(4, 5).unwrap();
        let config = SimConfig::new(2)
            .termination(Termination::Quiescent)
            .max_rounds(100_000);
        let report = assert_equivalent(&g, &config, || Countdown {
            remaining: vec![rounds; 4],
        });
        assert!(report.completed, "countdown {rounds}");
        // The last decrement happens in round `rounds - 1`'s decision
        // phase; the reference engine sees all-idle at the next boundary.
        assert_eq!(
            u32::try_from(report.rounds).unwrap(),
            rounds,
            "countdown {rounds}"
        );
    }
}

/// The cap interaction: when nothing is in flight, nothing is queued, and no
/// node is active, the engine jumps straight to `max_rounds` — reporting the
/// identical not-completed run the reference engine reaches by spinning.
#[test]
fn empty_universe_jumps_to_the_round_cap() {
    let g = generators::path(2, 3).unwrap();
    let config = SimConfig::new(1)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .max_rounds(50_000);
    // OneShot disseminates 0's rumor to node 1 and then nothing further can
    // happen; AllKnowRumorOf(0) is satisfied at the delivery, so use a
    // protocol that never acts instead to pin the never-completing path.
    let report = assert_equivalent(&g, &config, || gossip_sim::protocols::Silent);
    assert!(!report.completed);
    assert_eq!(report.rounds, 50_000);
    let mem = report.mem.unwrap();
    assert_eq!(mem.rounds_simulated, 1, "one look is enough ({mem:?})");
    assert_eq!(mem.rounds_skipped, 49_999, "{mem:?}");
}
