//! Property-based integration tests: invariants of the simulator and the
//! dissemination algorithms on randomly generated weighted graphs.

use gossip_core::{dtg, pattern, push_pull, spanner};
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, metrics, Graph, NodeId};
use gossip_sim::protocols::RandomPushPull;
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a connected Erdős–Rényi graph with two-level latencies.
fn random_weighted_graph(n: usize, p: f64, slow: u64, fast_probability: f64, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
    LatencyScheme::TwoLevel {
        fast: 1,
        slow,
        fast_probability,
    }
    .apply(&base, &mut rng)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Push–pull always completes and never beats the physical limits: the
    /// weighted diameter for one-to-all dissemination.
    #[test]
    fn push_pull_respects_the_diameter_lower_bound(
        n in 6usize..28,
        p in 0.25f64..0.8,
        slow in 2u64..32,
        fast_probability in 0.2f64..0.9,
        seed in 0u64..500,
    ) {
        let g = random_weighted_graph(n, p, slow, fast_probability, seed);
        let d = metrics::weighted_diameter(&g).unwrap();
        let report = push_pull::broadcast(&g, NodeId::new(0), seed);
        prop_assert!(report.completed);
        // The farthest node is at distance <= D but >= the eccentricity of the
        // source; any algorithm needs at least ecc(source) rounds.
        let ecc = metrics::eccentricity(&g, NodeId::new(0)).unwrap();
        prop_assert!(report.rounds >= ecc, "finished in {} rounds below eccentricity {}", report.rounds, ecc);
        prop_assert!(ecc <= d);
    }

    /// Rumor knowledge is monotone: running more rounds never shrinks any
    /// node's rumor set.
    #[test]
    fn rumor_sets_grow_monotonically(
        n in 5usize..20,
        p in 0.3f64..0.8,
        rounds_a in 1u64..10,
        rounds_extra in 1u64..10,
        seed in 0u64..500,
    ) {
        let g = random_weighted_graph(n, p, 8, 0.5, seed);
        let run = |rounds: u64| {
            let config = SimConfig::new(seed).termination(Termination::FixedRounds(rounds));
            let mut sim = Simulation::new(&g, config);
            sim.run(&mut RandomPushPull::new(&g));
            sim.into_rumors()
        };
        let early = run(rounds_a);
        let late = run(rounds_a + rounds_extra);
        for (a, b) in early.iter().zip(&late) {
            prop_assert!(b.is_superset(a), "a later snapshot lost rumors");
        }
    }

    /// ℓ-DTG achieves exactly the local-broadcast postcondition and never
    /// activates an edge slower than its bound.
    #[test]
    fn dtg_local_broadcast_postcondition(
        n in 5usize..18,
        p in 0.3f64..0.8,
        bound in 1u64..12,
        seed in 0u64..500,
    ) {
        let g = random_weighted_graph(n, p, 10, 0.5, seed);
        let universe = g.node_count();
        let rumors: Vec<_> = (0..universe)
            .map(|i| gossip_sim::RumorSet::singleton(universe, RumorId::from(i)))
            .collect();
        let (report, final_rumors, _) = dtg::run_with_rumors(&g, bound, seed, rumors, false);
        prop_assert!(report.completed);
        prop_assert!(dtg::local_broadcast_achieved(&g, bound, &final_rumors));
    }

    /// The Baswana–Sen spanner keeps connectivity and respects the 2k-1 stretch.
    #[test]
    fn spanner_stretch_bound(
        n in 8usize..30,
        p in 0.25f64..0.7,
        max_latency in 2u64..20,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&base, &mut rng)
            .unwrap();
        let s = spanner::baswana_sen(&g, k, seed);
        let stretch = s.stretch(&g);
        prop_assert!(stretch.is_some(), "spanner disconnected the graph");
        prop_assert!(stretch.unwrap() <= (2 * k - 1) as f64 + 1e-9);
    }

    /// The pattern-broadcast schedule has length 2k-1 and uses only powers of
    /// two up to k.
    #[test]
    fn pattern_schedule_shape(k_log in 0u32..8) {
        let k = 1u64 << k_log;
        let schedule = pattern::schedule(k);
        prop_assert_eq!(schedule.len() as u64, 2 * k - 1);
        prop_assert!(schedule.iter().all(|ell| ell.is_power_of_two() && *ell <= k));
        prop_assert_eq!(schedule.iter().filter(|&&ell| ell == k).count(), 1);
        // The schedule is a palindrome.
        let reversed: Vec<_> = schedule.iter().rev().copied().collect();
        prop_assert_eq!(schedule, reversed);
    }

    /// The simulator is deterministic: identical seeds give identical reports.
    #[test]
    fn simulation_is_deterministic(
        n in 5usize..20,
        p in 0.3f64..0.8,
        seed in 0u64..500,
    ) {
        let g = random_weighted_graph(n, p, 16, 0.4, seed);
        let a = push_pull::all_to_all(&g, seed);
        let b = push_pull::all_to_all(&g, seed);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.activations, b.activations);
    }
}

#[test]
fn one_to_all_and_all_to_all_are_consistent() {
    // All-to-all dissemination is at least as hard as one-to-all from any source.
    let g = generators::ring_of_cliques(4, 5, 8).unwrap();
    let all = push_pull::all_to_all(&g, 3);
    let one = push_pull::broadcast(&g, NodeId::new(0), 3);
    assert!(all.completed && one.completed);
    assert!(
        all.rounds + 5 >= one.rounds,
        "all-to-all ({}) cannot be much faster than one-to-all ({})",
        all.rounds,
        one.rounds
    );
}
