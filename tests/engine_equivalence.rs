//! Equivalence of the snapshot-free engine and the reference engine.
//!
//! The engine rewrite (acquisition logs + calendar queue + incremental
//! termination counters) must be a pure performance change: on every scenario
//! of the standard Quick sweep grid, for three seeds, [`Simulation`] and the
//! preserved original implementation [`ReferenceSimulation`] must produce
//! **byte-identical** [`RunReport`]s and identical final rumor states, under
//! every termination condition and both exchange modes.  A proptest block
//! repeats the comparison over random Erdős–Rényi instances.
//!
//! The *mid-size* tier swaps the reference engine for the dense-bitset
//! [`OracleSimulation`] — same round-by-round semantics, `O(n · rounds)`
//! instead of per-exchange snapshot cloning — which is itself pinned
//! `semantics`-identical to the reference on the full Quick grid, and then
//! carries the equivalence proptests into the 2048+-node regime the
//! reference engine cannot reach.

use gossip_bench::sweep::SweepSpec;
use gossip_bench::Scale;
use gossip_graph::{generators, Graph, NodeId};
use gossip_sim::oracle::OracleSimulation;
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::reference::ReferenceSimulation;
use gossip_sim::{
    ExchangeMode, Protocol, RumorId, RumorSet, RunReport, ShardedProtocol, SimConfig, Simulation,
    Termination,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs one protocol under one config on both engines and requires identical
/// reports and identical final rumor sets.
///
/// Reports are compared through [`RunReport::semantics`]: the engine fills in
/// [`MemStats`](gossip_sim::MemStats) diagnostics the reference engine (by
/// design) does not have; every other field must be byte-identical.
fn assert_equivalent<P: Protocol, F: Fn() -> P>(
    g: &Graph,
    config: &SimConfig,
    make_protocol: F,
    label: &str,
) -> RunReport {
    let mut new_protocol = make_protocol();
    let mut new_sim = Simulation::new(g, config.clone());
    let new_report = new_sim.run(&mut new_protocol);

    let mut ref_protocol = make_protocol();
    let mut ref_sim = ReferenceSimulation::new(g, config.clone());
    let ref_report = ref_sim.run(&mut ref_protocol);

    assert!(
        new_report.mem.is_some() && ref_report.mem.is_none(),
        "engine reports memory diagnostics, the reference does not: {label}"
    );
    assert_eq!(
        new_report.semantics(),
        ref_report.semantics(),
        "report mismatch: {label}"
    );
    assert_eq!(
        new_sim.into_rumors(),
        ref_sim.into_rumors(),
        "rumor-state mismatch: {label}"
    );
    new_report
}

/// Runs one protocol under one config on the *sharded* engine (4 workers)
/// and on the dense-bitset oracle, requiring identical semantic reports and
/// identical final rumor sets — the mid-size analogue of
/// [`assert_equivalent`], for sizes the per-exchange-snapshot reference
/// engine cannot reach.
fn assert_oracle_equivalent<P: ShardedProtocol, F: Fn() -> P>(
    g: &Graph,
    config: &SimConfig,
    make_protocol: F,
    label: &str,
) -> RunReport {
    let mut protocol = make_protocol();
    let mut sim = Simulation::new(g, config.clone().threads(4));
    let report = sim.run_sharded(&mut protocol);

    let mut oracle_protocol = make_protocol();
    let mut oracle = OracleSimulation::new(g, config.clone());
    let oracle_report = oracle.run(&mut oracle_protocol);

    assert!(
        report.mem.is_some() && oracle_report.mem.is_none(),
        "the engine reports memory diagnostics, the oracle does not: {label}"
    );
    assert_eq!(
        report.semantics(),
        oracle_report.semantics(),
        "oracle report mismatch: {label}"
    );
    assert_eq!(
        sim.into_rumors(),
        oracle.into_rumor_sets(),
        "oracle rumor-state mismatch: {label}"
    );
    report
}

/// The configurations equivalence is checked under: every termination
/// condition plus the blocking mode.
fn configs(seed: u64, n: usize) -> Vec<(SimConfig, &'static str)> {
    vec![
        (
            SimConfig::new(seed)
                .termination(Termination::AllKnowAll)
                .max_rounds(5_000),
            "all-know-all",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::AllKnowRumorOf(NodeId::new(n / 2)))
                .track_rumor(RumorId::from(n / 2))
                .max_rounds(5_000),
            "one-to-all+tracking",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::LocalBroadcast(1))
                .max_rounds(5_000),
            "local-broadcast",
        ),
        (
            SimConfig::new(seed)
                .termination(Termination::FixedRounds(60))
                .mode(ExchangeMode::Blocking),
            "fixed-rounds+blocking",
        ),
    ]
}

/// The acceptance gate: every (scenario, seed) of the full Quick grid, three
/// seeds, both bundled protocols, all four config shapes.
#[test]
fn engines_agree_on_the_full_quick_grid() {
    let spec = SweepSpec::standard(Scale::Quick);
    let mut checked = 0usize;
    for family in &spec.families {
        for &size in &spec.sizes {
            for profile in &spec.profiles {
                for seed in [1u64, 2, 3] {
                    let mut graph_rng = SmallRng::seed_from_u64(seed ^ 0xA11CE);
                    let base = family.build(size, &mut graph_rng);
                    let g = profile.apply(&base, &mut graph_rng);
                    for (config, config_label) in configs(seed, g.node_count()) {
                        let label = format!(
                            "{}/{}/{}/seed{}/{}",
                            family.name(),
                            size,
                            profile.name(),
                            seed,
                            config_label
                        );
                        assert_equivalent(
                            &g,
                            &config,
                            || RandomPushPull::new(&g),
                            &format!("push-pull {label}"),
                        );
                        assert_equivalent(
                            &g,
                            &config,
                            || RoundRobinFlood::new(&g),
                            &format!("flood {label}"),
                        );
                        checked += 2;
                    }
                }
            }
        }
    }
    // 7 families x 2 sizes x 4 profiles x 3 seeds x 4 configs x 2 protocols.
    assert_eq!(checked, 7 * 2 * 4 * 3 * 4 * 2);
}

/// The oracle's own pin: on every scenario of the Quick grid (three seeds,
/// both protocols, all four config shapes) the dense-bitset oracle must be
/// `semantics`-identical to the preserved reference engine — so promoting
/// the oracle to the mid-size equivalence witness never weakens the chain
/// `engine == oracle == reference`.
#[test]
fn oracle_matches_reference_on_the_full_quick_grid() {
    fn oracle_vs_reference<P: Protocol, F: Fn() -> P>(
        g: &Graph,
        config: &SimConfig,
        make_protocol: F,
        label: &str,
    ) {
        let mut oracle = OracleSimulation::new(g, config.clone());
        let oracle_report = oracle.run(&mut make_protocol());
        let mut reference = ReferenceSimulation::new(g, config.clone());
        let ref_report = reference.run(&mut make_protocol());
        assert!(
            oracle_report.mem.is_none() && ref_report.mem.is_none(),
            "neither oracle reports memory diagnostics: {label}"
        );
        assert_eq!(
            oracle_report.semantics(),
            ref_report.semantics(),
            "oracle/reference report mismatch: {label}"
        );
        assert_eq!(
            oracle.into_rumor_sets(),
            reference.into_rumors(),
            "oracle/reference rumor-state mismatch: {label}"
        );
    }

    let spec = SweepSpec::standard(Scale::Quick);
    let mut checked = 0usize;
    for family in &spec.families {
        for &size in &spec.sizes {
            for profile in &spec.profiles {
                for seed in [1u64, 2, 3] {
                    let mut graph_rng = SmallRng::seed_from_u64(seed ^ 0xA11CE);
                    let base = family.build(size, &mut graph_rng);
                    let g = profile.apply(&base, &mut graph_rng);
                    for (config, config_label) in configs(seed, g.node_count()) {
                        let label = format!(
                            "oracle {}/{}/{}/seed{}/{}",
                            family.name(),
                            size,
                            profile.name(),
                            seed,
                            config_label
                        );
                        oracle_vs_reference(&g, &config, || RandomPushPull::new(&g), &label);
                        oracle_vs_reference(&g, &config, || RoundRobinFlood::new(&g), &label);
                        checked += 2;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 7 * 2 * 4 * 3 * 4 * 2);
}

/// Quiescent termination and pre-seeded rumor state go through
/// `with_rumors`, which the grid test does not exercise.
#[test]
fn engines_agree_on_quiescent_and_preseeded_state() {
    let g = generators::dumbbell(5, 7).unwrap();
    let n = g.node_count();
    let initial: Vec<RumorSet> = (0..n)
        .map(|i| {
            let mut s = RumorSet::singleton(n, RumorId::from(i));
            s.insert(RumorId::from((i + 1) % n));
            s
        })
        .collect();
    let config = SimConfig::new(5)
        .termination(Termination::Quiescent)
        .max_rounds(200);

    let mut new_sim = Simulation::with_rumors(&g, config.clone(), initial.clone());
    let new_report = new_sim.run(&mut gossip_sim::protocols::Silent);
    let mut ref_sim = ReferenceSimulation::with_rumors(&g, config, initial);
    let ref_report = ref_sim.run(&mut gossip_sim::protocols::Silent);
    assert_eq!(new_report.semantics(), ref_report.semantics());
    assert_eq!(new_sim.rumors(), ref_sim.rumors());
    assert!(new_report.completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acquisition-log merges equal bitset-snapshot merges on random graphs:
    /// random Erdős–Rényi topology, random latency cap, random seed, both
    /// protocols, every config shape.
    #[test]
    fn log_merge_equals_snapshot_merge_on_random_graphs(
        n in 4usize..48,
        p in 0.1f64..0.9,
        max_latency in 1u64..12,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        for (config, label) in configs(seed, g.node_count()) {
            let report =
                assert_equivalent(&g, &config, || RandomPushPull::new(&g), label);
            prop_assert_eq!(report.rejections, 0);
            assert_equivalent(&g, &config, || RoundRobinFlood::new(&g), label);
        }
    }

    /// The truncated-log merge path, specifically: `shadow_compaction(0)`
    /// forces every node's shadow frontier to advance (and its log to be
    /// truncated) as soon as the calendar allows, on graphs with
    /// `max_latency > 1` so snapshots genuinely straddle the frontier.  Every
    /// counter maintained inside the merge — `informed_times`, `rejections`,
    /// `min_rumors_known`, completion — must still match the reference
    /// engine, and the run must actually have exercised truncation.
    #[test]
    fn truncated_log_merges_match_reference_with_forced_shadows(
        n in 6usize..40,
        p in 0.15f64..0.9,
        max_latency in 2u64..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5AAD);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        // Latencies start at 2 so every snapshot spends at least one full
        // round in flight and genuinely straddles the shadow frontier.
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        // Long enough that shadow advancements (queued max_latency + 1 rounds
        // after each merge) happen while rumors are still spreading.
        let config = SimConfig::new(seed)
            .termination(Termination::FixedRounds(12 * g.max_latency()))
            .track_rumor(RumorId::from(n / 3))
            .shadow_compaction(0);
        let report = assert_equivalent(&g, &config, || RandomPushPull::new(&g), "forced-shadows");
        prop_assert_eq!(report.rejections, 0);
        let mem = report.mem.unwrap();
        // Truncation must genuinely have happened — through shadow
        // advancement, or through saturation collapse when the instance
        // saturates within one calendar lap (small dense samples do).
        prop_assert!(
            mem.shadow_advances > 0 || mem.collapsed_nodes > 0,
            "forced compaction must advance shadows or collapse saturated nodes"
        );
        prop_assert!(mem.truncated_runs > 0, "advancement must truncate log runs");
        assert_equivalent(&g, &config, || RoundRobinFlood::new(&g), "forced-shadows flood");
    }

    /// Saturation collapse, specifically: all-to-all on small universes with
    /// latencies ≥ 2 and a round budget far past completion, so nodes
    /// saturate mid-run, survive the `max_latency + 1` calendar lap, and get
    /// their shadow freed, their log truncated entirely, and their edges
    /// short-circuited to the `O(pages)` "peer is saturated" merge — while
    /// `shadow_compaction(0)` keeps ordinary frontier advancement busy on
    /// the not-yet-saturated nodes.  Every observable must still match the
    /// reference engine exactly, and the run must genuinely have collapsed.
    #[test]
    fn saturation_collapse_matches_reference_mid_run(
        n in 6usize..32,
        p in 0.2f64..0.9,
        max_latency in 2u64..8,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC011A);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        // Far past all-to-all completion: plenty of rounds for every node to
        // saturate *and* outlive the collapse lap, with saturated-peer
        // merges continuing to fire afterwards.
        let config = SimConfig::new(seed)
            .termination(Termination::FixedRounds(40 * g.max_latency()))
            .track_rumor(RumorId::from(n / 2))
            .shadow_compaction(0);
        let report =
            assert_equivalent(&g, &config, || RandomPushPull::new(&g), "saturation-collapse");
        prop_assert_eq!(report.rejections, 0);
        let mem = report.mem.unwrap();
        if report.min_rumors_known == n {
            // The run saturated: with 40·L rounds of slack every node also
            // outlived its collapse lap.
            prop_assert_eq!(mem.saturated_nodes, n as u64);
            prop_assert_eq!(mem.collapsed_nodes, n as u64, "saturated nodes must collapse");
            prop_assert_eq!(mem.pages_live, 0, "collapsed sets hold no dense pages");
            prop_assert_eq!(mem.live_log_runs, 0, "collapsed logs retain no runs");
        }
        prop_assert!(mem.truncated_runs > 0);
        assert_equivalent(&g, &config, || RoundRobinFlood::new(&g), "saturation-collapse flood");
    }

    /// The event-driven scheduler, specifically: sparse stars with latencies
    /// ≥ 2 and a `FixedRounds` budget far past all-to-all saturation force
    /// long windows in which every node is idle (flood: clean laps;
    /// push–pull: saturation quiescence), so the engine must *fast-forward*
    /// the round clock across empty calendar stretches — while the reference
    /// engine walks every round and asks every node.  `informed_times`,
    /// activation/rejection counters, `min_rumors_known` and the final rumor
    /// sets must all be unchanged, and the run must genuinely have skipped.
    #[test]
    fn event_skipping_matches_reference_on_sparse_stars(
        n in 4usize..40,
        max_latency in 2u64..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51C1);
        let g = generators::star(n, 1).unwrap();
        // Latencies ≥ 2 keep every exchange in flight for at least one full
        // round, so the idle windows the scheduler skips genuinely contain
        // in-flight state (and shadow laps, via shadow_compaction(0)).
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        // Far past saturation: the star saturates within a few calendar
        // laps, after which both bundled protocols go quiet and the engine
        // should jump straight to the FixedRounds target.
        let budget = (n as u64 + 30) * g.max_latency();
        let config = SimConfig::new(seed)
            .termination(Termination::FixedRounds(budget))
            .track_rumor(RumorId::from(0usize))
            .shadow_compaction(0);
        let check = |report: RunReport, label: &str| {
            prop_assert_eq!(report.rounds, budget);
            prop_assert_eq!(report.min_rumors_known, n, "the star must saturate");
            let mem = report.mem.unwrap();
            prop_assert!(
                mem.rounds_skipped > 0,
                "{label}: an idle endgame of {budget} rounds must fast-forward"
            );
            prop_assert_eq!(mem.active_final, 0, "every node ends idle or quiescent");
            // The clock accounting must tile the run exactly: every round is
            // either walked or skipped (the final break iteration is walked
            // but does not advance the clock).
            let ticks = mem.rounds_simulated + mem.rounds_skipped;
            prop_assert!(
                ticks == report.rounds || ticks == report.rounds + 1,
                "walked {} + skipped {} rounds vs clock {}",
                mem.rounds_simulated,
                mem.rounds_skipped,
                report.rounds
            );
        };
        check(
            assert_equivalent(&g, &config, || RandomPushPull::new(&g), "skip push-pull"),
            "skip push-pull",
        );
        check(
            assert_equivalent(&g, &config, || RoundRobinFlood::new(&g), "skip flood"),
            "skip flood",
        );
    }
}

// The mid-size tier: the dense-bitset oracle carries the same three
// structure-forcing equivalence arguments (shadows, collapse, skipping) into
// the 2048+-node regime, against the *sharded* engine — so each case also
// witnesses thread-count invariance of the parallel decision and merge
// passes at sizes where both genuinely fan out.  Case counts are small: each
// case runs thousands of nodes through both engines.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Shadow-forcing at mid size: sparse Erdős–Rényi (avg degree ≈ 8–12)
    /// with latencies ≥ 2 and `shadow_compaction(0)`, one-to-all.
    #[test]
    fn oracle_matches_engine_with_forced_shadows_at_mid_size(
        n in 2048usize..2600,
        max_latency in 2u64..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0A1);
        let g = generators::erdos_renyi(n, 10.0 / n as f64, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        let config = SimConfig::new(seed)
            .termination(Termination::AllKnowRumorOf(NodeId::new(n / 3)))
            .track_rumor(RumorId::from(n / 3))
            .shadow_compaction(0)
            .max_rounds(400);
        let report =
            assert_oracle_equivalent(&g, &config, || RandomPushPull::new(&g), "mid shadows");
        let mem = report.mem.unwrap();
        prop_assert!(
            mem.shadow_advances > 0,
            "forced compaction must advance shadows at this size ({mem:?})"
        );
    }

    /// Collapse-forcing at mid size: all-to-all driven past completion so
    /// nodes saturate, outlive the calendar lap, and collapse.
    #[test]
    fn oracle_matches_engine_through_saturation_collapse_at_mid_size(
        n in 2048usize..2600,
        max_latency in 2u64..5,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0B2);
        let g = generators::erdos_renyi(n, 14.0 / n as f64, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        let config = SimConfig::new(seed)
            .termination(Termination::FixedRounds(40 * g.max_latency()))
            .shadow_compaction(0);
        let report = assert_oracle_equivalent(
            &g,
            &config,
            || RandomPushPull::new(&g),
            "mid collapse",
        );
        let mem = report.mem.unwrap();
        if report.min_rumors_known == n {
            prop_assert_eq!(mem.collapsed_nodes, n as u64, "saturated nodes must collapse");
        }
        prop_assert!(mem.truncated_runs > 0);
    }

    /// Skip-forcing at mid size: a star driven far past push–pull
    /// saturation — the engine fast-forwards the idle endgame, the oracle
    /// walks every round.  Flood runs the same budget for equivalence only:
    /// the hub's round-robin lap over ~n leaves outlives any budget the
    /// oracle can walk at this size, so flood's *skipping* stays pinned by
    /// the small-size proptest above, while its sharded cursor state still
    /// gets exercised here.
    #[test]
    fn oracle_matches_engine_through_skipped_endgames_at_mid_size(
        n in 2048usize..2600,
        max_latency in 2u64..5,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0C3);
        let g = generators::star(n, 1).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 2, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        let config = SimConfig::new(seed)
            .termination(Termination::FixedRounds(600))
            .track_rumor(RumorId::from(0usize))
            .shadow_compaction(0);
        let report =
            assert_oracle_equivalent(&g, &config, || RandomPushPull::new(&g), "mid skip");
        let mem = report.mem.unwrap();
        prop_assert!(
            mem.rounds_skipped > 0,
            "the saturated endgame must fast-forward ({mem:?})"
        );
        assert_oracle_equivalent(&g, &config, || RoundRobinFlood::new(&g), "mid skip flood");
    }
}
