//! Scale gates for the snapshot-free engine: the workloads that were out of
//! reach for the snapshot-per-exchange implementation must now run — and, in
//! release mode, run fast.
//!
//! The wall-clock assertions only fire in release builds
//! (`cargo test --release`, which CI runs for this suite); debug builds still
//! execute the workloads end to end to pin correctness.

use gossip_graph::{generators, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The ISSUE acceptance gate: push–pull *all-to-all* on a 4096-node
/// Erdős–Rényi graph, single-threaded, < 5 s in release mode.
#[test]
fn push_pull_all_to_all_on_4096_node_erdos_renyi() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::erdos_renyi(4096, 0.005, 1, &mut rng).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(7).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "dissemination must finish: {report}");
    assert_eq!(report.min_rumors_known, 4096);
    #[cfg(not(debug_assertions))]
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "4096-node all-to-all took {elapsed:.2?} (budget 5s)"
    );
    let _ = elapsed;
}

/// One-to-all on a 32768-node star: past the 10^4-node mark.  Termination is
/// immediate knowledge-wise (the hub relays the source rumor in one hop), so
/// per-node state stays small and the run is dominated by scheduling — the
/// path the calendar queue keeps O(completions).
#[test]
fn one_to_all_on_a_32768_node_star() {
    let g = generators::star(32768, 1).unwrap();
    let config = SimConfig::new(3)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .track_rumor(RumorId(0));
    let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
    assert!(report.completed);
    assert!(report.rounds <= 4, "star one-to-all is O(1) rounds");
    let times = report.informed_times.unwrap();
    assert!(times.iter().all(Option::is_some));
}

/// A high-latency dumbbell at 2048 nodes: exercises the calendar queue with
/// long-lived in-flight exchanges (bridge latency 64 keeps a bucket occupied
/// for 64 rounds) and the local-broadcast deficit counters at scale.
#[test]
fn local_broadcast_on_a_2048_node_dumbbell() {
    let g = generators::dumbbell(1024, 64).unwrap();
    let config = SimConfig::new(9)
        .termination(Termination::LocalBroadcast(1))
        .max_rounds(20_000);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "{report}");
}
