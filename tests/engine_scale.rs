//! Scale gates for the snapshot-free engine: the workloads that were out of
//! reach for the snapshot-per-exchange implementation must now run — and, in
//! release mode, run fast.
//!
//! The wall-clock assertions only fire in release builds
//! (`cargo test --release`, which CI runs for this suite); debug builds still
//! execute the workloads end to end to pin correctness.

use gossip_graph::{generators, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The PR-2 acceptance gate: push–pull *all-to-all* on a 4096-node
/// Erdős–Rényi graph, single-threaded, < 5 s in release mode.  Since the
/// interval-log/shadow rework this run also exercises truncation at scale:
/// random mixing fragments the logs past the 64-run materialisation
/// threshold, so shadows must advance and reclaim runs mid-run.
#[test]
fn push_pull_all_to_all_on_4096_node_erdos_renyi() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::erdos_renyi(4096, 0.005, 1, &mut rng).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(7).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "dissemination must finish: {report}");
    assert_eq!(report.min_rumors_known, 4096);
    let mem = report.mem.unwrap();
    assert!(
        mem.shadow_advances > 0,
        "fragmented logs must trigger shadows"
    );
    assert!(mem.truncated_runs > 0, "shadow advancement must truncate");
    #[cfg(not(debug_assertions))]
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "4096-node all-to-all took {elapsed:.2?} (budget 5s)"
    );
    let _ = elapsed;
}

/// Always-on memory gate at a debug-friendly size: all-to-all on a 4096-node
/// star must stay tiny — interval runs collapse the star's bursty
/// acquisition orders to a handful of runs per node, so the dissemination
/// state is dominated by the rumor bitsets (~2 MB) and stays far below the
/// 16 MB budget asserted here.
#[test]
fn star_all_to_all_memory_stays_within_sixteen_megabytes_at_4096() {
    let g = generators::star(4096, 1).unwrap();
    let config = SimConfig::new(5).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 4096);
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 16 << 20,
        "peak {} bytes exceeds the 16 MiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    assert!(mem.rumor_set_bytes >= 4096 * (4096 / 64) * 8);
    // The whole point of interval runs: ~n log entries per node compress to
    // a handful of runs each (the hub relays ascending leaf ids; each run
    // splits only around ids learned out of order).
    assert!(
        mem.peak_log_runs < 8 * 4096,
        "star logs must compress to O(1) runs per node, got {}",
        mem.peak_log_runs
    );
}

/// THE ISSUE acceptance gate (release only — the run pushes ~10^9 word
/// operations, fine optimised, minutes unoptimised): push–pull *all-to-all*
/// on a 32768-node star, where every node ends up knowing all 32768 rumors.
/// Flat `Vec<RumorId>` acquisition logs would need `Σ|final rumor sets|`
/// entries ≈ 4 GiB; the interval-compressed logs plus delayed shadows must
/// hold the whole dissemination state under 1 GiB, measured by the engine's
/// deterministic memory counters.
#[cfg(not(debug_assertions))]
#[test]
fn push_pull_all_to_all_on_a_32768_node_star_stays_under_one_gigabyte() {
    let g = generators::star(32768, 1).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(13).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 32768, "knowledge must saturate");
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 1 << 30,
        "peak {} bytes exceeds the 1 GiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    // The rumor bitsets alone are ~128 MiB at this size; the log + shadow
    // overhead on top must be a small multiple, not the 4 GiB wall.
    assert!(
        mem.peak_log_bytes < 64 << 20,
        "interval logs must stay far below the flat-log wall, got {} bytes",
        mem.peak_log_bytes
    );
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "32768-node all-to-all took {elapsed:.2?} (budget 60s)"
    );
}

/// One-to-all on a 32768-node star: past the 10^4-node mark.  Termination is
/// immediate knowledge-wise (the hub relays the source rumor in one hop), so
/// per-node state stays small and the run is dominated by scheduling — the
/// path the calendar queue keeps O(completions).
#[test]
fn one_to_all_on_a_32768_node_star() {
    let g = generators::star(32768, 1).unwrap();
    let config = SimConfig::new(3)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .track_rumor(RumorId(0));
    let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
    assert!(report.completed);
    assert!(report.rounds <= 4, "star one-to-all is O(1) rounds");
    let times = report.informed_times.unwrap();
    assert!(times.iter().all(Option::is_some));
}

/// A high-latency dumbbell at 2048 nodes: exercises the calendar queue with
/// long-lived in-flight exchanges (bridge latency 64 keeps a bucket occupied
/// for 64 rounds) and the local-broadcast deficit counters at scale.
#[test]
fn local_broadcast_on_a_2048_node_dumbbell() {
    let g = generators::dumbbell(1024, 64).unwrap();
    let config = SimConfig::new(9)
        .termination(Termination::LocalBroadcast(1))
        .max_rounds(20_000);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "{report}");
}
