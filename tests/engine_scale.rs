//! Scale gates for the snapshot-free engine: the workloads that were out of
//! reach for the snapshot-per-exchange implementation must now run — and, in
//! release mode, run fast.
//!
//! The wall-clock assertions only fire in release builds
//! (`cargo test --release`, which CI runs for this suite); debug builds still
//! execute the workloads end to end to pin correctness.

use gossip_graph::{generators, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The PR-2 acceptance gate: push–pull *all-to-all* on a 4096-node
/// Erdős–Rényi graph, single-threaded, < 5 s in release mode.  Since the
/// interval-log/shadow rework this run also exercises truncation at scale:
/// random mixing fragments the logs past the 64-run materialisation
/// threshold, so shadows must advance and reclaim runs mid-run.
#[test]
fn push_pull_all_to_all_on_4096_node_erdos_renyi() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::erdos_renyi(4096, 0.005, 1, &mut rng).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(7).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "dissemination must finish: {report}");
    assert_eq!(report.min_rumors_known, 4096);
    let mem = report.mem.unwrap();
    assert!(
        mem.shadow_advances > 0,
        "fragmented logs must trigger shadows"
    );
    assert!(mem.truncated_runs > 0, "shadow advancement must truncate");
    #[cfg(not(debug_assertions))]
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "4096-node all-to-all took {elapsed:.2?} (budget 5s)"
    );
    let _ = elapsed;
}

/// Always-on memory gate at a debug-friendly size: all-to-all on a 4096-node
/// star must stay tiny — interval runs collapse the star's bursty
/// acquisition orders to a handful of runs per node, and the paged rumor
/// sets never materialise more than one dense page per node (most saturate
/// straight into full sentinel pages), so the whole dissemination state
/// stays far below the 16 MiB budget asserted here (a dense bitset layout
/// alone would be ~2 MiB per direction).
#[test]
fn star_all_to_all_memory_stays_within_sixteen_megabytes_at_4096() {
    let g = generators::star(4096, 1).unwrap();
    let config = SimConfig::new(5).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 4096);
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 16 << 20,
        "peak {} bytes exceeds the 16 MiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    // Paged sets: at most one dense page per node ever lives (universe 4096
    // is exactly one page), and saturated sets collapse to zero pages.
    assert!(
        mem.pages_peak <= 4096,
        "star sets need at most one dense page per node, got {}",
        mem.pages_peak
    );
    assert_eq!(
        mem.saturated_nodes, 4096,
        "all-to-all completion saturates every node"
    );
    // The whole point of interval runs: ~n log entries per node compress to
    // a handful of runs each (the hub relays ascending leaf ids; each run
    // splits only around ids learned out of order).
    assert!(
        mem.peak_log_runs < 8 * 4096,
        "star logs must compress to O(1) runs per node, got {}",
        mem.peak_log_runs
    );
}

/// Always-on saturation-collapse gate: run a small all-to-all past
/// completion (`FixedRounds` keeps the engine going) so every node
/// saturates and then survives a full calendar lap.  Every node must be
/// collapsed by the end: zero dense pages alive, zero retained log runs —
/// the collapsed state is literally free.
#[test]
fn saturated_nodes_report_zero_live_pages_and_truncated_logs() {
    let g = generators::clique(64, 3).unwrap();
    let config = SimConfig::new(11).termination(Termination::FixedRounds(120));
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert_eq!(report.min_rumors_known, 64, "the run must saturate");
    let mem = report.mem.unwrap();
    assert_eq!(mem.saturated_nodes, 64);
    assert_eq!(
        mem.collapsed_nodes, 64,
        "every saturated node must collapse one calendar lap later ({mem:?})"
    );
    assert_eq!(mem.pages_live, 0, "collapsed sets hold no dense pages");
    assert_eq!(mem.live_log_runs, 0, "collapsed logs retain no runs");
    assert!(mem.truncated_runs > 0, "collapse reclaims the log history");
    assert!(mem.pages_peak > 0, "the run did allocate pages mid-flight");
    // Always-on scheduler gate: once every node saturates, push–pull goes
    // quiescent and the remaining FixedRounds budget is fast-forwarded.
    assert!(
        mem.rounds_skipped > 0,
        "the saturated endgame must skip rounds ({mem:?})"
    );
    assert_eq!(mem.active_final, 0, "every node ends quiescent ({mem:?})");
    assert_eq!(mem.active_peak, 64, "all nodes start active ({mem:?})");
    assert!(
        mem.rounds_simulated + mem.rounds_skipped <= report.rounds + 1
            && mem.rounds_simulated + mem.rounds_skipped >= report.rounds,
        "walked + skipped rounds must tile the clock ({mem:?})"
    );
}

/// The PR-3 acceptance gate, kept under the paged layout (release only):
/// push–pull *all-to-all* on a 32768-node star, where every node ends up
/// knowing all 32768 rumors.  Flat `Vec<RumorId>` acquisition logs would
/// need ≈ 4 GiB and dense bitsets another ~270 MB; interval-compressed logs
/// plus paged, saturation-collapsing sets must hold the whole dissemination
/// state under 1 GiB (in fact tens of MB), measured by the engine's
/// deterministic memory counters.
#[cfg(not(debug_assertions))]
#[test]
fn push_pull_all_to_all_on_a_32768_node_star_stays_under_one_gigabyte() {
    let g = generators::star(32768, 1).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(13).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 32768, "knowledge must saturate");
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 1 << 30,
        "peak {} bytes exceeds the 1 GiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    // The logs + shadow overhead must stay far below the 4 GiB flat wall.
    assert!(
        mem.peak_log_bytes < 64 << 20,
        "interval logs must stay far below the flat-log wall, got {} bytes",
        mem.peak_log_bytes
    );
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "32768-node all-to-all took {elapsed:.2?} (budget 60s)"
    );
}

/// THE ISSUE acceptance gate (release only): push–pull *all-to-all* on a
/// **131072-node star** — the workload the dense-bitset layout could never
/// touch (`2·n²/8` ≈ 4.3 GiB for sets + shadows alone).  With paged sets a
/// node costs a couple of dense pages (its own singleton page, plus page 0
/// once the hub's first exchange delivers rumor 0) until a saturating merge
/// flips whole pages to the full sentinel and the set collapses to nothing;
/// with saturation collapse the logs and shadows of informed nodes are
/// freed one calendar lap later.  The deterministic peak must stay under
/// 1.5 GiB (measured: ~145 MB) and the endgame must short-circuit fast
/// enough to finish within the wall-clock budget.
#[cfg(not(debug_assertions))]
#[test]
fn push_pull_all_to_all_on_a_131072_node_star_stays_under_1_5_gigabytes() {
    let g = generators::star(131072, 1).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(17).termination(Termination::AllKnowAll);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 131072, "knowledge must saturate");
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 3 << 29,
        "peak {} bytes exceeds the 1.5 GiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    assert_eq!(mem.saturated_nodes, 131072);
    // Two dense pages per node is the ceiling on a star (own page + page 0
    // from the hub's first delivery): the saturating merge arrives as a few
    // huge consecutive runs and flips every further page straight to the
    // full sentinel — never a dense materialisation of the whole universe.
    assert!(
        mem.pages_peak <= 2 * 131072 + 64,
        "paged sets must stay near two pages per node, got {}",
        mem.pages_peak
    );
    assert!(
        elapsed < std::time::Duration::from_secs(120),
        "131072-node all-to-all took {elapsed:.2?} (budget 120s)"
    );
}

/// THE ISSUE wall-clock gate (release only): push–pull one-to-all on the
/// **131072-node star** must finish in under 2 s — and the same star driven
/// far past completion must be *event-bounded*, not round-bounded.
///
/// The second half is where the event-driven scheduler earns its keep: a
/// `FixedRounds(1_000_000)` run used to spin the full `O(n)` decision loop
/// for every one of a million rounds (measured ~30 min extrapolated at this
/// size; 191 s for 100k rounds at 65536 nodes), initiating ~10¹¹ pointless
/// saturated exchanges.  Now every node saturates within a few rounds, goes
/// [`Quiescent`](gossip_sim::Activity::Quiescent), the worklist empties, and
/// the engine fast-forwards the remaining ~10⁶ rounds in one jump — the
/// whole run is sub-second and reports `rounds_skipped > 0`.
#[cfg(not(debug_assertions))]
#[test]
fn one_to_all_on_a_131072_node_star_is_event_bounded() {
    let g = generators::star(131072, 1).unwrap();

    // (a) The < 2 s one-to-all gate.
    let started = std::time::Instant::now();
    let config = SimConfig::new(3)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .track_rumor(RumorId(0));
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "{report}");
    let times = report.informed_times.unwrap();
    assert!(times.iter().all(Option::is_some));
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "131072-node one-to-all took {elapsed:.2?} (budget 2s)"
    );

    // (b) The same star, a million rounds of budget: event-bounded work.
    let started = std::time::Instant::now();
    let config = SimConfig::new(17).termination(Termination::FixedRounds(1_000_000));
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert_eq!(report.rounds, 1_000_000);
    assert_eq!(report.min_rumors_known, 131072, "the star saturates early");
    let mem = report.mem.unwrap();
    assert!(
        mem.rounds_skipped > 990_000,
        "the quiescent endgame must fast-forward, got {mem:?}"
    );
    assert!(
        mem.rounds_simulated < 64,
        "only event rounds are walked, got {mem:?}"
    );
    assert_eq!(mem.active_final, 0, "every node ends quiescent");
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "131072-node million-round run took {elapsed:.2?} (budget 2s; \
         pre-scheduler engines needed ~half an hour)"
    );
}

/// THE PR-6 acceptance gate (release only): a *heavy* multi-phase protocol —
/// spanner broadcast, the paper's `O(D·log³ n)` algorithm — at **8192
/// nodes**, eight times past the old 1024-node cap.  Three walls had to fall
/// for this to run: the exact `O(n·m·log n)` all-pairs diameter the "known
/// D" entry point used to compute is now the constant-sweep diameter-bound
/// oracle; the RR-broadcast phase simulates over the materialised spanner
/// subgraph instead of carrying per-edge state for the full graph; and ℓ-DTG
/// no longer clones two rumor sets per initiated exchange (acquisition-log
/// replay reconstructs the snapshot semantics).  A 91×90 grid keeps the
/// diameter genuinely large (D ≈ 360), so every phase does real work.
#[cfg(not(debug_assertions))]
#[test]
fn spanner_broadcast_on_an_8192_node_grid_completes_within_budget() {
    let g = generators::grid(91, 90, 2).unwrap();
    assert!(g.node_count() >= 8190);
    let started = std::time::Instant::now();
    let report = gossip_core::spanner_broadcast::run_known_diameter(&g, 21);
    let elapsed = started.elapsed();
    assert!(report.completed, "all-to-all must saturate: {report:?}");
    assert!(report.phase_rounds("discovery") > 0);
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "8192-node spanner broadcast took {elapsed:.2?} (budget 30s; \
         the exact-diameter setup alone used to dwarf this)"
    );
}

/// THE ISSUE acceptance gate (release only): push–pull *one-to-all* on a
/// **2²⁰-node (1,048,576) star**, on the sharded engine — eight times past
/// the previous 131072-node tier.  The run is executed twice, on a 1-worker
/// and a 4-worker pool, and the two [`gossip_sim::RunReport`]s must be
/// **fully identical** (memory diagnostics included): per-(round, node) RNG
/// streams plus the canonical merge order make the report a pure function
/// of `(graph, config, seed)`, never of the pool.  On a machine with ≥ 4
/// cores the 4-worker run must also not be slower — the decision and merge
/// passes over a million-node worklist are where sharding pays.
#[cfg(not(debug_assertions))]
#[test]
fn sharded_one_to_all_on_a_million_node_star_is_thread_invariant() {
    let g = generators::star(1 << 20, 1).unwrap();
    let run = |threads: usize| {
        let config = SimConfig::new(3)
            .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
            .track_rumor(RumorId(0))
            .threads(threads);
        let started = std::time::Instant::now();
        let report = Simulation::new(&g, config).run_sharded(&mut RandomPushPull::new(&g));
        (report, started.elapsed())
    };
    let (single, single_elapsed) = run(1);
    let (pooled, pooled_elapsed) = run(4);
    assert!(single.completed, "{single}");
    assert_eq!(
        single, pooled,
        "2^20-node report must be byte-identical across thread counts"
    );
    assert!(
        single_elapsed < std::time::Duration::from_secs(60),
        "2^20-node one-to-all took {single_elapsed:.2?} single-threaded (budget 60s)"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 && single_elapsed > std::time::Duration::from_millis(500) {
        // 5% slack: "improving with threads" must hold, noise must not flake.
        assert!(
            pooled_elapsed.as_secs_f64() < single_elapsed.as_secs_f64() * 1.05,
            "4 workers ({pooled_elapsed:.2?}) must not run slower than 1 ({single_elapsed:.2?})"
        );
    }
}

/// THE ISSUE acceptance gate (release only): push–pull *all-to-all* on the
/// **2²⁰-node star** under the sharded engine — every node ends up knowing
/// all 2²⁰ rumors.  Dense bitsets would cost `2·n²/8` ≈ 275 GiB for sets and
/// shadows; the paged, saturation-collapsing layout must keep the
/// deterministic peak under 4 GiB (the transient is ~2 dense pages per node
/// before the saturating merges flip pages straight to the full sentinel),
/// and the run must finish within the wall-clock budget.
#[cfg(not(debug_assertions))]
#[test]
fn sharded_all_to_all_on_a_million_node_star_stays_within_budget() {
    let g = generators::star(1 << 20, 1).unwrap();
    let started = std::time::Instant::now();
    let config = SimConfig::new(19)
        .termination(Termination::AllKnowAll)
        .threads(4);
    let report = Simulation::new(&g, config).run_sharded(&mut RandomPushPull::new(&g));
    let elapsed = started.elapsed();
    assert!(report.completed, "{report}");
    assert_eq!(report.min_rumors_known, 1 << 20, "knowledge must saturate");
    let mem = report.mem.unwrap();
    assert!(
        mem.peak_engine_bytes < 4 << 30,
        "peak {} bytes exceeds the 4 GiB budget ({mem:?})",
        mem.peak_engine_bytes
    );
    assert_eq!(mem.saturated_nodes, 1 << 20);
    assert!(
        mem.pages_peak <= 2 * (1 << 20) + 64,
        "paged sets must stay near two pages per node, got {}",
        mem.pages_peak
    );
    assert!(
        elapsed < std::time::Duration::from_secs(600),
        "2^20-node all-to-all took {elapsed:.2?} (budget 600s)"
    );
}

/// One-to-all on a 32768-node star: past the 10^4-node mark.  Termination is
/// immediate knowledge-wise (the hub relays the source rumor in one hop), so
/// per-node state stays small and the run is dominated by scheduling — the
/// path the calendar queue keeps O(completions).
#[test]
fn one_to_all_on_a_32768_node_star() {
    let g = generators::star(32768, 1).unwrap();
    let config = SimConfig::new(3)
        .termination(Termination::AllKnowRumorOf(NodeId::new(0)))
        .track_rumor(RumorId(0));
    let report = Simulation::new(&g, config).run(&mut RoundRobinFlood::new(&g));
    assert!(report.completed);
    assert!(report.rounds <= 4, "star one-to-all is O(1) rounds");
    let times = report.informed_times.unwrap();
    assert!(times.iter().all(Option::is_some));
}

/// A high-latency dumbbell at 2048 nodes: exercises the calendar queue with
/// long-lived in-flight exchanges (bridge latency 64 keeps a bucket occupied
/// for 64 rounds) and the local-broadcast deficit counters at scale.
#[test]
fn local_broadcast_on_a_2048_node_dumbbell() {
    let g = generators::dumbbell(1024, 64).unwrap();
    let config = SimConfig::new(9)
        .termination(Termination::LocalBroadcast(1))
        .max_rounds(20_000);
    let report = Simulation::new(&g, config).run(&mut RandomPushPull::new(&g));
    assert!(report.completed, "{report}");
}
