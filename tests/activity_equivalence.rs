//! Equivalence pins for the Activity-ported gossip-core protocols.
//!
//! PR 6 ported `EllDtg` and `RrBroadcast` to the event-driven scheduler's
//! [`Activity`](gossip_sim::Activity) contract, reworked ℓ-DTG's exchange
//! bookkeeping from per-exchange rumor-set snapshots to acquisition-log
//! replay, and moved the RR-broadcast phase simulation onto the spanner
//! subgraph.  All three must be pure performance changes:
//!
//! * The reference engine never consults `activity()` and never elides an
//!   `on_round` call, so running the same protocol through [`Simulation`] and
//!   [`ReferenceSimulation`] and requiring identical
//!   [`RunReport::semantics`] plus identical final rumor state pins the
//!   ported protocols to their pre-port behavior — if retiring a node or
//!   replaying a log prefix ever changed what a node hears (or when), the
//!   two engines would diverge.
//! * RR Broadcast only ever targets spanner out-edges, so simulating it over
//!   the materialised spanner subgraph must produce the same trace as the
//!   full parent graph.

use gossip_bench::sweep::SweepSpec;
use gossip_bench::Scale;
use gossip_core::dtg::EllDtg;
use gossip_core::rr_broadcast::RrBroadcast;
use gossip_core::spanner::log_spanner;
use gossip_graph::{generators, Graph};
use gossip_sim::reference::ReferenceSimulation;
use gossip_sim::{ExchangeMode, Protocol, SimConfig, Simulation, Termination};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs one protocol under one config on both engines and requires identical
/// semantics and identical final rumor sets.
fn assert_engines_agree<P: Protocol, F: Fn() -> P>(
    g: &Graph,
    config: &SimConfig,
    make_protocol: F,
    label: &str,
) {
    let mut new_protocol = make_protocol();
    let mut new_sim = Simulation::new(g, config.clone());
    let new_report = new_sim.run(&mut new_protocol);

    let mut ref_protocol = make_protocol();
    let mut ref_sim = ReferenceSimulation::new(g, config.clone());
    let ref_report = ref_sim.run(&mut ref_protocol);

    assert_eq!(
        new_report.semantics(),
        ref_report.semantics(),
        "report mismatch: {label}"
    );
    assert_eq!(
        new_sim.into_rumors(),
        ref_sim.into_rumors(),
        "rumor-state mismatch: {label}"
    );
}

/// ℓ-DTG's driver configuration: quiescence-terminated, generously capped.
fn dtg_config(seed: u64, mode: ExchangeMode) -> SimConfig {
    SimConfig::new(seed)
        .termination(Termination::Quiescent)
        .mode(mode)
        .max_rounds(20_000)
}

/// The acceptance gate: `EllDtg` agrees with the reference engine on every
/// scenario of the Quick sweep grid, both exchange modes, three seeds.
#[test]
fn ell_dtg_matches_reference_on_the_quick_grid() {
    let spec = SweepSpec::standard(Scale::Quick);
    for family in &spec.families {
        for &size in &spec.sizes {
            for profile in &spec.profiles {
                for seed in [1u64, 2, 3] {
                    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD7C);
                    let base = family.build(size, &mut rng);
                    let g = profile.apply(&base, &mut rng);
                    // ℓ = max latency admits every edge; ℓ = 1 exercises the
                    // latency filter (nodes whose edges are all slow retire
                    // immediately).
                    for bound in [1, g.max_latency()] {
                        for mode in [ExchangeMode::Blocking, ExchangeMode::NonBlocking] {
                            let label = format!(
                                "{}/{}/{}/seed{seed}/ell={bound}/{mode:?}",
                                family.name(),
                                size,
                                profile.name(),
                            );
                            assert_engines_agree(
                                &g,
                                &dtg_config(seed, mode),
                                || EllDtg::new(&g, bound),
                                &label,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `RrBroadcast` agrees with the reference engine on every scenario of the
/// Quick sweep grid (simulated, as in production, over the spanner subgraph).
#[test]
fn rr_broadcast_matches_reference_on_the_quick_grid() {
    let spec = SweepSpec::standard(Scale::Quick);
    for family in &spec.families {
        for &size in &spec.sizes {
            for profile in &spec.profiles {
                for seed in [1u64, 2, 3] {
                    let mut rng = SmallRng::seed_from_u64(seed ^ 0x44B);
                    let base = family.build(size, &mut rng);
                    let g = profile.apply(&base, &mut rng);
                    let spanner = log_spanner(&g, seed);
                    let k = g.max_latency().saturating_mul(8);
                    let sub = spanner.to_graph(&g).unwrap();
                    let config = SimConfig::new(seed)
                        .termination(Termination::AllKnowAll)
                        .max_rounds(20_000);
                    let label =
                        format!("{}/{}/{}/seed{seed}", family.name(), size, profile.name(),);
                    assert_engines_agree(
                        &sub,
                        &config,
                        || RrBroadcast::new(&g, &spanner, k),
                        &label,
                    );
                }
            }
        }
    }
}

/// The spanner-subgraph phase simulation is trace-identical to simulating
/// over the full parent graph: RR Broadcast can only ever target spanner
/// out-edges, so shrinking the engine's edge state must not change rounds,
/// activations, completion, or what any node hears.
#[test]
fn rr_broadcast_subgraph_simulation_equals_full_graph_simulation() {
    for (g, seed) in [
        (generators::clique(32, 1).unwrap(), 3u64),
        (generators::dumbbell(8, 12).unwrap(), 5),
        (generators::ring_of_cliques(4, 5, 6).unwrap(), 7),
        (generators::grid(6, 6, 2).unwrap(), 9),
    ] {
        let spanner = log_spanner(&g, seed);
        let k = g.max_latency().saturating_mul(8);
        let sub = spanner.to_graph(&g).unwrap();
        let config = SimConfig::new(seed)
            .termination(Termination::AllKnowAll)
            .max_rounds(20_000);

        let mut full_protocol = RrBroadcast::new(&g, &spanner, k);
        let mut full_sim = Simulation::new(&g, config.clone());
        let full_report = full_sim.run(&mut full_protocol);

        let mut sub_protocol = RrBroadcast::new(&g, &spanner, k);
        let mut sub_sim = Simulation::new(&sub, config);
        let sub_report = sub_sim.run(&mut sub_protocol);

        assert_eq!(
            full_report.semantics(),
            sub_report.semantics(),
            "trace mismatch on {} nodes",
            g.node_count()
        );
        assert_eq!(full_sim.into_rumors(), sub_sim.into_rumors());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Log-replay ℓ-DTG equals the reference engine on random weighted
    /// Erdős–Rényi instances, both exchange modes.
    #[test]
    fn ell_dtg_matches_reference_on_random_graphs(
        n in 4usize..40,
        p in 0.1f64..0.9,
        max_latency in 1u64..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE11);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        let bound = 1 + seed % max_latency;
        for mode in [ExchangeMode::Blocking, ExchangeMode::NonBlocking] {
            assert_engines_agree(
                &g,
                &dtg_config(seed, mode),
                || EllDtg::new(&g, bound),
                &format!("random n={n} ell={bound} {mode:?}"),
            );
        }
    }
}
