//! Cross-crate integration test for Theorem 5: the relation between the
//! critical weighted conductance and the average weighted conductance holds
//! (exactly) on every graph family the generators can produce, across latency
//! schemes, including property-based random instances.

use gossip_conductance::{analyze, average_conductance, critical_conductance, Method};
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn exact_families() -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(5);
    vec![
        ("clique", generators::clique(8, 1).unwrap()),
        ("clique slow", generators::clique(6, 9).unwrap()),
        ("cycle", generators::cycle(10, 3).unwrap()),
        ("path", generators::path(9, 5).unwrap()),
        ("star", generators::star(10, 2).unwrap()),
        ("grid", generators::grid(3, 4, 2).unwrap()),
        ("binary tree", generators::binary_tree(12, 4).unwrap()),
        ("dumbbell", generators::dumbbell(5, 16).unwrap()),
        (
            "ring of cliques",
            generators::ring_of_cliques(3, 4, 8).unwrap(),
        ),
        (
            "erdos-renyi",
            generators::erdos_renyi(12, 0.3, 2, &mut rng).unwrap(),
        ),
        (
            "random regular",
            generators::random_regular(12, 4, 6, &mut rng).unwrap(),
        ),
        (
            "complete bipartite",
            generators::complete_bipartite(5, 6, 7).unwrap(),
        ),
    ]
}

#[test]
fn theorem5_holds_exactly_on_all_small_families() {
    for (name, g) in exact_families() {
        let report = analyze(&g, Method::Exact).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.theorem5_holds(),
            "{name}: phi*/(2l*) = {} <= phi_avg = {} <= L phi*/l* = {} violated",
            report.theorem5_lower(),
            report.phi_avg,
            report.theorem5_upper()
        );
        // phi* is positive for connected graphs and ell* is a real latency of the graph.
        assert!(
            report.phi_star > 0.0,
            "{name}: phi* must be positive on a connected graph"
        );
        assert!(
            g.distinct_latencies().contains(&report.ell_star),
            "{name}: ell* = {} is not a latency of the graph",
            report.ell_star
        );
    }
}

#[test]
fn unit_latency_graphs_reduce_to_classical_conductance() {
    // For unit latencies, phi* equals the classical conductance and phi_avg is
    // exactly half of it (remarks after Definitions 2 and 4).
    for (name, g) in [
        ("clique", generators::clique(7, 1).unwrap()),
        ("cycle", generators::cycle(9, 1).unwrap()),
        ("grid", generators::grid(3, 3, 1).unwrap()),
    ] {
        let report = analyze(&g, Method::Exact).unwrap();
        assert_eq!(report.ell_star, 1, "{name}");
        assert!(
            (report.phi_star - report.phi_classical).abs() < 1e-12,
            "{name}"
        );
        assert!(
            (report.phi_avg - report.phi_star / 2.0).abs() < 1e-12,
            "{name}"
        );
    }
}

#[test]
fn latency_scaling_leaves_phi_star_but_scales_the_ratio() {
    // Doubling every latency doubles ell* and leaves phi* unchanged (the cut
    // structure is identical), so phi*/ell* halves.
    let base = generators::dumbbell(4, 8).unwrap();
    let mut b = gossip_graph::GraphBuilder::new(base.node_count());
    for rec in base.edges() {
        b.add_edge(rec.u.index(), rec.v.index(), rec.latency * 2)
            .unwrap();
    }
    let doubled = b.build().unwrap();

    let a = critical_conductance(&base, Method::Exact).unwrap();
    let b = critical_conductance(&doubled, Method::Exact).unwrap();
    assert!((a.phi_star - b.phi_star).abs() < 1e-12);
    assert_eq!(b.ell_star, a.ell_star * 2);
}

/// A reproduction finding: the *upper* bound of Theorem 5 as literally stated
/// (`φ_avg ≤ L·φ*/ℓ*`) can be violated by a small constant factor.
///
/// The 5-node tree below has edges `0–3` and `0–4` of latency 1 and edges
/// `1–3`, `2–4` of latency 11.  Exact enumeration gives `φ* = 1/3` at
/// `ℓ* = 11`, `L = 2`, so the claimed upper bound is `2/33 ≈ 0.0606`; but the
/// cut `({1}, rest)` has average cut conductance `1/16 = 0.0625 > 0.0606`.
/// The gap comes from the proof comparing the cut-level ratio
/// `φ_{2^i}(C)/2^i` against the graph-level optimum `φ*/ℓ*`.  The violation is
/// small (the bound holds within a factor 2 in every instance we generated),
/// so the qualitative relationship the paper uses downstream is unaffected.
#[test]
fn theorem5_upper_bound_counterexample() {
    let mut b = gossip_graph::GraphBuilder::new(5);
    b.add_edge(0, 3, 1).unwrap();
    b.add_edge(0, 4, 1).unwrap();
    b.add_edge(1, 3, 11).unwrap();
    b.add_edge(2, 4, 11).unwrap();
    let g = b.build().unwrap();

    let report = analyze(&g, Method::Exact).unwrap();
    assert!((report.phi_star - 1.0 / 3.0).abs() < 1e-12);
    assert_eq!(report.ell_star, 11);
    assert_eq!(report.nonempty_classes, 2);
    assert!((report.phi_avg - 1.0 / 16.0).abs() < 1e-12);
    // The literal upper bound is violated ...
    assert!(report.phi_avg > report.theorem5_upper());
    assert!(!report.theorem5_holds());
    // ... but only barely: a factor-2 tolerance absorbs it, and the lower
    // bound holds exactly.
    assert!(report.theorem5_holds_with_tolerance(1.0));
    assert!(report.theorem5_lower() <= report.phi_avg);
}

#[test]
fn sweep_estimates_never_undershoot_exact_values() {
    for (name, g) in exact_families() {
        let exact_phi = average_conductance(&g, Method::Exact).unwrap();
        let sweep_phi = average_conductance(&g, Method::SweepCut).unwrap();
        assert!(
            sweep_phi >= exact_phi - 1e-9,
            "{name}: sweep phi_avg {sweep_phi} below exact {exact_phi}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5 on random Erdős–Rényi graphs with random two-level latencies.
    ///
    /// The *lower* bound `φ*/(2ℓ*) ≤ φ_avg` is checked exactly.  The *upper*
    /// bound is checked with a factor-4 tolerance: the paper's proof of the
    /// upper bound compares a cut-level ratio against the graph-level optimum
    /// and small instances can violate the literal statement by a constant
    /// factor (see `theorem5_upper_bound_counterexample` below and the note
    /// in EXPERIMENTS.md).  The worst case we have observed is a 7-node tree
    /// with a leaf behind a latency-32 edge at ratio 2.5 (`φ* = 1/5` at
    /// `ℓ* = 32`, `L = 2`, `φ_avg = 1/32 > 2·φ*/ℓ* = 1/80`); a factor 4
    /// absorbs it with margin.
    #[test]
    fn theorem5_on_random_graphs(
        n in 4usize..11,
        p in 0.2f64..0.9,
        slow in 2u64..64,
        fast_probability in 0.1f64..0.9,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let scheme = LatencyScheme::TwoLevel { fast: 1, slow, fast_probability };
        let g = scheme.apply(&base, &mut rng).unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        // Lower bound: exact.
        prop_assert!(report.theorem5_lower() <= report.phi_avg + 1e-9);
        // Upper bound: within a factor of 4.
        prop_assert!(
            report.theorem5_holds_with_tolerance(3.0),
            "phi_avg = {} above 4x the literal upper bound {}",
            report.phi_avg,
            report.theorem5_upper()
        );
        // phi_ell is monotone in ell, so the profile must be sorted by value.
        for w in report.profile.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    /// The critical latency is always one of the graph's latencies and the
    /// critical ratio dominates every other threshold's ratio.
    #[test]
    fn critical_ratio_is_maximal(
        n in 4usize..10,
        bridge in 2u64..100,
    ) {
        let g = generators::dumbbell(n, bridge).unwrap();
        let crit = critical_conductance(&g, Method::Exact).unwrap();
        let best_ratio = crit.phi_star / crit.ell_star as f64;
        for (ell, phi) in &crit.profile {
            prop_assert!(best_ratio >= phi / *ell as f64 - 1e-12);
        }
    }
}
