//! Smoke tests: every example compiles (guaranteed by being a Cargo example
//! target of this crate) *and* runs to completion with non-empty output.
//!
//! `cargo test` builds all of a package's targets — examples included —
//! before any test executes, so the binaries are present next to the test
//! executable by the time these tests run.

use gossip_tests::example_binary;

fn run_example(name: &str) {
    let Some(path) = example_binary(name) else {
        panic!(
            "example binary '{name}' not found — run via `cargo test` so the \
             workspace's example targets are built first"
        );
    };
    let output = std::process::Command::new(&path)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
    assert!(
        output.status.success(),
        "example '{name}' exited with {:?}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.stdout.is_empty(),
        "example '{name}' should print something to stdout"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn p2p_overlay_runs() {
    run_example("p2p_overlay");
}

#[test]
fn datacenter_replication_runs() {
    run_example("datacenter_replication");
}

#[test]
fn sensor_field_runs() {
    run_example("sensor_field");
}

#[test]
fn lower_bound_game_runs() {
    run_example("lower_bound_game");
}
