//! Reproducibility: the simulator and every dissemination algorithm are
//! deterministic functions of (graph, seed).  Same `SimConfig` seed ⇒
//! identical `RunReport`, bit for bit, on repeated runs.

use gossip_core::{pattern, push_pull, spanner_broadcast, unified};
use gossip_graph::{generators, NodeId};
use gossip_sim::protocols::RandomPushPull;
use gossip_sim::{SimConfig, Simulation, Termination};

#[test]
fn engine_push_pull_is_deterministic_on_the_dumbbell() {
    let g = generators::dumbbell(8, 64).unwrap();
    let run = |seed: u64| {
        let config = SimConfig::new(seed).termination(Termination::AllKnowAll);
        let mut sim = Simulation::new(&g, config);
        let report = sim.run(&mut RandomPushPull::new(&g));
        (report, sim.into_rumors())
    };
    let (report_a, rumors_a) = run(11);
    let (report_b, rumors_b) = run(11);
    assert_eq!(
        report_a, report_b,
        "same seed must give identical RunReports"
    );
    assert_eq!(
        rumors_a, rumors_b,
        "same seed must give identical final rumor sets"
    );
}

#[test]
fn engine_fixed_round_snapshots_are_deterministic() {
    let g = generators::dumbbell(6, 16).unwrap();
    let run = |seed: u64| {
        let config = SimConfig::new(seed).termination(Termination::FixedRounds(25));
        let mut sim = Simulation::new(&g, config);
        sim.run(&mut RandomPushPull::new(&g))
    };
    for seed in [0, 1, 7, 1000] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}

#[test]
fn push_pull_broadcast_report_is_deterministic() {
    let g = generators::dumbbell(8, 32).unwrap();
    let a = push_pull::broadcast(&g, NodeId::new(0), 5);
    let b = push_pull::broadcast(&g, NodeId::new(0), 5);
    assert_eq!(a, b);
    assert!(a.completed);
}

#[test]
fn spanner_broadcast_report_is_deterministic() {
    let g = generators::dumbbell(8, 32).unwrap();
    let a = spanner_broadcast::run_known_diameter(&g, 5);
    let b = spanner_broadcast::run_known_diameter(&g, 5);
    assert_eq!(a, b);
    assert!(a.completed);

    let a = spanner_broadcast::run_unknown_diameter(&g, 5);
    let b = spanner_broadcast::run_unknown_diameter(&g, 5);
    assert_eq!(a, b);
}

#[test]
fn pattern_and_unified_reports_are_deterministic() {
    let g = generators::dumbbell(6, 16).unwrap();
    assert_eq!(
        pattern::run_known_diameter(&g, 9),
        pattern::run_known_diameter(&g, 9)
    );

    let a = unified::run_known_latencies(&g, NodeId::new(0), 9);
    let b = unified::run_known_latencies(&g, NodeId::new(0), 9);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.push_pull, b.push_pull);
    assert_eq!(a.spanner_route, b.spanner_route);
}

#[test]
fn determinism_holds_on_a_random_weighted_graph_too() {
    use gossip_graph::latency::LatencyScheme;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let build = || {
        let mut rng = SmallRng::seed_from_u64(123);
        let base = generators::erdos_renyi(20, 0.3, 1, &mut rng).unwrap();
        LatencyScheme::TwoLevel {
            fast: 1,
            slow: 12,
            fast_probability: 0.4,
        }
        .apply(&base, &mut rng)
        .unwrap()
    };
    let g1 = build();
    let g2 = build();
    assert_eq!(g1.node_count(), g2.node_count());
    assert_eq!(g1.edge_count(), g2.edge_count());
    for (a, b) in g1.edges().zip(g2.edges()) {
        assert_eq!((a.u, a.v, a.latency), (b.u, b.v, b.latency));
    }
    assert_eq!(
        push_pull::broadcast(&g1, NodeId::new(0), 2),
        push_pull::broadcast(&g2, NodeId::new(0), 2)
    );
}
