//! Regression pins for the gossip-lint determinism audit (PR 7).
//!
//! The audit converted the lower-bound machinery's `HashSet`s to `BTreeSet`
//! (target sets are iterated when wiring gadget cross edges and when
//! checking game progress) and the sweep topology cache to ordered
//! containers.  No *live* observable-ordering bug existed at audit time —
//! PR 1 fixed the known spanner one — but the hash types made that an
//! accident of the current call sites.  These tests pin the invariant the
//! conversion guarantees: results are byte-identical for **any permutation
//! of insertion order**, so a future call site that feeds these structures
//! in a different order cannot re-introduce the PR 1 bug class.

use std::collections::BTreeSet;

use gossip_lowerbound::gadgets::gadget_with_target;
use gossip_lowerbound::game::{GuessingGame, Pair};
use gossip_lowerbound::reduction::push_pull_reduction;

/// The target pairs used throughout, in a fixed canonical order.
fn target_pairs() -> Vec<Pair> {
    vec![
        (0, 3),
        (1, 1),
        (2, 0),
        (3, 2),
        (4, 4),
        (5, 0),
        (6, 6),
        (7, 5),
    ]
}

/// A deterministic permutation of `pairs` (reversed, then rotated) — a
/// different *insertion order* for the same set.
fn permuted(pairs: &[Pair]) -> Vec<Pair> {
    let mut p: Vec<Pair> = pairs.iter().rev().copied().collect();
    p.rotate_left(3);
    p
}

#[test]
fn gadget_is_identical_across_target_insertion_orders() {
    let canonical = target_pairs();
    let shuffled = permuted(&canonical);
    assert_ne!(canonical, shuffled, "permutation must differ");

    let a = gadget_with_target(8, 1, 100, canonical.into_iter().collect(), false)
        .expect("canonical gadget");
    let b = gadget_with_target(8, 1, 100, shuffled.into_iter().collect(), false)
        .expect("permuted gadget");

    // The graph (node count, edge list *in order*, latencies) must be
    // byte-identical, not merely isomorphic: the edge list order feeds the
    // simulation schedule.
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.target, b.target);

    let edges_a: Vec<_> = a.graph.edges().collect();
    let edges_b: Vec<_> = b.graph.edges().collect();
    assert_eq!(edges_a, edges_b);
}

#[test]
fn reduction_transcript_is_identical_across_target_insertion_orders() {
    let canonical = target_pairs();
    let shuffled = permuted(&canonical);

    let a = gadget_with_target(8, 1, 100, canonical.into_iter().collect(), false)
        .expect("canonical gadget");
    let b = gadget_with_target(8, 1, 100, shuffled.into_iter().collect(), false)
        .expect("permuted gadget");

    for seed in [1u64, 7, 42] {
        let out_a = push_pull_reduction(&a, seed);
        let out_b = push_pull_reduction(&b, seed);
        assert_eq!(
            out_a, out_b,
            "reduction outcome diverged across insertion orders at seed {seed}"
        );
    }
}

#[test]
fn guessing_game_progress_is_identical_across_target_insertion_orders() {
    let canonical = target_pairs();
    let shuffled = permuted(&canonical);

    let mut game_a = GuessingGame::with_target(8, canonical.iter().copied().collect());
    let mut game_b = GuessingGame::with_target(8, shuffled.iter().copied().collect());

    // Submit the same guess batches; the per-round hit bookkeeping iterates
    // the target set, so its order must not depend on insertion order.
    let batches: Vec<Vec<Pair>> = vec![
        vec![(0, 3), (7, 7)],
        vec![(1, 1), (2, 0), (2, 1)],
        vec![(3, 2), (4, 4), (5, 0)],
        vec![(6, 6), (7, 5)],
    ];
    for batch in &batches {
        let hits_a = game_a.submit(batch);
        let hits_b = game_b.submit(batch);
        assert_eq!(hits_a, hits_b, "per-round hit lists must be identical");
        assert_eq!(game_a.is_solved(), game_b.is_solved());
        assert_eq!(
            game_a.remaining_target_size(),
            game_b.remaining_target_size()
        );
    }
    assert!(game_a.is_solved(), "all target pairs were guessed");
}

#[test]
fn btreeset_target_iteration_order_is_sorted() {
    // The property the audit's type conversion rests on, stated directly.
    let set: BTreeSet<Pair> = permuted(&target_pairs()).into_iter().collect();
    let iterated: Vec<Pair> = set.iter().copied().collect();
    let mut sorted = target_pairs();
    sorted.sort_unstable();
    assert_eq!(iterated, sorted);
}
