//! Quickstart: build a weighted graph, measure its weighted conductance, and
//! compare the paper's dissemination algorithms on it.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gossip_conductance::{analyze, Method};
use gossip_core::{pattern, push_pull, spanner_broadcast, unified};
use gossip_graph::{generators, metrics, NodeId};

fn main() {
    // A network that motivates the paper: two well-connected clusters (think
    // two racks or two regions) joined by a single slow link.
    let g = generators::dumbbell(8, 64).expect("valid parameters");
    let summary = metrics::summarize(&g);
    println!("graph: dumbbell of two 8-cliques, bridge latency 64");
    // Small graph, so the summary's diameter estimates are exact.
    println!(
        "  n = {}, m = {}, max degree = {}, weighted diameter = {:?}, hop diameter = {:?}",
        summary.nodes,
        summary.edges,
        summary.max_degree,
        summary.weighted_diameter.map(|e| e.upper),
        summary.hop_diameter.map(|e| e.upper)
    );

    // Section 2: the weighted-conductance profile of the graph.
    let conductance = analyze(&g, Method::Exact).expect("graph is small enough for exact");
    println!("\nweighted conductance (Section 2):");
    println!(
        "  phi*      = {:.4}   (critical weighted conductance)",
        conductance.phi_star
    );
    println!(
        "  ell*      = {}       (critical latency)",
        conductance.ell_star
    );
    println!(
        "  phi_avg   = {:.4}   (average weighted conductance)",
        conductance.phi_avg
    );
    println!(
        "  Theorem 5: {:.4} <= {:.4} <= {:.4}  ({})",
        conductance.theorem5_lower(),
        conductance.phi_avg,
        conductance.theorem5_upper(),
        if conductance.theorem5_holds() {
            "holds"
        } else {
            "violated!"
        }
    );

    // Sections 4-6: the dissemination algorithms.
    let source = NodeId::new(0);
    println!("\ninformation dissemination from node {source}:");

    let pp = push_pull::broadcast(&g, source, 7);
    println!(
        "  push-pull (Thm 29):            {:>6} rounds (completed: {})",
        pp.rounds, pp.completed
    );

    let sb = spanner_broadcast::run_known_diameter(&g, 7);
    println!(
        "  spanner broadcast (Thm 20/25): {:>6} rounds (completed: {})",
        sb.rounds, sb.completed
    );

    let pb = pattern::run_known_diameter(&g, 7);
    println!(
        "  pattern broadcast (Lem 26-28): {:>6} rounds (completed: {})",
        pb.rounds, pb.completed
    );

    let uni = unified::run_known_latencies(&g, source, 7);
    println!(
        "  unified (Thm 31):              {:>6} rounds, winner = {:?}",
        uni.rounds, uni.winner
    );

    println!("\nThe slow bridge makes the critical latency large, so the spanner/pattern");
    println!("route (which pays O(D polylog n)) competes with push-pull (which pays");
    println!("O((ell*/phi*) log n)) — exactly the trade-off the paper formalises.");
}
