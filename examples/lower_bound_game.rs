//! The guessing game and the worst-case networks behind the paper's lower
//! bounds (Section 3).
//!
//! The example plays `Guessing(2m, P)` with the strategies analysed in
//! Lemmas 7–8, then builds the Theorem-10 bipartite network and the
//! Theorem-13 ring of gadgets and shows how the measured gossip cost follows
//! the `Ω(min(Δ + D, ℓ/φ))` trade-off.
//!
//! ```text
//! cargo run --example lower_bound_game
//! ```

use gossip_core::push_pull;
use gossip_graph::{metrics, NodeId};
use gossip_lowerbound::gadgets::{theorem10_network, theorem13_ring};
use gossip_lowerbound::game::GuessingGame;
use gossip_lowerbound::predicates::TargetPredicate;
use gossip_lowerbound::reduction::push_pull_reduction;
use gossip_lowerbound::strategies::{play, FreshGreedy, RandomGuessing};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);

    // --- Part 1: the bare guessing game (Lemmas 7 and 8) -------------------
    println!("Guessing(2m, P): average rounds over 10 plays\n");
    println!(
        "{:>6} {:>22} {:>16} {:>16}",
        "m", "predicate", "random-guessing", "fresh-greedy"
    );
    for (m, predicate, label) in [
        (32usize, TargetPredicate::Singleton, "singleton"),
        (64, TargetPredicate::Singleton, "singleton"),
        (64, TargetPredicate::Random { p: 0.25 }, "Random_p, p=0.25"),
        (64, TargetPredicate::Random { p: 0.05 }, "Random_p, p=0.05"),
    ] {
        let avg = |use_greedy: bool, rng: &mut SmallRng| -> f64 {
            let mut total = 0u64;
            for _ in 0..10 {
                let game = GuessingGame::new(m, predicate, rng);
                let rounds = if use_greedy {
                    play(game, &mut FreshGreedy::default(), 1_000_000, rng).rounds
                } else {
                    play(game, &mut RandomGuessing, 1_000_000, rng).rounds
                };
                total += rounds;
            }
            total as f64 / 10.0
        };
        let random = avg(false, &mut rng);
        let greedy = avg(true, &mut rng);
        println!("{:>6} {:>22} {:>16.1} {:>16.1}", m, label, random, greedy);
    }
    println!("\nSingleton targets cost Θ(m) rounds (Lemma 7); Random_p targets cost Θ(1/p)");
    println!("for the informed strategy and Θ(log m / p) for random guessing (Lemma 8).\n");

    // --- Part 2: the Theorem-10 network ------------------------------------
    println!("Theorem 10 network G(2n, ell, n^2, Random_phi): push-pull local broadcast\n");
    println!(
        "{:>6} {:>8} {:>6} {:>14} {:>12}",
        "n", "phi", "ell", "gossip rounds", "game rounds"
    );
    for (phi, ell) in [(0.3, 2u64), (0.1, 2), (0.1, 16)] {
        let net = theorem10_network(32, phi, ell, &mut rng).unwrap();
        let out = push_pull_reduction(&net, 9);
        println!(
            "{:>6} {:>8.2} {:>6} {:>14} {:>12}",
            32,
            phi,
            ell,
            out.gossip_rounds,
            out.game_rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("\nSparser hidden fast edges (smaller phi) force more rounds, and the derived");
    println!("guessing-game solution never needs more rounds than the gossip run (Lemma 6).\n");

    // --- Part 3: the Theorem-13 ring ----------------------------------------
    println!("Theorem 13 ring of gadgets: sweeping the slow latency ell\n");
    println!(
        "{:>6} {:>6} {:>8} {:>8} {:>12}",
        "ell", "D", "Delta", "n", "push-pull"
    );
    for ell in [2u64, 8, 32, 128] {
        let ring = theorem13_ring(6, 6, ell, &mut rng).unwrap();
        let d = metrics::weighted_diameter(&ring.graph).unwrap();
        let report = push_pull::broadcast(&ring.graph, NodeId::new(0), 5);
        println!(
            "{:>6} {:>6} {:>8} {:>8} {:>12}",
            ell,
            d,
            ring.graph.max_degree(),
            ring.graph.node_count(),
            format!("{} r", report.rounds)
        );
    }
    println!("\nFor small ell the cost tracks ell/phi (using the slow cross edges is fine);");
    println!("for large ell it flattens towards Delta + D — the min(D + Delta, ell/phi)");
    println!("trade-off of Theorem 13.");
}
