//! Peer-to-peer publish/subscribe overlay with heterogeneous link quality.
//!
//! A P2P overlay is usually well connected (every peer keeps a handful of
//! random neighbors) but the links differ wildly in quality: some are
//! same-city fibre, some are congested transcontinental paths.  The paper's
//! point is that classical conductance — which ignores the latencies — badly
//! mispredicts gossip performance here, while the critical weighted
//! conductance `φ*`/`ℓ*` predicts it well.  This example measures exactly
//! that gap.
//!
//! ```text
//! cargo run --example p2p_overlay
//! ```

use gossip_conductance::{analyze, Method};
use gossip_core::push_pull;
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let n = 128;
    let base = generators::random_regular(n, 8, 1, &mut rng).expect("valid overlay parameters");

    println!("random 8-regular overlay on {n} peers; publishing one message from peer 0\n");
    println!(
        "{:>22} {:>12} {:>10} {:>8} {:>16} {:>12}",
        "latency scheme", "phi (classic)", "phi*", "ell*", "(ell*/phi*)logn", "push-pull"
    );

    let schemes: Vec<(&str, LatencyScheme)> = vec![
        ("uniform fast (1)", LatencyScheme::Uniform(1)),
        (
            "two-level 1/64 (80/20)",
            LatencyScheme::TwoLevel {
                fast: 1,
                slow: 64,
                fast_probability: 0.8,
            },
        ),
        (
            "two-level 1/64 (20/80)",
            LatencyScheme::TwoLevel {
                fast: 1,
                slow: 64,
                fast_probability: 0.2,
            },
        ),
        (
            "power-law classes",
            LatencyScheme::PowerLawClasses { classes: 7 },
        ),
    ];

    for (name, scheme) in schemes {
        let g = scheme.apply(&base, &mut rng).unwrap();
        let report = analyze(&g, Method::SweepCut).unwrap();
        let logn = (n as f64).log2();
        let bound = if report.phi_star > 0.0 {
            report.ell_star as f64 / report.phi_star * logn
        } else {
            f64::INFINITY
        };
        let run = push_pull::broadcast(&g, NodeId::new(0), 3);
        println!(
            "{:>22} {:>12.4} {:>10.4} {:>8} {:>16.0} {:>12}",
            name,
            report.phi_classical,
            report.phi_star,
            report.ell_star,
            bound,
            format!("{} r", run.rounds),
        );
    }

    println!("\nThe classical conductance barely moves across the rows (the topology never");
    println!("changes), but the measured push-pull time tracks (ell*/phi*) log n — the");
    println!("latency-aware characterisation of Theorem 29.");
}
