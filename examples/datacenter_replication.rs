//! Datacenter replication: anti-entropy gossip across racks and regions.
//!
//! The classic motivation for gossip (Demers et al.'s epidemic replication) in
//! the setting the paper studies: links inside a rack are fast, links between
//! racks are slower, and the WAN links between the two regions are slower
//! still.  The example builds that three-tier topology, measures its critical
//! weighted conductance, and compares push–pull with the spanner route — the
//! regime where the unified algorithm's winner flips depending on how slow the
//! WAN is.
//!
//! ```text
//! cargo run --example datacenter_replication
//! ```

use gossip_conductance::{analyze, Method};
use gossip_core::{push_pull, spanner_broadcast, unified};
use gossip_graph::{metrics, GraphBuilder, Latency, NodeId};

/// Builds `regions × racks_per_region × servers_per_rack` servers.
/// Intra-rack edges have latency 1, intra-region rack-to-rack uplinks latency
/// `region_latency`, and the WAN links between region gateways `wan_latency`.
fn datacenter(
    regions: usize,
    racks_per_region: usize,
    servers_per_rack: usize,
    region_latency: Latency,
    wan_latency: Latency,
) -> gossip_graph::Graph {
    let servers_per_region = racks_per_region * servers_per_rack;
    let n = regions * servers_per_region;
    let mut b = GraphBuilder::new(n);
    let server = |region: usize, rack: usize, i: usize| {
        region * servers_per_region + rack * servers_per_rack + i
    };

    for region in 0..regions {
        for rack in 0..racks_per_region {
            // Full mesh inside a rack (top-of-rack switch).
            for i in 0..servers_per_rack {
                for j in (i + 1)..servers_per_rack {
                    b.add_edge(server(region, rack, i), server(region, rack, j), 1)
                        .unwrap();
                }
            }
        }
        // Rack leaders form a ring inside the region.
        for rack in 0..racks_per_region {
            let next = (rack + 1) % racks_per_region;
            if racks_per_region > 1 {
                b.add_edge_if_absent(
                    server(region, rack, 0),
                    server(region, next, 0),
                    region_latency,
                )
                .unwrap();
            }
        }
    }
    // Region gateways (rack 0, server 0 of each region) form a WAN ring.
    for region in 0..regions {
        let next = (region + 1) % regions;
        if regions > 1 {
            b.add_edge_if_absent(server(region, 0, 0), server(next, 0, 0), wan_latency)
                .unwrap();
        }
    }
    b.build_connected()
        .expect("datacenter topology is connected")
}

fn main() {
    println!("anti-entropy replication across 2 regions x 4 racks x 6 servers\n");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>12} {:>14} {:>10}",
        "WAN latency", "diameter", "phi*", "ell*", "push-pull", "spanner route", "winner"
    );

    for wan_latency in [4u64, 32, 256] {
        let g = datacenter(2, 4, 6, 4, wan_latency);
        let d = metrics::weighted_diameter(&g).unwrap();
        let conductance = analyze(&g, Method::SweepCut).unwrap();

        let source = NodeId::new(0);
        let pp = push_pull::broadcast(&g, source, 11);
        let sb = spanner_broadcast::run_known_diameter(&g, 11);
        let uni = unified::run_known_latencies(&g, source, 11);

        println!(
            "{:>12} {:>12} {:>10.4} {:>10} {:>12} {:>14} {:>10}",
            wan_latency,
            d,
            conductance.phi_star,
            conductance.ell_star,
            format!("{} r", pp.rounds),
            format!("{} r", sb.rounds),
            match uni.winner {
                unified::Winner::PushPull => "push-pull",
                unified::Winner::SpannerRoute => "spanner",
            }
        );
    }

    println!("\nAs the WAN slows down, the critical latency ell* tracks it and push-pull's");
    println!("O((ell*/phi*) log n) cost grows, while the spanner route only pays the");
    println!("diameter once — the crossover the paper's unified bound (Theorem 31) predicts.");
}
