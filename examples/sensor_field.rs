//! Sensor-network data aggregation on a grid with unreliable radio links.
//!
//! Sensor fields are the paper's "small degree, large diameter" regime: each
//! node talks only to its grid neighbors, some of the radio links are slow
//! (retransmissions), and the interesting algorithms are the deterministic
//! ones — ℓ-DTG for neighborhood exchange and the pattern broadcast `T(k)`,
//! which needs no knowledge of the network size and works with blocking
//! communication.
//!
//! ```text
//! cargo run --example sensor_field
//! ```

use gossip_core::{dtg, flooding, pattern};
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, metrics, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(77);
    let rows = 8;
    let cols = 8;
    let base = generators::grid(rows, cols, 1).expect("valid grid");
    // 30% of the radio links are lossy and need ~8 rounds per exchange.
    let field = LatencyScheme::TwoLevel {
        fast: 1,
        slow: 8,
        fast_probability: 0.7,
    }
    .apply(&base, &mut rng)
    .unwrap();

    let d = metrics::weighted_diameter(&field).unwrap();
    println!(
        "{rows}x{cols} sensor grid, 30% slow radio links (latency 8), weighted diameter D = {d}\n"
    );

    // Every sensor first exchanges readings with its direct neighbors.
    let local = dtg::local_broadcast(&field, 8, 1);
    println!(
        "8-DTG local exchange of readings:     {:>6} rounds (completed: {})",
        local.rounds, local.completed
    );

    // Aggregate all readings everywhere (all-to-all) with the deterministic
    // pattern broadcast, then compare against naive flooding.
    let pb = pattern::run_unknown_diameter(&field, 1);
    println!(
        "pattern broadcast T(k), unknown D:    {:>6} rounds (completed: {})",
        pb.rounds, pb.completed
    );
    let doubling_phases = pb
        .phases
        .iter()
        .filter(|p| !p.name.contains("termination-check"))
        .count();
    println!("  guess-and-double phases: {doubling_phases}");

    let flood = flooding::all_to_all(&field, 1);
    println!(
        "round-robin flooding (baseline):      {:>6} rounds (completed: {})",
        flood.rounds, flood.completed
    );

    // One-to-all from the sink at the grid corner.
    let sink = NodeId::new(0);
    let from_sink = flooding::broadcast(&field, sink, 1);
    println!(
        "flooding a command from the sink:     {:>6} rounds (diameter lower bound: {d})",
        from_sink.rounds
    );

    println!("\nThe pattern broadcast pays O(D log^2 n log D) and needs neither the network");
    println!("size nor non-blocking links, which is why it suits constrained sensor nodes.");
}
