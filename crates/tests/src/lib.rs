//! # gossip-tests
//!
//! An integration-only crate: it owns no logic of its own, but wires the
//! repository-root `tests/` (cross-crate integration suites) and `examples/`
//! directories into the Cargo workspace via explicit `[[test]]` and
//! `[[example]]` target entries, so `cargo test -q` runs everything and
//! builds every example.
//!
//! Helpers shared by the integration tests live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

/// Locates a compiled example binary next to the running test executable.
///
/// Under `cargo test`, integration-test binaries live in
/// `target/<profile>/deps/` and the package's examples are built into
/// `target/<profile>/examples/` before any test runs; this resolves the
/// example's path from [`std::env::current_exe`].
pub fn example_binary(name: &str) -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let deps = exe.parent()?;
    let profile = deps.parent()?;
    let candidate = profile
        .join("examples")
        .join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    candidate.is_file().then_some(candidate)
}
