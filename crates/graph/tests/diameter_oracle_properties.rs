//! Property tests for the diameter-bound oracle
//! ([`metrics::estimate_diameter`]): across every graph family the sweep
//! draws from, the bracket must contain the exact diameter, and below the
//! exact-computation threshold the bracket must *be* the exact diameter.

use gossip_graph::metrics::{
    self, estimate_diameter, estimate_diameter_with_threshold, estimate_hop_diameter,
    DiameterEstimate, EXACT_DIAMETER_THRESHOLD,
};
use gossip_graph::{generators, latency::LatencyScheme, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The oracle's contract on a connected graph: `lower ≤ D ≤ upper`, on both
/// the sweep path (threshold 0) and the defaulted path, for the weighted and
/// the hop metric.
fn check_bracket(g: &Graph) {
    let d = metrics::weighted_diameter(g).expect("test graphs are connected");
    for threshold in [0, EXACT_DIAMETER_THRESHOLD] {
        let est = estimate_diameter_with_threshold(g, threshold).unwrap();
        assert!(
            est.lower <= d && d <= est.upper,
            "weighted bracket [{}, {}] misses D={} (threshold {threshold}, n={})",
            est.lower,
            est.upper,
            d,
            g.node_count()
        );
    }
    let hop = metrics::hop_diameter(g).unwrap();
    let hop_est = estimate_hop_diameter(g).unwrap();
    assert!(
        hop_est.lower <= hop && hop <= hop_est.upper,
        "hop bracket [{}, {}] misses D={hop}",
        hop_est.lower,
        hop_est.upper,
    );
    // Every test instance is below the exact-computation threshold, so the
    // defaulted estimators must pin the exact value.
    assert!(g.node_count() <= EXACT_DIAMETER_THRESHOLD);
    assert_eq!(estimate_diameter(g), Some(DiameterEstimate::exact(d)));
    assert_eq!(estimate_hop_diameter(g), Some(DiameterEstimate::exact(hop)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_brackets_deterministic_families(
        n in 2usize..64,
        latency in 1u64..20,
        bridge in 1u64..50,
    ) {
        check_bracket(&generators::clique(n, latency).unwrap());
        check_bracket(&generators::cycle(n.max(3), latency).unwrap());
        check_bracket(&generators::path(n, latency).unwrap());
        check_bracket(&generators::star(n.max(3), latency).unwrap());
        check_bracket(&generators::grid(2 + n % 7, 2 + n % 5, latency).unwrap());
        check_bracket(&generators::binary_tree(n, latency).unwrap());
        check_bracket(&generators::dumbbell(n.max(2), bridge).unwrap());
        check_bracket(&generators::ring_of_cliques(3 + n % 4, n.clamp(2, 9), bridge).unwrap());
        check_bracket(&generators::barbell(n.clamp(2, 12), 1 + n % 5, bridge).unwrap());
    }

    #[test]
    fn oracle_brackets_random_weighted_graphs(
        n in 2usize..48,
        p in 0.1f64..0.9,
        max_latency in 1u64..16,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, 1, &mut rng).unwrap();
        let g = LatencyScheme::UniformRandom { min: 1, max: max_latency }
            .apply(&g, &mut rng)
            .unwrap();
        check_bracket(&g);
    }

    /// On trees the first sweep already finds a diametral endpoint, so the
    /// sweep path's *lower* bound is exact — a sharper pin than the bracket.
    #[test]
    fn sweep_lower_bound_is_exact_on_trees(n in 2usize..80, latency in 1u64..20) {
        let g = generators::binary_tree(n, latency).unwrap();
        let d = metrics::weighted_diameter(&g).unwrap();
        let est = estimate_diameter_with_threshold(&g, 0).unwrap();
        prop_assert_eq!(est.lower, d);
    }
}
