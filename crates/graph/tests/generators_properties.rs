//! Property-style tests for `gossip_graph::generators`: node/edge counts,
//! latency bounds, degrees and connectivity, over the parameter ranges the
//! `battery()` of `tests/upper_bounds.rs` and the sweep runner draw from.

use gossip_graph::{generators, Graph, Latency};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn choose2(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Every generated graph must be connected with positive latencies.
fn check_basics(g: &Graph, max_latency: Latency) {
    assert!(g.is_connected(), "generated graphs must be connected");
    for rec in g.edges() {
        assert!(rec.latency >= 1, "latencies are positive integers");
        assert!(
            rec.latency <= max_latency,
            "latency {} above {max_latency}",
            rec.latency
        );
        assert_ne!(rec.u, rec.v, "no self-loops");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn clique_counts(n in 2usize..40, latency in 1u64..50) {
        let g = generators::clique(n, latency).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), choose2(n));
        prop_assert_eq!(g.max_latency(), latency);
        check_basics(&g, latency);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), n - 1);
        }
    }

    #[test]
    fn cycle_counts(n in 3usize..60, latency in 1u64..20) {
        let g = generators::cycle(n, latency).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n);
        check_basics(&g, latency);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn path_counts(n in 2usize..60, latency in 1u64..20) {
        let g = generators::path(n, latency).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1);
        check_basics(&g, latency);
    }

    #[test]
    fn star_counts(n in 2usize..60, latency in 1u64..20) {
        let g = generators::star(n, latency).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert_eq!(g.max_degree(), n - 1);
        check_basics(&g, latency);
    }

    #[test]
    fn grid_counts(rows in 2usize..9, cols in 2usize..9, latency in 1u64..20) {
        let g = generators::grid(rows, cols, latency).unwrap();
        prop_assert_eq!(g.node_count(), rows * cols);
        prop_assert_eq!(g.edge_count(), rows * (cols - 1) + cols * (rows - 1));
        check_basics(&g, latency);
    }

    #[test]
    fn binary_tree_counts(n in 1usize..80, latency in 1u64..20) {
        let g = generators::binary_tree(n, latency).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n.saturating_sub(1));
        check_basics(&g, latency);
        // Binary heap shape: every node has at most 3 incident edges.
        for v in g.nodes() {
            prop_assert!(g.degree(v) <= 3);
        }
    }

    #[test]
    fn complete_bipartite_counts(a in 1usize..15, b in 1usize..15, latency in 1u64..20) {
        let g = generators::complete_bipartite(a, b, latency).unwrap();
        prop_assert_eq!(g.node_count(), a + b);
        prop_assert_eq!(g.edge_count(), a * b);
        check_basics(&g, latency);
    }

    #[test]
    fn dumbbell_counts(s in 2usize..20, bridge in 1u64..100) {
        let g = generators::dumbbell(s, bridge).unwrap();
        prop_assert_eq!(g.node_count(), 2 * s);
        prop_assert_eq!(g.edge_count(), 2 * choose2(s) + 1);
        check_basics(&g, bridge.max(1));
        // The bridge is the only edge that can be slow.
        let slow_edges = g.edges().filter(|rec| rec.latency > 1).count();
        prop_assert!(slow_edges <= 1);
    }

    #[test]
    fn ring_of_cliques_counts(k in 2usize..8, s in 1usize..8, bridge in 1u64..50) {
        let g = generators::ring_of_cliques(k, s, bridge).unwrap();
        prop_assert_eq!(g.node_count(), k * s);
        let bridges = if k == 2 { 1 } else { k };
        prop_assert_eq!(g.edge_count(), k * choose2(s) + bridges);
        check_basics(&g, bridge.max(1));
    }

    #[test]
    fn erdos_renyi_is_connected_with_exact_node_count(
        n in 2usize..40,
        p in 0.1f64..0.9,
        latency in 1u64..20,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, latency, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() >= n - 1, "connectivity needs at least a spanning tree");
        prop_assert!(g.edge_count() <= choose2(n));
        check_basics(&g, latency);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed(
        n in 4usize..30,
        p in 0.2f64..0.8,
        seed in 0u64..1_000,
    ) {
        let build = || {
            let mut rng = SmallRng::seed_from_u64(seed);
            generators::erdos_renyi(n, p, 1, &mut rng).unwrap()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.edge_count(), b.edge_count());
        for (x, y) in a.edges().zip(b.edges()) {
            prop_assert_eq!((x.u, x.v, x.latency), (y.u, y.v, y.latency));
        }
    }

    #[test]
    fn random_regular_is_near_regular(
        d in 2usize..6,
        half_n in 4usize..16,
        latency in 1u64..20,
        seed in 0u64..1_000,
    ) {
        // n*d must be even and n > d: use even n.
        let n = 2 * half_n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, latency, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        // The configuration model discards self-loops/duplicates and repairs
        // greedily, so the contract is *near*-regular: every degree within a
        // small band of d and the average essentially d.
        prop_assert!(g.edge_count() <= n * d / 2 + n);
        prop_assert!(g.edge_count() + n >= n * d / 2);
        for v in g.nodes() {
            let deg = g.degree(v);
            // Repair guarantees min degree d; pairing plus at most two
            // component-chaining edges bounds the overshoot at d + 3.
            prop_assert!(deg >= d && deg <= d + 3, "degree {} too far from {}", deg, d);
        }
        let avg = g.total_volume() as f64 / n as f64;
        prop_assert!((avg - d as f64).abs() <= 1.0, "average degree {} vs d = {}", avg, d);
        check_basics(&g, latency);
    }

    #[test]
    fn slow_cut_expander_has_slow_cut_and_fast_sides(
        half_n in 6usize..16,
        slow in 2u64..64,
        seed in 0u64..1_000,
    ) {
        let n = 2 * half_n;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::slow_cut_expander(n, 4, slow, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        check_basics(&g, slow.max(1));
        let half = n / 2;
        for rec in g.edges() {
            let crosses = (rec.u.index() < half) != (rec.v.index() < half);
            if crosses {
                prop_assert_eq!(rec.latency, slow, "cut edges must be slow");
            } else {
                prop_assert_eq!(rec.latency, 1, "side edges must be fast");
            }
        }
    }
}

#[test]
fn battery_families_build_and_are_connected() {
    // The exact configurations `tests/upper_bounds.rs` uses.
    let mut rng = SmallRng::seed_from_u64(9);
    let battery: Vec<(&str, Graph)> = vec![
        ("clique", generators::clique(24, 1).unwrap()),
        ("slow clique", generators::clique(16, 8).unwrap()),
        ("cycle", generators::cycle(24, 3).unwrap()),
        ("grid", generators::grid(5, 5, 2).unwrap()),
        ("star", generators::star(24, 4).unwrap()),
        ("dumbbell", generators::dumbbell(10, 32).unwrap()),
        (
            "ring of cliques",
            generators::ring_of_cliques(5, 5, 8).unwrap(),
        ),
        (
            "slow-cut expander",
            generators::slow_cut_expander(32, 6, 16, &mut rng).unwrap(),
        ),
        ("binary tree", generators::binary_tree(31, 4).unwrap()),
    ];
    for (name, g) in battery {
        assert!(g.is_connected(), "{name} must be connected");
        assert!(g.node_count() >= 16, "{name} too small");
        assert!(g.max_latency() >= 1, "{name} has invalid latencies");
    }
}

#[test]
fn degenerate_parameters_are_rejected() {
    let mut rng = SmallRng::seed_from_u64(1);
    assert!(generators::clique(0, 1).is_err() || generators::clique(0, 1).is_ok());
    assert!(
        generators::ring_of_cliques(1, 3, 1).is_err(),
        "ring needs >= 2 cliques"
    );
    assert!(
        generators::dumbbell(1, 1).is_err(),
        "dumbbell needs >= 2 per side"
    );
    assert!(
        generators::random_regular(5, 7, 1, &mut rng).is_err(),
        "degree above n-1 is impossible"
    );
}
