//! Alive-mask views: crash/cut overlays on an immutable [`Graph`].
//!
//! A [`Graph`] is immutable after construction, but fault injection needs
//! nodes to *crash* (and possibly rejoin) and edges to be *cut* mid-run
//! without rebuilding the CSR adjacency.  An [`AliveView`] is that overlay:
//! two liveness bitsets (nodes, edges) plus lazily materialised per-node
//! *filtered neighbor lists* for exactly the nodes whose incident topology a
//! fault has touched.  Untouched nodes keep borrowing the graph's own
//! adjacency slice, so the overlay costs `O(n/64 + m/64)` words up front and
//! `O(Σ deg(affected))` per fault event — never `O(m)` per event and never
//! anything on the per-round hot path.
//!
//! # Invariant
//!
//! After every mutation, [`neighbor_slice`](AliveView::neighbor_slice)
//! returns, for every **alive** node, exactly its alive neighbors over
//! un-cut edges: a fault to node `v` (or edge `e`) rebuilds the filtered
//! list of every alive node incident to `v` (resp. `e`).  Consumers can
//! therefore treat the returned slice as the node's current topology with no
//! per-entry liveness checks.

use crate::graph::Graph;
use crate::ids::{EdgeId, NodeId};

/// A node's incident `(neighbor, edge)` list filtered down to alive
/// neighbors and un-cut edges.
type FilteredAdjacency = Box<[(NodeId, EdgeId)]>;

/// Liveness overlay on a [`Graph`]: which nodes are alive, which edges are
/// un-cut, and filtered adjacency for the nodes a fault has touched.
///
/// The view never stores a reference to the graph; every method that needs
/// topology takes `&Graph` so the view can live alongside mutable engine
/// state.  Passing a *different* graph than the one the view was created for
/// is a logic error (sizes are checked only by `debug_assert`).
#[derive(Debug, Clone)]
pub struct AliveView {
    /// Node-liveness bitset (bit `v` set ⇔ node `v` alive).
    node_alive: Vec<u64>,
    /// Edge-liveness bitset (bit `e` set ⇔ edge `e` not cut).
    edge_alive: Vec<u64>,
    /// Filtered `(neighbor, edge)` lists for nodes whose incident topology
    /// changed; `None` means the graph's own slice is still exact.
    overrides: Vec<Option<FilteredAdjacency>>,
    /// Number of alive nodes.
    alive_count: usize,
    /// Number of cut edges.
    cut_edges: usize,
}

impl AliveView {
    /// A view of `graph` with every node alive and every edge un-cut.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        AliveView {
            node_alive: full_bitset(n),
            edge_alive: full_bitset(m),
            overrides: vec![None; n],
            alive_count: n,
            cut_edges: 0,
        }
    }

    /// Whether node `v` is alive.
    #[inline]
    pub fn is_node_alive(&self, v: NodeId) -> bool {
        bit(&self.node_alive, v.index())
    }

    /// Whether edge `e` has not been cut (its endpoints may still be dead —
    /// see [`edge_usable`](Self::edge_usable)).
    #[inline]
    pub fn is_edge_alive(&self, e: EdgeId) -> bool {
        bit(&self.edge_alive, e.index())
    }

    /// Whether edge `e` can carry an exchange: not cut, both endpoints alive.
    pub fn edge_usable(&self, graph: &Graph, e: EdgeId) -> bool {
        if !self.is_edge_alive(e) {
            return false;
        }
        let rec = graph.edge(e);
        self.is_node_alive(rec.u) && self.is_node_alive(rec.v)
    }

    /// Number of alive nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of cut edges.
    #[inline]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// The current `(neighbor, edge)` list of `v`: the graph's own slice
    /// until a fault touches `v`'s neighborhood, the filtered override
    /// afterwards.  For an alive `v` the result contains exactly its alive
    /// neighbors over un-cut edges (see the module invariant); for a dead
    /// `v` it is empty.
    // gossip-lint: allow(panic-path): `overrides` is sized node_count at construction and v is a node of the same graph
    pub fn neighbor_slice<'a>(&'a self, graph: &'a Graph, v: NodeId) -> &'a [(NodeId, EdgeId)] {
        match &self.overrides[v.index()] {
            Some(list) => list,
            None => graph.neighbor_slice(v),
        }
    }

    /// Marks `v` dead and rebuilds the filtered lists of its alive
    /// neighbors.  Returns `false` (and does nothing) if `v` was already
    /// dead.
    // gossip-lint: allow(panic-path): `overrides` is sized node_count at construction and v is a node of the same graph
    pub fn kill_node(&mut self, graph: &Graph, v: NodeId) -> bool {
        debug_assert_eq!(self.overrides.len(), graph.node_count());
        if !self.is_node_alive(v) {
            return false;
        }
        clear_bit(&mut self.node_alive, v.index());
        self.alive_count -= 1;
        self.overrides[v.index()] = Some(Box::from([]));
        for &(w, _) in graph.neighbor_slice(v) {
            if self.is_node_alive(w) {
                self.rebuild_override(graph, w);
            }
        }
        true
    }

    /// Marks `v` alive again and rebuilds the filtered lists of `v` and its
    /// alive neighbors (cut edges stay cut).  Returns `false` (and does
    /// nothing) if `v` was already alive.
    pub fn revive_node(&mut self, graph: &Graph, v: NodeId) -> bool {
        if self.is_node_alive(v) {
            return false;
        }
        set_bit(&mut self.node_alive, v.index());
        self.alive_count += 1;
        self.rebuild_override(graph, v);
        for &(w, _) in graph.neighbor_slice(v) {
            if self.is_node_alive(w) {
                self.rebuild_override(graph, w);
            }
        }
        true
    }

    /// Cuts edge `e` permanently and rebuilds the filtered lists of its
    /// alive endpoints.  Returns `false` (and does nothing) if `e` was
    /// already cut.
    pub fn cut_edge(&mut self, graph: &Graph, e: EdgeId) -> bool {
        if !self.is_edge_alive(e) {
            return false;
        }
        clear_bit(&mut self.edge_alive, e.index());
        self.cut_edges += 1;
        let (u, v) = {
            let rec = graph.edge(e);
            (rec.u, rec.v)
        };
        for x in [u, v] {
            if self.is_node_alive(x) {
                self.rebuild_override(graph, x);
            }
        }
        true
    }

    /// Connected components of the *residual* topology — alive nodes over
    /// usable edges — as `(component count, largest component size)`.
    /// `(0, 0)` when no node is alive.
    // gossip-lint: allow(panic-path): `seen` is sized node_count and only indexed by node ids of the same graph
    pub fn residual_components(&self, graph: &Graph) -> (u64, u64) {
        let n = graph.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let (mut components, mut largest) = (0u64, 0u64);
        for v in graph.nodes() {
            if !self.is_node_alive(v) || seen[v.index()] {
                continue;
            }
            components += 1;
            let mut size = 0u64;
            seen[v.index()] = true;
            stack.push(v);
            while let Some(x) = stack.pop() {
                size += 1;
                // The module invariant makes this slice exactly the alive
                // neighbors over un-cut edges: no per-entry filtering needed.
                for &(w, _) in self.neighbor_slice(graph, x) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                    }
                }
            }
            largest = largest.max(size);
        }
        (components, largest)
    }

    // gossip-lint: allow(panic-path): `overrides` is sized node_count at construction and v is a node of the same graph
    fn rebuild_override(&mut self, graph: &Graph, v: NodeId) {
        let filtered: Box<[(NodeId, EdgeId)]> = graph
            .neighbor_slice(v)
            .iter()
            .copied()
            .filter(|&(w, e)| bit(&self.node_alive, w.index()) && bit(&self.edge_alive, e.index()))
            .collect();
        self.overrides[v.index()] = Some(filtered);
    }
}

fn full_bitset(len: usize) -> Vec<u64> {
    let mut words = vec![!0u64; len.div_ceil(64)];
    if !len.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last = (1u64 << (len % 64)) - 1;
        }
    }
    words
}

#[inline]
// gossip-lint: allow(panic-path): callers index liveness bitsets sized ceil(len/64) with i < len by construction
fn bit(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
// gossip-lint: allow(panic-path): callers index liveness bitsets sized ceil(len/64) with i < len by construction
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
// gossip-lint: allow(panic-path): callers index liveness bitsets sized ceil(len/64) with i < len by construction
fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn pristine_view_borrows_graph_slices() {
        let g = generators::clique(6, 1).unwrap();
        let view = AliveView::new(&g);
        assert_eq!(view.alive_count(), 6);
        assert_eq!(view.cut_edges(), 0);
        for v in g.nodes() {
            assert!(view.is_node_alive(v));
            assert_eq!(view.neighbor_slice(&g, v), g.neighbor_slice(v));
        }
        for e in g.edge_ids() {
            assert!(view.is_edge_alive(e));
            assert!(view.edge_usable(&g, e));
        }
        assert_eq!(view.residual_components(&g), (1, 6));
    }

    #[test]
    fn kill_filters_neighbors_and_is_idempotent() {
        let g = generators::star(5, 1).unwrap(); // hub 0, leaves 1..=4
        let mut view = AliveView::new(&g);
        assert!(view.kill_node(&g, NodeId::new(2)));
        assert!(!view.kill_node(&g, NodeId::new(2)), "already dead");
        assert_eq!(view.alive_count(), 4);
        assert!(view.neighbor_slice(&g, NodeId::new(2)).is_empty());
        let hub: Vec<_> = view
            .neighbor_slice(&g, NodeId::new(0))
            .iter()
            .map(|&(w, _)| w.index())
            .collect();
        assert_eq!(hub, vec![1, 3, 4]);
        // Killing the hub strands every leaf.
        assert!(view.kill_node(&g, NodeId::new(0)));
        assert_eq!(view.residual_components(&g), (3, 1));
    }

    #[test]
    fn revive_restores_filtered_topology_but_not_cut_edges() {
        let g = generators::path(3, 1).unwrap(); // 0-1-2
        let mut view = AliveView::new(&g);
        let middle = NodeId::new(1);
        view.kill_node(&g, middle);
        assert_eq!(view.residual_components(&g), (2, 1));
        // Cut 0-1 while node 1 is down, then revive it: the cut is permanent.
        let e01 = g.find_edge(NodeId::new(0), middle).unwrap();
        assert!(view.cut_edge(&g, e01));
        assert!(!view.cut_edge(&g, e01), "already cut");
        assert!(view.revive_node(&g, middle));
        assert!(!view.revive_node(&g, middle), "already alive");
        assert_eq!(view.alive_count(), 3);
        assert!(!view.is_edge_alive(e01));
        assert!(!view.edge_usable(&g, e01));
        let mid: Vec<_> = view
            .neighbor_slice(&g, middle)
            .iter()
            .map(|&(w, _)| w.index())
            .collect();
        assert_eq!(mid, vec![2]);
        assert!(view.neighbor_slice(&g, NodeId::new(0)).is_empty());
        assert_eq!(view.residual_components(&g), (2, 2));
    }

    #[test]
    fn cut_edge_updates_both_endpoints() {
        let g = generators::cycle(4, 1).unwrap();
        let mut view = AliveView::new(&g);
        let e = g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        view.cut_edge(&g, e);
        assert_eq!(view.cut_edges(), 1);
        for v in [NodeId::new(0), NodeId::new(1)] {
            assert!(!view
                .neighbor_slice(&g, v)
                .iter()
                .any(|&(_, edge)| edge == e));
        }
        // A cycle minus one edge is still connected.
        assert_eq!(view.residual_components(&g), (1, 4));
    }

    #[test]
    fn all_dead_residual_is_empty() {
        let g = generators::clique(3, 1).unwrap();
        let mut view = AliveView::new(&g);
        for v in g.nodes() {
            view.kill_node(&g, v);
        }
        assert_eq!(view.alive_count(), 0);
        assert_eq!(view.residual_components(&g), (0, 0));
    }
}
