//! Cuts and their latency-class decomposition.
//!
//! A cut `C = (U, V \ U)` is the basic object of the paper's conductance
//! definitions (Definitions 1–4): the weight-ℓ conductance counts the cut
//! edges of latency `≤ ℓ`, and the average weighted conductance groups cut
//! edges into latency classes `(2^{i-1}, 2^i]` and discounts each class by
//! `2^i`.

use crate::{EdgeId, Graph, Latency, NodeId};

/// A two-sided cut of a graph, represented by membership of the "left" side `U`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    membership: Vec<bool>,
}

impl Cut {
    /// Builds a cut from the set `U` of node ids on one side.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for `g`.
    pub fn from_side<I: IntoIterator<Item = NodeId>>(g: &Graph, side: I) -> Self {
        let mut membership = vec![false; g.node_count()];
        for v in side {
            membership[v.index()] = true;
        }
        Cut { membership }
    }

    /// Builds a cut directly from a membership bitmap (`true` = in `U`).
    ///
    /// # Panics
    ///
    /// Panics if the bitmap length differs from the node count of `g`.
    pub fn from_membership(g: &Graph, membership: Vec<bool>) -> Self {
        assert_eq!(
            membership.len(),
            g.node_count(),
            "membership bitmap length must equal the node count"
        );
        Cut { membership }
    }

    /// Builds the cut `({v : bit v of mask set}, rest)` from an integer bitmask.
    ///
    /// Useful for exhaustively enumerating all cuts of a small graph.
    ///
    /// # Panics
    ///
    /// Panics if `g` has more than 63 nodes.
    pub fn from_bitmask(g: &Graph, mask: u64) -> Self {
        let n = g.node_count();
        assert!(
            n <= 63,
            "bitmask cuts are only supported for graphs with at most 63 nodes"
        );
        let membership = (0..n).map(|i| mask & (1 << i) != 0).collect();
        Cut { membership }
    }

    /// Returns `true` if node `v` is on the `U` side of the cut.
    #[inline]
    // gossip-lint: allow(panic-path): membership bitmap is sized n at construction; node ids are dense
    pub fn contains(&self, v: NodeId) -> bool {
        self.membership[v.index()]
    }

    /// Nodes on the `U` side.
    pub fn side_u(&self) -> Vec<NodeId> {
        self.membership
            .iter()
            .enumerate()
            .filter(|&(_i, &m)| m)
            .map(|(i, &_m)| NodeId::new(i))
            .collect()
    }

    /// Nodes on the `V \ U` side.
    pub fn side_rest(&self) -> Vec<NodeId> {
        self.membership
            .iter()
            .enumerate()
            .filter(|&(_i, &m)| !m)
            .map(|(i, &_m)| NodeId::new(i))
            .collect()
    }

    /// Number of nodes on the `U` side.
    pub fn size_u(&self) -> usize {
        self.membership.iter().filter(|&&m| m).count()
    }

    /// Returns `true` if both sides of the cut are non-empty.
    pub fn is_proper(&self) -> bool {
        let u = self.size_u();
        u > 0 && u < self.membership.len()
    }

    /// Edge ids crossing the cut.
    pub fn cut_edges(&self, g: &Graph) -> Vec<EdgeId> {
        g.edge_ids()
            .filter(|&e| {
                let rec = g.edge(e);
                self.contains(rec.u) != self.contains(rec.v)
            })
            .collect()
    }

    /// Number of cut edges with latency `≤ bound` — the quantity `|E_ℓ(C)|`
    /// of Definition 1.
    pub fn cut_edges_within(&self, g: &Graph, bound: Latency) -> usize {
        g.edges()
            .filter(|rec| rec.latency <= bound && self.contains(rec.u) != self.contains(rec.v))
            .count()
    }

    /// Total number of cut edges (any latency).
    pub fn cut_size(&self, g: &Graph) -> usize {
        self.cut_edges_within(g, Latency::MAX)
    }

    /// Volume of each side, `(Vol(U), Vol(V \ U))`.
    pub fn volumes(&self, g: &Graph) -> (u64, u64) {
        let mut vol_u = 0;
        let mut vol_rest = 0;
        for v in g.nodes() {
            if self.contains(v) {
                vol_u += g.degree(v) as u64;
            } else {
                vol_rest += g.degree(v) as u64;
            }
        }
        (vol_u, vol_rest)
    }

    /// The normalising term `min(Vol(U), Vol(V \ U))` of the conductance definitions.
    pub fn min_volume(&self, g: &Graph) -> u64 {
        let (a, b) = self.volumes(g);
        a.min(b)
    }

    /// Number of cut edges in each latency class.
    ///
    /// Class `i` (1-based, `i = 1 .. ⌈log₂ ℓmax⌉`) contains cut edges with
    /// latency in `(2^{i-1}, 2^i]`, except class 1 which also contains
    /// latency-1 edges (the paper defines the first class as "latency ≤ 2").
    /// The returned vector is indexed by `i - 1`.
    pub fn latency_class_counts(&self, g: &Graph) -> Vec<usize> {
        let classes = latency_class_count(g.max_latency());
        let mut counts = vec![0usize; classes];
        for rec in g.edges() {
            if self.contains(rec.u) != self.contains(rec.v) {
                let class = latency_class(rec.latency);
                counts[class - 1] += 1;
            }
        }
        counts
    }
}

/// The latency class of a single edge: the smallest `i ≥ 1` with `latency ≤ 2^i`.
///
/// Latency 1 and 2 are both class 1 (the paper's first class is "latency ≤ 2").
///
/// # Panics
///
/// Panics if `latency` is zero (latencies are positive integers).
pub fn latency_class(latency: Latency) -> usize {
    assert!(latency > 0, "latencies must be positive");
    if latency <= 2 {
        return 1;
    }
    // Smallest i with 2^i >= latency.
    let bits = Latency::BITS - (latency - 1).leading_zeros();
    bits as usize
}

/// Number of latency classes needed for a maximum latency, `⌈log₂ ℓmax⌉`
/// (at least 1 whenever the graph has edges).
pub fn latency_class_count(max_latency: Latency) -> usize {
    if max_latency <= 2 {
        usize::from(max_latency > 0)
    } else {
        latency_class(max_latency)
    }
}

/// Upper bound `2^i` of latency class `i` (1-based).
pub fn latency_class_upper_bound(class: usize) -> Latency {
    assert!(class >= 1, "latency classes are 1-based");
    1u64 << class.min(62)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 4-cycle with latencies 1, 1, 3, 8.
    fn cycle4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 3, 3).unwrap();
        b.add_edge(3, 0, 8).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn membership_and_sides() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        assert!(cut.contains(NodeId::new(0)));
        assert!(!cut.contains(NodeId::new(2)));
        assert_eq!(cut.size_u(), 2);
        assert_eq!(cut.side_u(), vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(cut.side_rest(), vec![NodeId::new(2), NodeId::new(3)]);
        assert!(cut.is_proper());
    }

    #[test]
    fn cut_edges_and_latency_filter() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        // Crossing edges: (1,2) latency 1 and (3,0) latency 8.
        assert_eq!(cut.cut_size(&g), 2);
        assert_eq!(cut.cut_edges_within(&g, 1), 1);
        assert_eq!(cut.cut_edges_within(&g, 7), 1);
        assert_eq!(cut.cut_edges_within(&g, 8), 2);
        assert_eq!(cut.cut_edges(&g).len(), 2);
    }

    #[test]
    fn volumes_are_degree_sums() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0)]);
        let (u, rest) = cut.volumes(&g);
        assert_eq!(u, 2);
        assert_eq!(rest, 6);
        assert_eq!(cut.min_volume(&g), 2);
    }

    #[test]
    fn bitmask_enumeration_matches_explicit_cut() {
        let g = cycle4();
        let a = Cut::from_bitmask(&g, 0b0011);
        let b = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn improper_cut_detected() {
        let g = cycle4();
        assert!(!Cut::from_bitmask(&g, 0).is_proper());
        assert!(!Cut::from_bitmask(&g, 0b1111).is_proper());
    }

    #[test]
    fn latency_classes() {
        assert_eq!(latency_class(1), 1);
        assert_eq!(latency_class(2), 1);
        assert_eq!(latency_class(3), 2);
        assert_eq!(latency_class(4), 2);
        assert_eq!(latency_class(5), 3);
        assert_eq!(latency_class(8), 3);
        assert_eq!(latency_class(9), 4);
        assert_eq!(latency_class(16), 4);
        assert_eq!(latency_class(17), 5);
    }

    #[test]
    fn latency_class_counts_of_graph() {
        assert_eq!(latency_class_count(0), 0);
        assert_eq!(latency_class_count(1), 1);
        assert_eq!(latency_class_count(2), 1);
        assert_eq!(latency_class_count(3), 2);
        assert_eq!(latency_class_count(8), 3);
        assert_eq!(latency_class_count(1000), 10);
    }

    #[test]
    fn latency_class_upper_bounds() {
        assert_eq!(latency_class_upper_bound(1), 2);
        assert_eq!(latency_class_upper_bound(3), 8);
    }

    #[test]
    fn per_cut_class_histogram() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        // Crossing edges: latency 1 (class 1) and latency 8 (class 3);
        // max latency 8 => 3 classes.
        assert_eq!(cut.latency_class_counts(&g), vec![1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "latencies must be positive")]
    fn latency_class_rejects_zero() {
        let _ = latency_class(0);
    }

    #[test]
    #[should_panic(expected = "membership bitmap length")]
    fn membership_length_checked() {
        let g = cycle4();
        let _ = Cut::from_membership(&g, vec![true; 3]);
    }
}
