//! Random graph families (Erdős–Rényi and random regular graphs).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, Latency};

/// Threshold below which [`erdos_renyi`] switches from per-pair Bernoulli
/// draws to Batagelj–Brandes geometric skipping.  Above it the expected skip
/// is so short that the dense path's simpler per-pair draw wins.
const GEOMETRIC_SKIP_MAX_P: f64 = 0.25;

/// Erdős–Rényi graph `G(n, p)` with uniform edge latency, conditioned on
/// connectivity: edges are drawn independently, and if the sample is
/// disconnected a spanning-path of "repair" edges is added so that the result
/// is always connected (the repair is noted to be rare for `p` above the
/// connectivity threshold `ln n / n`).
///
/// For `p <= 0.25` the sampler uses **Batagelj–Brandes geometric skipping**
/// (*Efficient generation of large random networks*, Phys. Rev. E 71, 2005):
/// instead of flipping a coin per pair it draws the gap to the next present
/// edge from the geometric distribution, running in `O(n + m)` expected time
/// instead of `O(n²)` — the difference between ~2 s and ~2 ms of setup per
/// sweep cell at `n = 32768`, where the old pair loop dominated the Huge-tier
/// Erdős–Rényi cells.  Denser graphs keep the classical per-pair path (the
/// expected skip approaches one pair, and `m` is `Θ(n²)` anyway).  The two
/// paths consume the RNG differently, so the same seed yields different —
/// equally valid — samples on either side of the threshold.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    latency: Latency,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "erdos_renyi needs n >= 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters {
            reason: format!("edge probability {p} must lie in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Each unordered pair is considered exactly once (in both samplers), so
    // no duplicate is possible: trusted fast path.  (The connectivity repair
    // below links representatives of *distinct* components, which by
    // definition share no edge, so its checked `add_edge_if_absent` calls
    // cannot collide either.)
    // `log(1-p)` is finite and negative for representable p in (0, 1); a p
    // so small that `1 - p == 1.0` would make it 0 (and the skip ratio
    // ±inf), so such degenerate probabilities take the per-pair path.
    let log_q = (1.0 - p).ln();
    if p > 0.0 && p <= GEOMETRIC_SKIP_MAX_P && log_q < 0.0 {
        // Batagelj–Brandes: walk the ordered pairs (v, w), w < v, jumping
        // ahead by geometrically distributed gaps.
        let mut v: usize = 1;
        let mut w: isize = -1;
        while v < n {
            // Uniform in [0, 1); 1-r in (0, 1] keeps the logarithm finite.
            let r: f64 = rng.gen_range(0.0..1.0);
            let skip = ((1.0 - r).ln() / log_q).floor();
            // Cap the cast below isize::MAX so `w + 1 + skip` cannot
            // overflow (w >= -1): any skip past the remaining < n²/2 pairs
            // just walks v to n and ends the loop, so the clamp never
            // changes which edges a reachable skip produces.
            w += 1 + skip.min((isize::MAX / 2) as f64) as isize;
            while v < n && w >= v as isize {
                w -= v as isize;
                v += 1;
            }
            if v < n {
                b.add_edge_trusted(v, w as usize, latency)?;
            }
        }
    } else if p > 0.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    b.add_edge_trusted(u, v, latency)?;
                }
            }
        }
    }
    // Connectivity repair: connect consecutive components along the node order.
    let g = b.clone().build()?;
    if g.is_connected() {
        return Ok(g);
    }
    let mut component = vec![usize::MAX; n];
    let mut comp_count = 0;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![crate::NodeId::new(start)];
        component[start] = comp_count;
        while let Some(v) = stack.pop() {
            for (w, _) in g.neighbors(v) {
                if component[w.index()] == usize::MAX {
                    component[w.index()] = comp_count;
                    stack.push(w);
                }
            }
        }
        comp_count += 1;
    }
    // Link one representative of every component to a representative of component 0.
    let mut representatives = vec![usize::MAX; comp_count];
    for (v, &c) in component.iter().enumerate() {
        if representatives[c] == usize::MAX {
            representatives[c] = v;
        }
    }
    for c in 1..comp_count {
        b.add_edge_if_absent(representatives[0], representatives[c], latency)?;
    }
    b.build_connected()
}

/// Random `d`-regular (or near-regular) graph on `n` nodes with uniform edge
/// latency, built with the configuration model plus a simple repair pass.
///
/// The configuration model pairs up `n·d` stubs uniformly at random; self
/// loops and duplicate edges are discarded, which can leave nodes with degree
/// below `d`.  A repair pass then adds edges until every node has degree at
/// least `d` (pairing deficient nodes with each other first, then borrowing
/// low-degree non-neighbors), and a final pass links any disconnected
/// components, so the result is always connected with minimum degree `d` and
/// maximum degree `d` plus a small additive constant.  For the
/// expander use in the paper (Theorem 9's constant-degree regular expander), a
/// random regular graph is an expander with high probability.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `d >= n`, if `d == 0`, or if
/// `n * d` is odd.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    latency: Latency,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if d == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "degree d must be >= 1".into(),
        });
    }
    if d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("degree {d} must be smaller than the node count {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: "n * d must be even for a d-regular graph".into(),
        });
    }

    let mut b = GraphBuilder::new(n);
    // Configuration model.
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v {
            let _ = b.add_edge_if_absent(u, v, latency);
        }
    }

    // Repair pass: raise every node to degree >= d.  Deficient nodes are
    // paired with each other first; when no two deficient nodes can be
    // joined, the remaining one borrows the lowest-degree non-neighbor
    // (which can exceed d by a small additive constant, but never by much).
    let mut degree = vec![0usize; n];
    {
        let g = b.clone().build()?;
        for v in g.nodes() {
            degree[v.index()] = g.degree(v);
        }
    }
    loop {
        let mut deficient: Vec<usize> = (0..n).filter(|&v| degree[v] < d).collect();
        if deficient.is_empty() {
            break;
        }
        deficient.shuffle(rng);
        let mut paired = None;
        'pairs: for i in 0..deficient.len() {
            for j in (i + 1)..deficient.len() {
                if !b.has_edge(deficient[i], deficient[j]) {
                    paired = Some((deficient[i], deficient[j]));
                    break 'pairs;
                }
            }
        }
        let (u, v) = match paired {
            Some(pair) => pair,
            None => {
                // A node with degree < d <= n - 1 always has a non-neighbor.
                let u = deficient[0];
                let v = (0..n)
                    .filter(|&w| w != u && !b.has_edge(u, w))
                    .min_by_key(|&w| degree[w])
                    .expect("a deficient node cannot be adjacent to all others");
                (u, v)
            }
        };
        b.add_edge(u, v, latency)?;
        degree[u] += 1;
        degree[v] += 1;
    }

    // Connectivity repair (adds at most one extra degree to a few nodes).
    let g = b.clone().build()?;
    if g.is_connected() {
        return Ok(g);
    }
    let mut component = vec![usize::MAX; n];
    let mut comp_count = 0;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![crate::NodeId::new(start)];
        component[start] = comp_count;
        while let Some(v) = stack.pop() {
            for (w, _) in g.neighbors(v) {
                if component[w.index()] == usize::MAX {
                    component[w.index()] = comp_count;
                    stack.push(w);
                }
            }
        }
        comp_count += 1;
    }
    // Chain the components through their minimum-degree nodes (a star on one
    // representative would concentrate up to `comp_count` extra edges on a
    // single node and break the near-regularity contract for small `d`).
    let mut representatives = vec![usize::MAX; comp_count];
    for v in 0..n {
        let c = component[v];
        if representatives[c] == usize::MAX || degree[v] < degree[representatives[c]] {
            representatives[c] = v;
        }
    }
    for c in 1..comp_count {
        b.add_edge_if_absent(representatives[c - 1], representatives[c], latency)?;
    }
    b.build_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_is_connected_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &p in &[0.05, 0.2, 0.6] {
            let g = erdos_renyi(50, p, 1, &mut rng).unwrap();
            assert_eq!(g.node_count(), 50);
            assert!(g.is_connected());
            assert!(g.edge_count() <= 50 * 49 / 2);
        }
    }

    #[test]
    fn erdos_renyi_p_zero_gives_repair_tree() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = erdos_renyi(10, 0.0, 1, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn erdos_renyi_p_one_is_clique() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = erdos_renyi(8, 1.0, 3, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 28);
        assert_eq!(g.max_latency(), 3);
    }

    #[test]
    fn erdos_renyi_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(14);
        assert!(erdos_renyi(0, 0.5, 1, &mut rng).is_err());
        assert!(erdos_renyi(5, 1.5, 1, &mut rng).is_err());
    }

    #[test]
    fn random_regular_degrees_are_near_target() {
        let mut rng = SmallRng::seed_from_u64(15);
        let d = 6;
        let g = random_regular(64, d, 1, &mut rng).unwrap();
        assert!(g.is_connected());
        for v in g.nodes() {
            let deg = g.degree(v);
            assert!(
                deg >= d - 2 && deg <= d + 2,
                "degree {deg} too far from {d}"
            );
        }
        // The average degree should be essentially d.
        let avg = g.total_volume() as f64 / g.node_count() as f64;
        assert!((avg - d as f64).abs() < 1.0);
    }

    #[test]
    fn random_regular_small_diameter_like_expander() {
        let mut rng = SmallRng::seed_from_u64(16);
        let g = random_regular(128, 6, 1, &mut rng).unwrap();
        let d = crate::metrics::weighted_diameter(&g).unwrap();
        // An expander on 128 nodes has diameter O(log n); allow slack.
        assert!(
            d <= 10,
            "diameter {d} too large for a degree-6 expander on 128 nodes"
        );
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(17);
        assert!(random_regular(10, 0, 1, &mut rng).is_err());
        assert!(random_regular(10, 10, 1, &mut rng).is_err());
        assert!(random_regular(5, 3, 1, &mut rng).is_err()); // n*d odd
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = erdos_renyi(30, 0.2, 1, &mut SmallRng::seed_from_u64(99)).unwrap();
        let g2 = erdos_renyi(30, 0.2, 1, &mut SmallRng::seed_from_u64(99)).unwrap();
        assert_eq!(g1, g2);
        let r1 = random_regular(30, 4, 1, &mut SmallRng::seed_from_u64(7)).unwrap();
        let r2 = random_regular(30, 4, 1, &mut SmallRng::seed_from_u64(7)).unwrap();
        assert_eq!(r1, r2);
    }

    /// The p-above-threshold path must stay byte-for-byte the classical
    /// per-pair Bernoulli sampler: fixed-seed edge-set regression against an
    /// in-test reimplementation of the original generator loop.
    #[test]
    fn dense_path_matches_the_original_bernoulli_sampler() {
        for (seed, n, p) in [(21u64, 40usize, 0.6f64), (22, 25, 0.3), (23, 12, 1.0)] {
            let g = erdos_renyi(n, p, 2, &mut SmallRng::seed_from_u64(seed)).unwrap();
            // The original generator, verbatim: every unordered pair in
            // (u, v) order, one gen_bool draw each, plus the spanning repair
            // (which the dense samples here never need).
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut expected: Vec<(usize, usize)> = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(p) {
                        expected.push((u, v));
                    }
                }
            }
            let got: Vec<(usize, usize)> = g
                .edge_ids()
                .map(|e| {
                    let rec = g.edge(e);
                    (
                        rec.u.index().min(rec.v.index()),
                        rec.u.index().max(rec.v.index()),
                    )
                })
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            let mut expected_sorted = expected.clone();
            expected_sorted.sort_unstable();
            assert_eq!(
                got_sorted, expected_sorted,
                "dense ER path diverged from the original sampler (seed {seed}, p {p})"
            );
        }
    }

    /// The geometric-skipping path draws each pair independently with
    /// probability p: check the sample sizes against binomial concentration
    /// and the membership structure against basic sanity.
    #[test]
    fn geometric_skipping_matches_the_bernoulli_distribution() {
        let n = 400usize;
        let pairs = (n * (n - 1) / 2) as f64;
        for &p in &[0.01f64, 0.05, 0.25] {
            let mut total = 0.0f64;
            let trials = 20;
            for seed in 0..trials {
                let g = erdos_renyi(n, p, 1, &mut SmallRng::seed_from_u64(seed)).unwrap();
                assert!(g.is_connected());
                total += g.edge_count() as f64;
            }
            let mean = total / trials as f64;
            let expected = pairs * p;
            // 20-trial mean of Binomial(pairs, p): allow ~6 standard errors
            // plus the handful of repair edges sparse samples may add.
            let sd = (pairs * p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (mean - expected).abs() <= 6.0 * sd + (n as f64),
                "edge-count mean {mean} too far from {expected} at p = {p}"
            );
        }
    }

    /// Vanishingly small probabilities must not break the geometric skip:
    /// the skip length can exceed `isize::MAX` (clamped) and, below f64
    /// resolution, `ln(1-p)` degenerates to 0 (routed to the per-pair
    /// path).  Both must produce the plain connectivity-repair tree.
    #[test]
    fn vanishing_p_does_not_overflow_the_geometric_skip() {
        for &p in &[1e-19f64, 1e-300] {
            let mut rng = SmallRng::seed_from_u64(41);
            let g = erdos_renyi(100, p, 1, &mut rng).unwrap();
            assert!(g.is_connected());
            assert_eq!(g.edge_count(), 99, "repair tree only at p = {p}");
        }
    }

    /// Batagelj–Brandes never emits a duplicate pair or a self loop, and a
    /// large sparse instance builds without touching the O(n²) pair space.
    #[test]
    fn geometric_skipping_is_duplicate_free_at_scale() {
        use std::collections::HashSet;
        let mut rng = SmallRng::seed_from_u64(31);
        let g = erdos_renyi(20_000, 0.0005, 1, &mut rng).unwrap();
        assert!(g.is_connected());
        let mut seen = HashSet::new();
        for e in g.edge_ids() {
            let rec = g.edge(e);
            assert_ne!(rec.u, rec.v, "self loop");
            let key = (
                rec.u.index().min(rec.v.index()),
                rec.u.index().max(rec.v.index()),
            );
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
        // E[m] = 0.0005 * ~2*10^8 pairs ≈ 10^5.
        assert!(g.edge_count() > 80_000 && g.edge_count() < 120_000);
    }
}
