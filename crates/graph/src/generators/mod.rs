//! Graph-family generators.
//!
//! These are the topologies used by the paper's proofs and by the experiment
//! harness.  All generators take explicit latency parameters (or a
//! [`LatencyScheme`](crate::latency::LatencyScheme) can be applied afterwards)
//! and produce connected graphs unless documented otherwise.
//!
//! * deterministic families: [`clique`], [`path`], [`cycle`], [`star`],
//!   [`grid`], [`binary_tree`], [`complete_bipartite`],
//! * random families: [`erdos_renyi`], [`random_regular`],
//! * composite families used in the paper's constructions and experiments:
//!   [`ring_of_cliques`], [`dumbbell`], [`barbell`], [`slow_cut_expander`].

mod basic;
mod composite;
mod random;

pub use basic::{binary_tree, clique, complete_bipartite, cycle, grid, path, star};
pub use composite::{barbell, dumbbell, ring_of_cliques, slow_cut_expander};
pub use random::{erdos_renyi, random_regular};
