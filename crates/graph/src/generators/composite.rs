//! Composite families used in the paper's constructions and experiments.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, Latency};

/// Ring of `k` cliques of `s` nodes each: nodes inside a clique are joined by
/// latency-1 edges, and consecutive cliques around the ring are joined by a
/// single *bridge* edge with latency `bridge_latency`.
///
/// This is the "well-clustered, poorly-connected" family: the conductance is
/// governed by the bridges, and raising `bridge_latency` directly raises the
/// critical latency.  (The paper's Theorem-13 construction is a denser
/// relative of this family and lives in `gossip-lowerbound`.)
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `k < 2` or `s < 1`.
pub fn ring_of_cliques(k: usize, s: usize, bridge_latency: Latency) -> Result<Graph, GraphError> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "ring of cliques needs at least two cliques".into(),
        });
    }
    if s < 1 {
        return Err(GraphError::InvalidParameters {
            reason: "ring of cliques needs at least one node per clique".into(),
        });
    }
    let mut b = GraphBuilder::new(k * s);
    let node = |clique: usize, i: usize| clique * s + i;
    // Intra-clique pairs are enumerated exactly once: trusted fast path.
    // (The bridges below join *different* cliques, so the checked calls can
    // never collide with these edges.)
    b.reserve_edges(k * s * s.saturating_sub(1) / 2);
    for c in 0..k {
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge_trusted(node(c, i), node(c, j), 1)?;
            }
        }
    }
    for c in 0..k {
        let next = (c + 1) % k;
        // When k == 2 the ring degenerates to a single bridge pair; avoid duplicating it.
        if k == 2 && c == 1 {
            break;
        }
        b.add_edge_if_absent(node(c, s - 1), node(next, 0), bridge_latency)?;
    }
    b.build_connected()
}

/// Dumbbell: two cliques of `s` nodes connected by a single bridge of latency
/// `bridge_latency`.  The bridge is the unique bottleneck cut, which makes the
/// critical conductance and critical latency easy to reason about in tests.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `s < 2`.
pub fn dumbbell(s: usize, bridge_latency: Latency) -> Result<Graph, GraphError> {
    if s < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "dumbbell needs at least two nodes per side".into(),
        });
    }
    let mut b = GraphBuilder::new(2 * s);
    // Intra-clique pairs are enumerated exactly once, and the bridge joins
    // the two sides: trusted fast path throughout.
    b.reserve_edges(s * (s - 1) + 1);
    for side in 0..2 {
        let offset = side * s;
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge_trusted(offset + i, offset + j, 1)?;
            }
        }
    }
    b.add_edge_trusted(s - 1, s, bridge_latency)?;
    b.build_connected()
}

/// Barbell: two cliques of `s` nodes connected by a *path* of `bridge_len`
/// edges (so `bridge_len - 1` intermediate relay nodes), every bridge edge
/// with latency `bridge_latency`.
///
/// With `bridge_len == 1` this degenerates to the [`dumbbell`].  Longer
/// bridges separate the two effects the dumbbell conflates: the cut is still
/// a single edge wide (conductance is unchanged), but information must now
/// traverse `bridge_len` slow hops *in series*, so the dissemination time of
/// any protocol grows linearly in `bridge_len` while the cut volume does not.
///
/// Node layout: `0..s` is the left clique, `s..2s` the right clique, and
/// `2s..2s + bridge_len - 1` the relay nodes in left-to-right order.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `s < 2` or `bridge_len < 1`.
pub fn barbell(s: usize, bridge_len: usize, bridge_latency: Latency) -> Result<Graph, GraphError> {
    if s < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "barbell needs at least two nodes per side".into(),
        });
    }
    if bridge_len < 1 {
        return Err(GraphError::InvalidParameters {
            reason: "barbell needs a bridge of at least one edge".into(),
        });
    }
    let mut b = GraphBuilder::new(2 * s + bridge_len - 1);
    // Intra-clique pairs are enumerated exactly once, and every bridge edge
    // touches a fresh relay node (or joins the two cliques): trusted fast
    // path throughout.
    b.reserve_edges(s * (s - 1) + bridge_len);
    for side in 0..2 {
        let offset = side * s;
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge_trusted(offset + i, offset + j, 1)?;
            }
        }
    }
    // Path from the last left-clique node through the relays to the first
    // right-clique node.
    let mut prev = s - 1;
    for relay in 0..bridge_len - 1 {
        let node = 2 * s + relay;
        b.add_edge_trusted(prev, node, bridge_latency)?;
        prev = node;
    }
    b.add_edge_trusted(prev, s, bridge_latency)?;
    b.build_connected()
}

/// A well-connected graph with a planted slow cut: a random `d`-regular
/// expander on `n` nodes where every edge crossing the balanced cut
/// `({0..n/2}, {n/2..n})` gets latency `slow_latency` and every other edge
/// gets latency 1.
///
/// This family exercises the difference between classical conductance (which
/// stays `Θ(1)` since the topology is an expander) and the critical weighted
/// conductance (which degrades with `slow_latency`): it is the positive
/// counterpart to the lower-bound constructions and is used throughout the
/// E5/E8 experiments.
///
/// # Errors
///
/// Propagates the parameter errors of [`random_regular`](crate::generators::random_regular).
pub fn slow_cut_expander<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    slow_latency: Latency,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let base = crate::generators::random_regular(n, d, 1, rng)?;
    let half = n / 2;
    let mut b = GraphBuilder::new(n);
    for rec in base.edges() {
        let crosses = (rec.u.index() < half) != (rec.v.index() < half);
        let latency = if crosses { slow_latency } else { 1 };
        b.add_edge(rec.u.index(), rec.v.index(), latency)?;
    }
    b.build_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ring_of_cliques_counts() {
        let g = ring_of_cliques(4, 5, 7).unwrap();
        assert_eq!(g.node_count(), 20);
        // 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert_eq!(g.edge_count(), 44);
        assert!(g.is_connected());
        assert_eq!(g.max_latency(), 7);
    }

    #[test]
    fn ring_of_cliques_diameter_grows_with_bridge_latency() {
        let fast = ring_of_cliques(6, 4, 1).unwrap();
        let slow = ring_of_cliques(6, 4, 20).unwrap();
        let d_fast = metrics::weighted_diameter(&fast).unwrap();
        let d_slow = metrics::weighted_diameter(&slow).unwrap();
        assert!(d_slow > d_fast);
        assert!(d_slow >= 3 * 20); // must cross at least 3 bridges to reach the far clique
    }

    #[test]
    fn ring_of_cliques_two_cliques_has_single_bridge() {
        let g = ring_of_cliques(2, 3, 5).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2 * 3 + 1);
        assert!(ring_of_cliques(1, 3, 1).is_err());
        assert!(ring_of_cliques(3, 0, 1).is_err());
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 3, 9).unwrap();
        // Two 4-cliques plus two relay nodes.
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 2 * 6 + 3);
        assert_eq!(g.max_latency(), 9);
        assert!(g.is_connected());
        // Crossing the bridge costs bridge_len hops of bridge latency.
        assert_eq!(metrics::weighted_diameter(&g), Some(1 + 3 * 9 + 1));
        assert!(barbell(1, 2, 1).is_err());
        assert!(barbell(3, 0, 1).is_err());
    }

    #[test]
    fn barbell_with_unit_bridge_matches_dumbbell_shape() {
        let b = barbell(5, 1, 7).unwrap();
        let d = dumbbell(5, 7).unwrap();
        assert_eq!(b.node_count(), d.node_count());
        assert_eq!(b.edge_count(), d.edge_count());
        assert_eq!(
            metrics::weighted_diameter(&b),
            metrics::weighted_diameter(&d)
        );
    }

    #[test]
    fn dumbbell_structure() {
        let g = dumbbell(4, 9).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 2 * 6 + 1);
        assert_eq!(g.max_latency(), 9);
        assert!(g.is_connected());
        assert!(dumbbell(1, 1).is_err());
    }

    #[test]
    fn dumbbell_diameter_includes_bridge() {
        let g = dumbbell(4, 9).unwrap();
        // far node in left clique -> bridge endpoint (1) -> bridge (9) -> far node (1)
        assert_eq!(metrics::weighted_diameter(&g), Some(11));
    }

    #[test]
    fn slow_cut_expander_assigns_latencies_by_side() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = slow_cut_expander(32, 6, 50, &mut rng).unwrap();
        assert!(g.is_connected());
        for rec in g.edges() {
            let crosses = (rec.u.index() < 16) != (rec.v.index() < 16);
            if crosses {
                assert_eq!(rec.latency, 50);
            } else {
                assert_eq!(rec.latency, 1);
            }
        }
    }
}
