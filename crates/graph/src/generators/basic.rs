//! Deterministic graph families.

use crate::{Graph, GraphBuilder, GraphError, Latency};

/// Complete graph `K_n` with every edge having latency `latency`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0` and
/// [`GraphError::ZeroLatency`] if `latency == 0`.
pub fn clique(n: usize, latency: Latency) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "clique needs n >= 1".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Each unordered pair is enumerated exactly once: the duplicate-free
    // trusted path applies (and at n = 4096 it cuts the build from seconds
    // to tens of milliseconds).
    b.reserve_edges(n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge_trusted(u, v, latency)?;
        }
    }
    b.build()
}

/// Path `0 - 1 - … - (n-1)` with uniform edge latency.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0`.
pub fn path(n: usize, latency: Latency) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "path needs n >= 1".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n.saturating_sub(1) {
        b.add_edge_trusted(u, u + 1, latency)?;
    }
    b.build()
}

/// Cycle on `n >= 3` nodes with uniform edge latency.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 3`.
pub fn cycle(n: usize, latency: Latency) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "cycle needs n >= 3".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.add_edge_trusted(u, (u + 1) % n, latency)?;
    }
    b.build()
}

/// Star with one hub (node 0) and `n - 1` leaves, uniform edge latency.
///
/// The star is the paper's example of why pull is necessary: with push-only
/// flooding, a star costs `Ω(nD)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 2`.
pub fn star(n: usize, latency: Latency) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "star needs n >= 2".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    b.reserve_edges(n - 1);
    for leaf in 1..n {
        b.add_edge_trusted(0, leaf, latency)?;
    }
    b.build()
}

/// `rows x cols` grid with uniform edge latency; node `(r, c)` has id `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if either dimension is zero.
pub fn grid(rows: usize, cols: usize, latency: Latency) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "grid needs both dimensions >= 1".into(),
        });
    }
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                b.add_edge_trusted(id, id + 1, latency)?;
            }
            if r + 1 < rows {
                b.add_edge_trusted(id, id + cols, latency)?;
            }
        }
    }
    b.build()
}

/// Complete binary tree with `n` nodes (node 0 the root, children of `i` are
/// `2i+1` and `2i+2`), uniform edge latency.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n == 0`.
pub fn binary_tree(n: usize, latency: Latency) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "tree needs n >= 1".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    for child in 1..n {
        let parent = (child - 1) / 2;
        b.add_edge_trusted(parent, child, latency)?;
    }
    b.build()
}

/// Complete bipartite graph `K_{left, right}`; the left side is nodes
/// `0..left`, the right side `left..left+right`, and every cross edge has
/// latency `latency`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if either side is empty.
pub fn complete_bipartite(
    left: usize,
    right: usize,
    latency: Latency,
) -> Result<Graph, GraphError> {
    if left == 0 || right == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "complete bipartite graph needs both sides non-empty".into(),
        });
    }
    let mut b = GraphBuilder::new(left + right);
    b.reserve_edges(left * right);
    for u in 0..left {
        for v in 0..right {
            b.add_edge_trusted(u, left + v, latency)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn clique_counts() {
        let g = clique(5, 2).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(metrics::weighted_diameter(&g), Some(2));
        assert!(clique(0, 1).is_err());
    }

    #[test]
    fn path_diameter_scales_with_latency() {
        let g = path(5, 3).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(metrics::weighted_diameter(&g), Some(12));
        assert_eq!(metrics::hop_diameter(&g), Some(4));
        assert!(path(0, 1).is_err());
        assert_eq!(path(1, 1).unwrap().edge_count(), 0);
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(6, 1).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(metrics::weighted_diameter(&g), Some(3));
        assert!(cycle(2, 1).is_err());
    }

    #[test]
    fn star_has_a_hub() {
        let g = star(7, 1).unwrap();
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(metrics::weighted_diameter(&g), Some(2));
        assert!(star(1, 1).is_err());
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, 1).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(metrics::weighted_diameter(&g), Some(5));
        assert!(grid(0, 3, 1).is_err());
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(7, 1).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(metrics::weighted_diameter(&g), Some(4));
        assert!(binary_tree(0, 1).is_err());
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4, 2).unwrap();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.max_degree(), 4);
        assert!(complete_bipartite(0, 4, 1).is_err());
    }

    #[test]
    fn all_basic_families_are_connected() {
        assert!(clique(6, 1).unwrap().is_connected());
        assert!(path(6, 1).unwrap().is_connected());
        assert!(cycle(6, 1).unwrap().is_connected());
        assert!(star(6, 1).unwrap().is_connected());
        assert!(grid(3, 3, 1).unwrap().is_connected());
        assert!(binary_tree(10, 1).unwrap().is_connected());
        assert!(complete_bipartite(3, 3, 1).unwrap().is_connected());
    }
}
