//! Distance and degree metrics on latency-weighted graphs.
//!
//! The paper's bounds are stated in terms of the *weighted diameter* `D`
//! (shortest-path distances with latencies as weights), the *hop diameter*
//! (unweighted), and the maximum degree `Δ`.  This module computes all three,
//! plus the building blocks (single-source Dijkstra / BFS).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, Latency, NodeId};

/// Distance value used by the shortest-path routines.
///
/// `u64::MAX` is reserved to mean "unreachable"; see [`UNREACHABLE`].
pub type Distance = u64;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: Distance = u64::MAX;

/// Single-source shortest-path distances with latencies as weights (Dijkstra).
///
/// Returns a vector indexed by node id; unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn dijkstra(g: &Graph, source: NodeId) -> Vec<Distance> {
    let n = g.node_count();
    assert!(source.index() < n, "source node out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source.index()] = 0;
    let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, source.index() as u32)));
    while let Some(Reverse((d, v))) = heap.pop() {
        let v_idx = v as usize;
        if d > dist[v_idx] {
            continue;
        }
        for (w, e) in g.neighbors(NodeId::new(v_idx)) {
            let nd = d.saturating_add(g.latency(e));
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                heap.push(Reverse((nd, w.index() as u32)));
            }
        }
    }
    dist
}

/// Single-source hop distances ignoring latencies (BFS).
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn bfs_hops(g: &Graph, source: NodeId) -> Vec<Distance> {
    let n = g.node_count();
    assert!(source.index() < n, "source node out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for (w, _) in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Weighted eccentricity of `source`: the largest finite Dijkstra distance.
///
/// Returns `None` if some node is unreachable from `source`.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<Distance> {
    let dist = dijkstra(g, source);
    let mut max = 0;
    for d in dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact weighted diameter `D`: the maximum over all pairs of the weighted
/// shortest-path distance.  Runs Dijkstra from every node — `O(n · m log n)` —
/// so it is intended for the graph sizes used in tests and experiments.
///
/// Returns `None` if the graph is disconnected.
pub fn weighted_diameter(g: &Graph) -> Option<Distance> {
    let mut diameter = 0;
    for v in g.nodes() {
        diameter = diameter.max(eccentricity(g, v)?);
    }
    Some(diameter)
}

/// Two-sweep lower bound on the weighted diameter: run Dijkstra from an
/// arbitrary node, then from the farthest node found.  The result is a lower
/// bound on `D` that is exact on trees and very close in practice; it costs
/// only two Dijkstra runs.
///
/// Returns `None` if the graph is disconnected; the empty graph has diameter
/// `Some(0)`, consistently with [`weighted_diameter`] and [`hop_diameter`].
pub fn weighted_diameter_double_sweep(g: &Graph) -> Option<Distance> {
    if g.node_count() == 0 {
        return Some(0);
    }
    let first = dijkstra(g, NodeId::new(0));
    let mut far = NodeId::new(0);
    let mut far_d = 0;
    for (i, &d) in first.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > far_d {
            far_d = d;
            far = NodeId::new(i);
        }
    }
    eccentricity(g, far)
}

/// Largest graph (in nodes) for which [`estimate_diameter`] falls back to
/// the exact all-pairs computation.
///
/// Below this size the exact diameter is cheap (`O(n·m·log n)` with small
/// `n`), and every experiment table that prints `D` stays byte-identical to
/// the historical exact output.  Above it, the estimators run a constant
/// number of sweeps instead.
pub const EXACT_DIAMETER_THRESHOLD: usize = 1024;

/// Lower and upper bounds on a diameter, as produced by
/// [`estimate_diameter`] / [`estimate_hop_diameter`].
///
/// The paper's phase algorithms only need the diameter `D` up to constant
/// factors (the guess-and-double drivers tolerate a factor-2 overshoot by
/// construction), so the hot path consumes `upper` — guaranteed `≥ D` —
/// while `lower` is kept for reporting and for sanity checks
/// (`lower ≤ D ≤ upper` always holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// Lower bound: the largest eccentricity seen from any sweep root
    /// (every eccentricity is `≤ D`).
    pub lower: Distance,
    /// Upper bound: the smallest `2·ecc(root)` over the sweep roots (the
    /// triangle inequality gives `D ≤ 2·ecc(v)` for every `v`).
    pub upper: Distance,
}

impl DiameterEstimate {
    /// An exact estimate (`lower == upper == d`).
    pub fn exact(d: Distance) -> Self {
        DiameterEstimate { lower: d, upper: d }
    }

    /// `true` when the bounds have closed (the estimate *is* the diameter).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Bounds the **weighted** diameter with a few Dijkstra sweeps instead of the
/// all-pairs `O(n·m·log n)` computation.
///
/// Graphs of at most [`EXACT_DIAMETER_THRESHOLD`] nodes are computed exactly
/// (the estimate [`is_exact`](DiameterEstimate::is_exact)).  Larger graphs
/// get a constant number of sweeps: from node 0, from the farthest node
/// found (the classic double sweep, whose eccentricity is a strong lower
/// bound), from the farthest node of *that* sweep, and from the
/// maximum-degree node.  Each root contributes `ecc(root)` to the lower
/// bound and `2·ecc(root)` to the upper bound.
///
/// Returns `None` if the graph is disconnected; the empty graph is
/// `Some(exact(0))`.
pub fn estimate_diameter(g: &Graph) -> Option<DiameterEstimate> {
    estimate_diameter_with_threshold(g, EXACT_DIAMETER_THRESHOLD)
}

/// [`estimate_diameter`] with an explicit exact-fallback threshold
/// (`threshold = 0` forces the sweep estimator, `threshold = usize::MAX`
/// forces the exact path).
pub fn estimate_diameter_with_threshold(g: &Graph, threshold: usize) -> Option<DiameterEstimate> {
    estimate_with(g, threshold, weighted_diameter, dijkstra)
}

/// Bounds the **hop** (unweighted) diameter; the BFS analogue of
/// [`estimate_diameter`], with the same exact fallback below
/// [`EXACT_DIAMETER_THRESHOLD`] and the same disconnected/empty behavior.
pub fn estimate_hop_diameter(g: &Graph) -> Option<DiameterEstimate> {
    estimate_with(g, EXACT_DIAMETER_THRESHOLD, hop_diameter, bfs_hops)
}

fn estimate_with(
    g: &Graph,
    threshold: usize,
    exact: impl Fn(&Graph) -> Option<Distance>,
    sweep: impl Fn(&Graph, NodeId) -> Vec<Distance>,
) -> Option<DiameterEstimate> {
    let n = g.node_count();
    if n == 0 {
        return Some(DiameterEstimate::exact(0));
    }
    if n <= threshold {
        return exact(g).map(DiameterEstimate::exact);
    }
    // Sweep 1 from node 0; it both bounds the diameter and picks the next
    // root (the farthest node, as in the classic double sweep).
    let (far, ecc0) = sweep_extent(&sweep(g, NodeId::new(0)))?;
    let mut lower = ecc0;
    let mut upper = ecc0.saturating_mul(2);
    let mut next_root = far;
    // Two more peripheral sweeps (farthest-of-farthest), plus the
    // maximum-degree node — a hub's eccentricity is often close to `D/2`,
    // which tightens the upper bound on star-like topologies.
    let hub = (0..n)
        .map(NodeId::new)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(NodeId::new(0));
    let mut visited = vec![NodeId::new(0)];
    for root in [Some(next_root), None, Some(hub)] {
        let root = root.unwrap_or(next_root);
        if visited.contains(&root) {
            continue;
        }
        visited.push(root);
        let (far, ecc) = sweep_extent(&sweep(g, root))?;
        lower = lower.max(ecc);
        upper = upper.min(ecc.saturating_mul(2));
        next_root = far;
    }
    // `min 2·ecc ≥ D ≥ max ecc` always, so the bounds are already ordered.
    Some(DiameterEstimate { lower, upper })
}

/// Farthest node and eccentricity of a sweep's distance vector, or `None`
/// if some node is unreachable.
fn sweep_extent(dist: &[Distance]) -> Option<(NodeId, Distance)> {
    let mut far = NodeId::new(0);
    let mut ecc = 0;
    for (i, &d) in dist.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > ecc {
            ecc = d;
            far = NodeId::new(i);
        }
    }
    Some((far, ecc))
}

/// Exact hop (unweighted) diameter.
///
/// Returns `None` if the graph is disconnected.
pub fn hop_diameter(g: &Graph) -> Option<Distance> {
    let mut diameter = 0;
    for v in g.nodes() {
        let dist = bfs_hops(g, v);
        for d in dist {
            if d == UNREACHABLE {
                return None;
            }
            diameter = diameter.max(d);
        }
    }
    Some(diameter)
}

/// Weighted distance between a specific pair of nodes.
///
/// Returns `None` if `target` is unreachable from `source`.
pub fn distance(g: &Graph, source: NodeId, target: NodeId) -> Option<Distance> {
    let d = dijkstra(g, source)[target.index()];
    (d != UNREACHABLE).then_some(d)
}

/// A compact summary of the structural parameters the paper's bounds use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSummary {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Weighted-diameter bounds (exact below [`EXACT_DIAMETER_THRESHOLD`];
    /// `None` if disconnected).
    pub weighted_diameter: Option<DiameterEstimate>,
    /// Hop-diameter bounds (same exactness rules; `None` if disconnected).
    pub hop_diameter: Option<DiameterEstimate>,
    /// Maximum edge latency `ℓ_max`.
    pub max_latency: Latency,
}

/// Computes a [`GraphSummary`].
///
/// Diameters come from the sweep estimators ([`estimate_diameter`] /
/// [`estimate_hop_diameter`]): exact — and flagged as such — below
/// [`EXACT_DIAMETER_THRESHOLD`] nodes, constant-sweep bounds above it.
/// Summarizing a large graph therefore no longer runs the two all-pairs
/// `O(n·m·log n)` computations the exact diameters used to need.
pub fn summarize(g: &Graph) -> GraphSummary {
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        max_degree: g.max_degree(),
        weighted_diameter: estimate_diameter(g),
        hop_diameter: estimate_hop_diameter(g),
        max_latency: g.max_latency(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Triangle with one slow edge: 0-1 (1), 1-2 (1), 0-2 (10).
    fn slow_triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(0, 2, 10).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_fast_multi_hop_path() {
        let g = slow_triangle();
        let d = dijkstra(&g, NodeId::new(0));
        // Direct edge has latency 10 but the two-hop path costs 2.
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_ignores_latency() {
        let g = slow_triangle();
        let d = bfs_hops(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 1]);
    }

    #[test]
    fn diameters() {
        let g = slow_triangle();
        assert_eq!(weighted_diameter(&g), Some(2));
        assert_eq!(hop_diameter(&g), Some(1));
        assert_eq!(weighted_diameter_double_sweep(&g), Some(2));
    }

    #[test]
    fn eccentricity_and_pairwise_distance() {
        let g = slow_triangle();
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(2));
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(2)), Some(2));
    }

    #[test]
    fn disconnected_graphs_report_none() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weighted_diameter(&g), None);
        assert_eq!(hop_diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)), None);
        assert_eq!(weighted_diameter_double_sweep(&g), None);
    }

    #[test]
    fn path_graph_diameter_is_latency_sum() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3).unwrap();
        b.add_edge(1, 2, 4).unwrap();
        b.add_edge(2, 3, 5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weighted_diameter(&g), Some(12));
        assert_eq!(weighted_diameter_double_sweep(&g), Some(12));
        assert_eq!(hop_diameter(&g), Some(3));
    }

    #[test]
    fn summary_collects_all_parameters() {
        let g = slow_triangle();
        let s = summarize(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.weighted_diameter, Some(DiameterEstimate::exact(2)));
        assert_eq!(s.hop_diameter, Some(DiameterEstimate::exact(1)));
        assert_eq!(s.max_latency, 10);
    }

    #[test]
    fn single_node_metrics() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(weighted_diameter(&g), Some(0));
        assert_eq!(hop_diameter(&g), Some(0));
    }

    #[test]
    fn empty_and_single_node_behavior_is_consistent() {
        // A `node_count() == 0` graph is unconstructible (`GraphError::Empty`
        // from every constructor), so no metric can panic on it — the
        // `Some(0)` guards in the sweep-based routines are pure defense and
        // agree with `weighted_diameter`/`hop_diameter`'s empty-loop result.
        assert_eq!(
            GraphBuilder::new(0).build().unwrap_err(),
            crate::GraphError::Empty
        );
        // The smallest constructible graph: every diameter notion agrees.
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(weighted_diameter(&g), Some(0));
        assert_eq!(hop_diameter(&g), Some(0));
        assert_eq!(weighted_diameter_double_sweep(&g), Some(0));
        assert_eq!(estimate_diameter(&g), Some(DiameterEstimate::exact(0)));
        assert_eq!(estimate_hop_diameter(&g), Some(DiameterEstimate::exact(0)));
        // And with the sweep path forced (threshold 0), still Some(0).
        assert_eq!(
            estimate_diameter_with_threshold(&g, 0),
            Some(DiameterEstimate::exact(0))
        );
    }

    #[test]
    fn estimate_is_exact_below_the_threshold() {
        let g = slow_triangle();
        let est = estimate_diameter(&g).unwrap();
        assert!(est.is_exact());
        assert_eq!(est.upper, weighted_diameter(&g).unwrap());
        let hop = estimate_hop_diameter(&g).unwrap();
        assert_eq!(hop, DiameterEstimate::exact(1));
    }

    #[test]
    fn estimate_brackets_the_diameter_above_the_threshold() {
        // Long path: the double sweep is exact on trees, so lower == D.
        let mut b = GraphBuilder::new(40);
        for i in 0..39 {
            b.add_edge(i, i + 1, (i as Latency % 3) + 1).unwrap();
        }
        let g = b.build().unwrap();
        let d = weighted_diameter(&g).unwrap();
        // Force the sweep estimator with threshold 0.
        let est = estimate_diameter_with_threshold(&g, 0).unwrap();
        assert!(est.lower <= d && d <= est.upper, "{est:?} vs D={d}");
        assert_eq!(est.lower, d, "double sweep is exact on paths");
    }

    #[test]
    fn estimate_reports_disconnection() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(estimate_diameter(&g), None);
        assert_eq!(estimate_diameter_with_threshold(&g, 0), None);
        assert_eq!(estimate_hop_diameter(&g), None);
    }

    #[test]
    #[should_panic(expected = "source node out of range")]
    fn dijkstra_panics_on_bad_source() {
        let g = slow_triangle();
        let _ = dijkstra(&g, NodeId::new(17));
    }
}
