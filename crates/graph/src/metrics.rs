//! Distance and degree metrics on latency-weighted graphs.
//!
//! The paper's bounds are stated in terms of the *weighted diameter* `D`
//! (shortest-path distances with latencies as weights), the *hop diameter*
//! (unweighted), and the maximum degree `Δ`.  This module computes all three,
//! plus the building blocks (single-source Dijkstra / BFS).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, Latency, NodeId};

/// Distance value used by the shortest-path routines.
///
/// `u64::MAX` is reserved to mean "unreachable"; see [`UNREACHABLE`].
pub type Distance = u64;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: Distance = u64::MAX;

/// Single-source shortest-path distances with latencies as weights (Dijkstra).
///
/// Returns a vector indexed by node id; unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn dijkstra(g: &Graph, source: NodeId) -> Vec<Distance> {
    let n = g.node_count();
    assert!(source.index() < n, "source node out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source.index()] = 0;
    let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, source.index() as u32)));
    while let Some(Reverse((d, v))) = heap.pop() {
        let v_idx = v as usize;
        if d > dist[v_idx] {
            continue;
        }
        for (w, e) in g.neighbors(NodeId::new(v_idx)) {
            let nd = d.saturating_add(g.latency(e));
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                heap.push(Reverse((nd, w.index() as u32)));
            }
        }
    }
    dist
}

/// Single-source hop distances ignoring latencies (BFS).
///
/// # Panics
///
/// Panics if `source` is not a node of `g`.
pub fn bfs_hops(g: &Graph, source: NodeId) -> Vec<Distance> {
    let n = g.node_count();
    assert!(source.index() < n, "source node out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for (w, _) in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Weighted eccentricity of `source`: the largest finite Dijkstra distance.
///
/// Returns `None` if some node is unreachable from `source`.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<Distance> {
    let dist = dijkstra(g, source);
    let mut max = 0;
    for d in dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact weighted diameter `D`: the maximum over all pairs of the weighted
/// shortest-path distance.  Runs Dijkstra from every node — `O(n · m log n)` —
/// so it is intended for the graph sizes used in tests and experiments.
///
/// Returns `None` if the graph is disconnected.
pub fn weighted_diameter(g: &Graph) -> Option<Distance> {
    let mut diameter = 0;
    for v in g.nodes() {
        diameter = diameter.max(eccentricity(g, v)?);
    }
    Some(diameter)
}

/// Two-sweep lower bound on the weighted diameter: run Dijkstra from an
/// arbitrary node, then from the farthest node found.  The result is a lower
/// bound on `D` that is exact on trees and very close in practice; it costs
/// only two Dijkstra runs.
///
/// Returns `None` if the graph is disconnected.
pub fn weighted_diameter_double_sweep(g: &Graph) -> Option<Distance> {
    let first = dijkstra(g, NodeId::new(0));
    let mut far = NodeId::new(0);
    let mut far_d = 0;
    for (i, &d) in first.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > far_d {
            far_d = d;
            far = NodeId::new(i);
        }
    }
    eccentricity(g, far)
}

/// Exact hop (unweighted) diameter.
///
/// Returns `None` if the graph is disconnected.
pub fn hop_diameter(g: &Graph) -> Option<Distance> {
    let mut diameter = 0;
    for v in g.nodes() {
        let dist = bfs_hops(g, v);
        for d in dist {
            if d == UNREACHABLE {
                return None;
            }
            diameter = diameter.max(d);
        }
    }
    Some(diameter)
}

/// Weighted distance between a specific pair of nodes.
///
/// Returns `None` if `target` is unreachable from `source`.
pub fn distance(g: &Graph, source: NodeId, target: NodeId) -> Option<Distance> {
    let d = dijkstra(g, source)[target.index()];
    (d != UNREACHABLE).then_some(d)
}

/// A compact summary of the structural parameters the paper's bounds use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSummary {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Weighted diameter `D` (None if disconnected).
    pub weighted_diameter: Option<Distance>,
    /// Hop diameter (None if disconnected).
    pub hop_diameter: Option<Distance>,
    /// Maximum edge latency `ℓ_max`.
    pub max_latency: Latency,
}

/// Computes a [`GraphSummary`] (exact diameters; intended for experiment-scale graphs).
pub fn summarize(g: &Graph) -> GraphSummary {
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        max_degree: g.max_degree(),
        weighted_diameter: weighted_diameter(g),
        hop_diameter: hop_diameter(g),
        max_latency: g.max_latency(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Triangle with one slow edge: 0-1 (1), 1-2 (1), 0-2 (10).
    fn slow_triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(0, 2, 10).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_fast_multi_hop_path() {
        let g = slow_triangle();
        let d = dijkstra(&g, NodeId::new(0));
        // Direct edge has latency 10 but the two-hop path costs 2.
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_ignores_latency() {
        let g = slow_triangle();
        let d = bfs_hops(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 1]);
    }

    #[test]
    fn diameters() {
        let g = slow_triangle();
        assert_eq!(weighted_diameter(&g), Some(2));
        assert_eq!(hop_diameter(&g), Some(1));
        assert_eq!(weighted_diameter_double_sweep(&g), Some(2));
    }

    #[test]
    fn eccentricity_and_pairwise_distance() {
        let g = slow_triangle();
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(2));
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(2)), Some(2));
    }

    #[test]
    fn disconnected_graphs_report_none() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weighted_diameter(&g), None);
        assert_eq!(hop_diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId::new(0)), None);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(3)), None);
        assert_eq!(weighted_diameter_double_sweep(&g), None);
    }

    #[test]
    fn path_graph_diameter_is_latency_sum() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3).unwrap();
        b.add_edge(1, 2, 4).unwrap();
        b.add_edge(2, 3, 5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weighted_diameter(&g), Some(12));
        assert_eq!(weighted_diameter_double_sweep(&g), Some(12));
        assert_eq!(hop_diameter(&g), Some(3));
    }

    #[test]
    fn summary_collects_all_parameters() {
        let g = slow_triangle();
        let s = summarize(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.weighted_diameter, Some(2));
        assert_eq!(s.hop_diameter, Some(1));
        assert_eq!(s.max_latency, 10);
    }

    #[test]
    fn single_node_metrics() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(weighted_diameter(&g), Some(0));
        assert_eq!(hop_diameter(&g), Some(0));
    }

    #[test]
    #[should_panic(expected = "source node out of range")]
    fn dijkstra_panics_on_bad_source() {
        let g = slow_triangle();
        let _ = dijkstra(&g, NodeId::new(17));
    }
}
