//! # gossip-graph
//!
//! Weighted-graph substrate for the reproduction of *Slow Links, Fast Links,
//! and the Cost of Gossip* (Sourav, Robinson, Gilbert — ICDCS 2018).
//!
//! The paper models a network as a connected, undirected graph `G = (V, E)`
//! where every edge carries an integer *latency*: a bidirectional exchange over
//! an edge of latency `ℓ` takes `ℓ` rounds to complete.  This crate provides
//! that substrate:
//!
//! * [`Graph`] — an undirected graph with integer edge latencies and stable
//!   [`NodeId`] / [`EdgeId`] handles,
//! * [`AliveView`] — crash/cut liveness overlays on an immutable graph
//!   (filtered adjacency for fault injection),
//! * [`GraphBuilder`] — incremental, validated construction,
//! * [`generators`] — the graph families used throughout the paper's proofs
//!   and the evaluation harness (cliques, expanders, rings of cliques,
//!   Erdős–Rényi, grids, stars, dumbbells, bipartite gadgets, …),
//! * [`metrics`] — weighted distances (Dijkstra), weighted/hop diameter,
//!   degrees and volumes,
//! * [`cut`] — cuts, cut edges and their latency-class decomposition
//!   (the raw material of Definitions 1–4 of the paper),
//! * [`spanner`] — directed subgraph/spanner representation with per-node
//!   orientation and stretch verification (Lemma 19 / Theorem 20),
//! * [`latency`] — latency-assignment strategies used to build weighted
//!   instances of the unweighted families.
//!
//! # Example
//!
//! ```rust
//! use gossip_graph::{GraphBuilder, Latency};
//!
//! // A 4-cycle where one edge is 10x slower than the others.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1).unwrap();
//! b.add_edge(1, 2, 1).unwrap();
//! b.add_edge(2, 3, 1).unwrap();
//! b.add_edge(3, 0, 10).unwrap();
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.max_latency(), 10 as Latency);
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alive;
mod builder;
mod error;
mod graph;
mod ids;

pub mod cut;
pub mod generators;
pub mod latency;
pub mod metrics;
pub mod spanner;

pub use alive::AliveView;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeRecord, Graph, NeighborIter};
pub use ids::{EdgeId, Latency, NodeId};
