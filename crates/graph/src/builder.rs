//! Incremental, validated graph construction.

use std::collections::HashSet;

use crate::graph::EdgeRecord;
use crate::{Graph, GraphError, Latency, NodeId};

/// Builder for [`Graph`] values.
///
/// The builder validates every edge as it is added (no self loops, no
/// duplicates, positive latency, endpoints in range) so that an invalid graph
/// is rejected at the point the mistake is made rather than at build time.
///
/// # Example
///
/// ```rust
/// use gossip_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1)?;
/// b.add_edge(1, 2, 4)?;
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), gossip_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<EdgeRecord>,
    // gossip-lint: allow(unordered-iter): O(1) duplicate-edge membership test on the graph-build hot path, never iterated
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds `count` extra nodes and returns the id of the first new node.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.node_count;
        self.node_count += count;
        NodeId::new(first)
    }

    /// Adds an undirected edge `{u, v}` with the given latency.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, if `u == v`, if
    /// the latency is zero, or if the edge was already added.
    pub fn add_edge(&mut self, u: usize, v: usize, latency: Latency) -> Result<(), GraphError> {
        if u >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count,
            });
        }
        if v >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if latency == 0 {
            return Err(GraphError::ZeroLatency { u, v });
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.edges.push(EdgeRecord {
            u: NodeId::new(u.min(v)),
            v: NodeId::new(u.max(v)),
            latency,
        });
        Ok(())
    }

    /// Adds an undirected edge `{u, v}` that the caller *guarantees* is not a
    /// duplicate, skipping the duplicate-edge `HashSet` entirely.
    ///
    /// This is the validated fast path for generator-produced edge lists:
    /// structured generators (cliques, grids, stars, …) enumerate each
    /// unordered pair exactly once by construction, and at dense sizes the
    /// hash insertions dominate the build (~4 s for a 4096-node clique).  All
    /// cheap validation — endpoint range, self loops, positive latency — is
    /// still performed; only the duplicate check is skipped.
    ///
    /// Because trusted edges bypass the `seen` set, [`has_edge`](Self::has_edge)
    /// and [`add_edge_if_absent`](Self::add_edge_if_absent) do not know about
    /// them.  That is safe when the checked calls can never collide with the
    /// trusted ones (e.g. bridge edges between cliques whose internal edges
    /// were added trusted); builders mixing the two paths must ensure it.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, if `u == v`, or
    /// if the latency is zero.
    pub fn add_edge_trusted(
        &mut self,
        u: usize,
        v: usize,
        latency: Latency,
    ) -> Result<(), GraphError> {
        if u >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count,
            });
        }
        if v >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if latency == 0 {
            return Err(GraphError::ZeroLatency { u, v });
        }
        self.edges.push(EdgeRecord {
            u: NodeId::new(u.min(v)),
            v: NodeId::new(u.max(v)),
            latency,
        });
        Ok(())
    }

    /// Reserves capacity for at least `additional` more edges (useful before
    /// a bulk [`add_edge_trusted`](Self::add_edge_trusted) loop).
    pub fn reserve_edges(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Adds the edge only if it is not already present; returns whether it was added.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range endpoints, self loops, or zero latency.
    pub fn add_edge_if_absent(
        &mut self,
        u: usize,
        v: usize,
        latency: Latency,
    ) -> Result<bool, GraphError> {
        let key = (u.min(v) as u32, u.max(v) as u32);
        if self.seen.contains(&key) {
            return Ok(false);
        }
        self.add_edge(u, v, latency)?;
        Ok(true)
    }

    /// Returns `true` if the unordered pair `{u, v}` was already added.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.seen.contains(&(u.min(v) as u32, u.max(v) as u32))
    }

    /// Finalises the builder into an immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if the graph has no nodes.
    pub fn build(self) -> Result<Graph, GraphError> {
        Graph::from_parts(self.node_count, self.edges)
    }

    /// Like [`build`](Self::build) but additionally requires the graph to be connected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected, and
    /// [`GraphError::Empty`] if it has no nodes.
    pub fn build_connected(self) -> Result<Graph, GraphError> {
        let g = self.build()?;
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 5, 1),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                node_count: 2
            })
        );
        assert_eq!(
            b.add_edge(7, 1, 1),
            Err(GraphError::NodeOutOfRange {
                node: 7,
                node_count: 2
            })
        );
    }

    #[test]
    fn rejects_self_loop_zero_latency_and_duplicates() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(1, 1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(
            b.add_edge(0, 1, 0),
            Err(GraphError::ZeroLatency { u: 0, v: 1 })
        );
        b.add_edge(0, 1, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0, 3),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn add_edge_if_absent_is_idempotent() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_if_absent(0, 1, 1).unwrap());
        assert!(!b.add_edge_if_absent(1, 0, 9).unwrap());
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(0, 1));
        assert!(!b.has_edge(0, 2));
    }

    #[test]
    fn add_nodes_extends_range() {
        let mut b = GraphBuilder::new(1);
        let first_new = b.add_nodes(2);
        assert_eq!(first_new, NodeId::new(1));
        assert_eq!(b.node_count(), 3);
        b.add_edge(0, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn build_connected_enforces_connectivity() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        assert_eq!(b.build_connected().unwrap_err(), GraphError::Disconnected);

        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        assert!(b.build_connected().is_ok());
    }

    #[test]
    fn empty_builder_rejected() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn trusted_path_validates_everything_but_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.reserve_edges(3);
        assert_eq!(
            b.add_edge_trusted(0, 5, 1),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                node_count: 3
            })
        );
        assert_eq!(
            b.add_edge_trusted(7, 0, 1),
            Err(GraphError::NodeOutOfRange {
                node: 7,
                node_count: 3
            })
        );
        assert_eq!(
            b.add_edge_trusted(1, 1, 1),
            Err(GraphError::SelfLoop { node: 1 })
        );
        assert_eq!(
            b.add_edge_trusted(0, 1, 0),
            Err(GraphError::ZeroLatency { u: 0, v: 1 })
        );
        b.add_edge_trusted(2, 0, 4).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        // Endpoints are normalised exactly like the checked path.
        let e = g.edge(crate::EdgeId::new(0));
        assert_eq!((e.u, e.v, e.latency), (NodeId::new(0), NodeId::new(2), 4));
    }

    #[test]
    fn trusted_path_builds_the_same_graph_as_the_checked_path() {
        let checked = {
            let mut b = GraphBuilder::new(6);
            for u in 0..6 {
                for v in (u + 1)..6 {
                    b.add_edge(u, v, 2).unwrap();
                }
            }
            b.build().unwrap()
        };
        let trusted = {
            let mut b = GraphBuilder::new(6);
            for u in 0..6 {
                for v in (u + 1)..6 {
                    b.add_edge_trusted(u, v, 2).unwrap();
                }
            }
            b.build().unwrap()
        };
        assert_eq!(checked, trusted);
    }
}
