//! Error type shared by the graph-construction APIs.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was at least the declared node count.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph under construction.
        node_count: usize,
    },
    /// An edge connected a node to itself; the paper's model has no self loops.
    SelfLoop {
        /// The node that was connected to itself.
        node: usize,
    },
    /// The same unordered node pair was inserted twice.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// An edge latency of zero was supplied; latencies are positive integers.
    ZeroLatency {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The built graph is required to be connected but is not.
    Disconnected,
    /// A graph with zero nodes was requested where at least one is required.
    Empty,
    /// A generator was given parameters it cannot satisfy
    /// (e.g. a d-regular graph with `n * d` odd).
    InvalidParameters {
        /// Human readable description of the violated constraint.
        reason: String,
    },
    /// A latency scheme whose guarantee is defined over a *whole edge set*
    /// (e.g. `BimodalFraction`'s exact slow-edge count) was asked for a
    /// single independent draw, which cannot honor the contract.  Use
    /// [`LatencyScheme::apply`](crate::latency::LatencyScheme::apply) instead.
    SchemeNotPerEdge {
        /// Name of the offending scheme variant.
        scheme: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node} is not allowed"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) was inserted more than once")
            }
            GraphError::ZeroLatency { u, v } => {
                write!(
                    f,
                    "edge ({u}, {v}) has latency 0; latencies must be positive"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph must contain at least one node"),
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::SchemeNotPerEdge { scheme } => {
                write!(
                    f,
                    "latency scheme '{scheme}' guarantees an exact count over a whole \
                     edge set and cannot be sampled per edge; use LatencyScheme::apply"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            node_count: 4,
        };
        assert!(e.to_string().contains("node index 9"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = GraphError::ZeroLatency { u: 0, v: 1 };
        assert!(e.to_string().contains("latency 0"));
        assert_eq!(
            GraphError::Disconnected.to_string(),
            "graph is not connected"
        );
        assert!(GraphError::Empty.to_string().contains("at least one node"));
        let e = GraphError::InvalidParameters {
            reason: "n*d must be even".into(),
        };
        assert!(e.to_string().contains("n*d must be even"));
        let e = GraphError::SchemeNotPerEdge {
            scheme: "bimodal-fraction",
        };
        assert!(e.to_string().contains("bimodal-fraction"));
        assert!(e.to_string().contains("LatencyScheme::apply"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
