//! Directed spanners: edge subsets with a per-node orientation.
//!
//! The spanner-broadcast algorithm (Section 4.1 of the paper) builds an
//! `O(log n)`-stretch spanner of the weighted graph and, crucially, an
//! *orientation* of the spanner edges such that every node has only
//! `O(log n)` out-edges (Lemma 19).  Round-robin broadcast then repeatedly
//! activates each node's out-edges (Algorithm 1).  [`DirectedSpanner`]
//! captures exactly that object: a subset of the parent graph's edges plus a
//! direction for each selected edge.

// BTreeSet, not HashSet: `edge_ids`/`to_graph` iterate this set, and the
// materialised graph's edge order must not depend on per-instance hash seeds
// for runs to be reproducible.
use std::collections::BTreeSet;

use crate::metrics::{dijkstra, Distance, UNREACHABLE};
use crate::{EdgeId, Graph, GraphError, Latency, NodeId};

/// A subset of a graph's edges, each given a direction, forming a spanner.
#[derive(Debug, Clone)]
pub struct DirectedSpanner {
    node_count: usize,
    /// `out[v]` lists `(target, edge-id in the parent graph)` pairs.
    out: Vec<Vec<(NodeId, EdgeId)>>,
    /// Set of selected (undirected) edge ids, for O(1) membership checks.
    selected: BTreeSet<EdgeId>,
}

impl DirectedSpanner {
    /// Creates an empty spanner over the node set of `g`.
    pub fn new(g: &Graph) -> Self {
        DirectedSpanner {
            node_count: g.node_count(),
            out: vec![Vec::new(); g.node_count()],
            selected: BTreeSet::new(),
        }
    }

    /// Number of nodes in the parent graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of selected (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.selected.len()
    }

    /// Adds edge `e` of the parent graph, oriented out of `from`.
    ///
    /// Adding the same undirected edge twice (in either direction) keeps only
    /// the first orientation and returns `false`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `e` in `g`.
    pub fn add_oriented(&mut self, g: &Graph, from: NodeId, e: EdgeId) -> bool {
        let rec = g.edge(e);
        let to = rec.other(from);
        if !self.selected.insert(e) {
            return false;
        }
        self.out[from.index()].push((to, e));
        true
    }

    /// Returns `true` if the undirected edge `e` is part of the spanner.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.selected.contains(&e)
    }

    /// Out-edges of `v`: `(target, parent edge id)` pairs in insertion order.
    pub fn out_edges(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.out[v.index()]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// Maximum out-degree over all nodes — the quantity Lemma 19 bounds by `O(log n)`.
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over all selected edge ids (ascending order).
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.selected.iter().copied()
    }

    /// Materialises the spanner as an undirected [`Graph`] over the same node
    /// set, keeping the parent latencies.  The orientation is forgotten; use
    /// [`out_edges`](Self::out_edges) when the direction matters.
    ///
    /// # Errors
    ///
    /// Never fails for a spanner built from a valid graph; the `Result`
    /// mirrors the graph-construction API.
    pub fn to_graph(&self, g: &Graph) -> Result<Graph, GraphError> {
        let edges = self.selected.iter().map(|&e| *g.edge(e)).collect();
        Graph::from_parts(self.node_count, edges)
    }

    /// Measures the worst-case multiplicative stretch of the spanner with
    /// respect to the parent graph: `max_{u,v} dist_S(u,v) / dist_G(u,v)`.
    ///
    /// Runs all-pairs Dijkstra on both graphs (`O(n · m log n)`), so use it on
    /// test/experiment-sized graphs.  Returns `None` if the spanner does not
    /// connect some pair that the parent graph connects (infinite stretch).
    pub fn stretch(&self, g: &Graph) -> Option<f64> {
        let s = self.to_graph(g).ok()?;
        let mut worst: f64 = 1.0;
        for v in g.nodes() {
            let dg = dijkstra(g, v);
            let ds = dijkstra(&s, v);
            for i in 0..g.node_count() {
                if dg[i] == UNREACHABLE || dg[i] == 0 {
                    continue;
                }
                if ds[i] == UNREACHABLE {
                    return None;
                }
                worst = worst.max(ds[i] as f64 / dg[i] as f64);
            }
        }
        Some(worst)
    }

    /// Checks that every pair connected in `g` is connected in the spanner and
    /// that the stretch is at most `bound`.
    pub fn verify_stretch(&self, g: &Graph, bound: f64) -> bool {
        self.stretch(g).is_some_and(|s| s <= bound)
    }

    /// Sum of the latencies of the selected edges.
    pub fn total_latency(&self, g: &Graph) -> Latency {
        self.selected.iter().map(|&e| g.latency(e)).sum()
    }

    /// Weighted distances from `source` inside the spanner.
    pub fn distances_from(&self, g: &Graph, source: NodeId) -> Vec<Distance> {
        match self.to_graph(g) {
            Ok(s) => dijkstra(&s, source),
            Err(_) => vec![UNREACHABLE; self.node_count],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Square with one diagonal: 0-1-2-3-0 (latency 1 each) plus 0-2 (latency 5).
    fn square_with_diagonal() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(3, 0, 1).unwrap();
        b.add_edge(0, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn orientation_and_degrees() {
        let g = square_with_diagonal();
        let mut s = DirectedSpanner::new(&g);
        let e01 = g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let e12 = g.find_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        assert!(s.add_oriented(&g, NodeId::new(0), e01));
        assert!(s.add_oriented(&g, NodeId::new(1), e12));
        // Duplicate insert (other direction) is ignored.
        assert!(!s.add_oriented(&g, NodeId::new(1), e01));
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.out_degree(NodeId::new(0)), 1);
        assert_eq!(s.out_degree(NodeId::new(1)), 1);
        assert_eq!(s.out_degree(NodeId::new(2)), 0);
        assert_eq!(s.max_out_degree(), 1);
        assert!(s.contains_edge(e01));
    }

    #[test]
    fn spanner_graph_and_stretch() {
        let g = square_with_diagonal();
        let mut s = DirectedSpanner::new(&g);
        // Keep the 4-cycle, drop the slow diagonal.
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            let e = g.find_edge(NodeId::new(u), NodeId::new(v)).unwrap();
            s.add_oriented(&g, NodeId::new(u), e);
        }
        let sg = s.to_graph(&g).unwrap();
        assert_eq!(sg.edge_count(), 4);
        // dist_G(0,2) = 2 via the cycle (the diagonal costs 5), so dropping the
        // diagonal does not stretch anything: stretch = 1.
        let stretch = s.stretch(&g).unwrap();
        assert!((stretch - 1.0).abs() < 1e-9);
        assert!(s.verify_stretch(&g, 1.0));
        assert_eq!(s.total_latency(&g), 4);
    }

    #[test]
    fn missing_connectivity_gives_none_stretch() {
        let g = square_with_diagonal();
        let mut s = DirectedSpanner::new(&g);
        let e01 = g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        s.add_oriented(&g, NodeId::new(0), e01);
        assert_eq!(s.stretch(&g), None);
        assert!(!s.verify_stretch(&g, 100.0));
    }

    #[test]
    fn distances_inside_spanner() {
        let g = square_with_diagonal();
        let mut s = DirectedSpanner::new(&g);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            let e = g.find_edge(NodeId::new(u), NodeId::new(v)).unwrap();
            s.add_oriented(&g, NodeId::new(u), e);
        }
        let d = s.distances_from(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 1]);
    }
}
