//! Strongly-typed identifiers for nodes and edges, plus the latency alias.

use std::fmt;

/// Integer latency of an edge, in synchronous rounds.
///
/// The paper assumes latencies are positive integers (non-integer latencies
/// can be scaled and rounded); we follow that convention.  A latency of `1`
/// corresponds to a classical unweighted edge.
pub type Latency = u64;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices in `0..n`; they are assigned by the
/// [`GraphBuilder`](crate::GraphBuilder) in insertion order and never change.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    // gossip-lint: allow(panic-path): documented precondition; graph sizes are far below u32::MAX
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// Identifier of an undirected edge in a [`Graph`](crate::Graph).
///
/// Edge ids are dense indices in `0..m` assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    // gossip-lint: allow(panic-path): documented precondition; edge counts are far below u32::MAX
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "7");
        assert_eq!(format!("{id:?}"), "e7");
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::from(3usize), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
