//! The core undirected, latency-weighted graph type.

use crate::{EdgeId, GraphError, Latency, NodeId};

/// One undirected edge: its two endpoints and its latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRecord {
    /// First endpoint (the one with the smaller id at insertion time).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Integer latency of the edge (number of rounds a bidirectional exchange takes).
    pub latency: Latency,
}

impl EdgeRecord {
    /// Returns the endpoint opposite to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!(
                "node {node:?} is not an endpoint of edge ({:?}, {:?})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `node` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.u || node == self.v
    }
}

/// An undirected, connected-or-not graph with integer edge latencies.
///
/// The representation is a flat edge list plus a per-node adjacency list of
/// `(neighbor, edge-id)` pairs, which is the access pattern the simulator and
/// the algorithms need: iterate over a node's incident edges, look up the
/// latency of an edge, and map an edge id back to its endpoints.
///
/// `Graph` is immutable after construction; build one through
/// [`GraphBuilder`](crate::GraphBuilder) or one of the [`generators`](crate::generators).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<EdgeRecord>,
    max_latency: Latency,
}

impl Graph {
    // gossip-lint: allow(panic-path): GraphBuilder::add_edge validates both endpoints against node_count before an EdgeRecord exists
    pub(crate) fn from_parts(
        node_count: usize,
        edges: Vec<EdgeRecord>,
    ) -> Result<Self, GraphError> {
        if node_count == 0 {
            return Err(GraphError::Empty);
        }
        let mut adjacency = vec![Vec::new(); node_count];
        let mut max_latency: Latency = 0;
        for (idx, e) in edges.iter().enumerate() {
            let id = EdgeId::new(idx);
            adjacency[e.u.index()].push((e.v, id));
            adjacency[e.v.index()].push((e.u, id));
            max_latency = max_latency.max(e.latency);
        }
        // Deterministic neighbor order: by neighbor id, then edge id.
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Ok(Graph {
            adjacency,
            edges,
            max_latency,
        })
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterator over all edge ids `0..m`.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterator over all edge records in id order.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeRecord> + '_ {
        self.edges.iter()
    }

    /// The record (endpoints + latency) of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id of this graph.
    #[inline]
    // gossip-lint: allow(panic-path): EdgeId validity is a Graph construction invariant
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edges[e.index()]
    }

    /// Latency of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id of this graph.
    #[inline]
    // gossip-lint: allow(panic-path): EdgeId validity is a Graph construction invariant
    pub fn latency(&self, e: EdgeId) -> Latency {
        self.edges[e.index()].latency
    }

    /// The largest edge latency `ℓ_max` in the graph (0 for an edgeless graph).
    #[inline]
    pub fn max_latency(&self) -> Latency {
        self.max_latency
    }

    /// Degree of `v` (number of incident edges).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid node id of this graph.
    #[inline]
    // gossip-lint: allow(panic-path): CSR offsets have n + 1 entries and NodeId < n by construction
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Maximum degree `Δ` over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over `(neighbor, edge-id)` pairs incident to `v`, in
    /// deterministic (neighbor-id) order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid node id of this graph.
    #[inline]
    // gossip-lint: allow(panic-path): CSR slice bounds follow from the offsets invariant
    pub fn neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.adjacency[v.index()].iter(),
        }
    }

    /// The incident `(neighbor, edge)` pairs of `v` as a slice, in
    /// deterministic (neighbor-id) order.  Equivalent to collecting
    /// [`neighbors`](Self::neighbors) but without allocation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid node id of this graph.
    #[inline]
    // gossip-lint: allow(panic-path): CSR slice bounds follow from the offsets invariant
    pub fn neighbor_slice(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[v.index()]
    }

    /// Looks up the edge between `u` and `v`, if any.
    // gossip-lint: allow(panic-path): CSR slice bounds follow from the offsets invariant
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[probe.index()]
            .iter()
            .find(|(w, _)| *w == target)
            .map(|(_, e)| *e)
    }

    /// Returns `true` if `u` and `v` are joined by an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Volume of a set of nodes: the sum of degrees, `Vol(U) = Σ_{v∈U} deg(v)`.
    ///
    /// This is the quantity the paper's conductance definitions normalise by.
    pub fn volume<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> u64 {
        nodes.into_iter().map(|v| self.degree(v) as u64).sum()
    }

    /// Total volume `2m` of the whole graph.
    pub fn total_volume(&self) -> u64 {
        2 * self.edge_count() as u64
    }

    /// Returns `true` if the graph is connected (single node graphs are connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for (w, _) in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Returns a copy of the graph restricted to edges with latency `<= bound`.
    ///
    /// The node set is unchanged, so the result may be disconnected.  This is
    /// the subgraph `G_ℓ` the paper uses for the ℓ-DTG protocol and for the
    /// weight-ℓ conductance.
    pub fn latency_filtered(&self, bound: Latency) -> Graph {
        let edges: Vec<EdgeRecord> = self
            .edges
            .iter()
            .copied()
            .filter(|e| e.latency <= bound)
            .collect();
        Graph::from_parts(self.node_count(), edges)
            .expect("filtered graph retains the (non-empty) node set")
    }

    /// All distinct latency values present in the graph, sorted ascending.
    pub fn distinct_latencies(&self) -> Vec<Latency> {
        let mut ls: Vec<Latency> = self.edges.iter().map(|e| e.latency).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Sum of all edge latencies (useful as a crude upper bound on the diameter).
    pub fn total_latency(&self) -> u128 {
        self.edges.iter().map(|e| e.latency as u128).sum()
    }
}

/// Iterator over the `(neighbor, edge)` pairs incident to a node.
///
/// Produced by [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, (NodeId, EdgeId)>,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(1, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.max_latency(), 5);
        assert_eq!(g.total_volume(), 4);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.max_degree(), 2);
        let nbrs: Vec<NodeId> = g.neighbors(NodeId::new(1)).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(g.neighbors(NodeId::new(1)).len(), 2);
    }

    #[test]
    fn find_edge_and_latency() {
        let g = path3();
        let e = g.find_edge(NodeId::new(2), NodeId::new(1)).unwrap();
        assert_eq!(g.latency(e), 5);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn edge_record_other_endpoint() {
        let g = path3();
        let e = g.edge(g.find_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        assert_eq!(e.other(NodeId::new(0)), NodeId::new(1));
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(0));
        assert!(e.touches(NodeId::new(0)));
        assert!(!e.touches(NodeId::new(2)));
    }

    #[test]
    #[should_panic]
    fn edge_record_other_panics_for_non_endpoint() {
        let g = path3();
        let e = g.edge(EdgeId::new(0));
        let _ = e.other(NodeId::new(2));
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        // Filtering by latency 2 drops the (1,2) edge and disconnects node 2.
        let f = g.latency_filtered(2);
        assert_eq!(f.edge_count(), 1);
        assert!(!f.is_connected());
    }

    #[test]
    fn volume_of_subsets() {
        let g = path3();
        assert_eq!(g.volume([NodeId::new(0), NodeId::new(1)]), 3);
        assert_eq!(g.volume([NodeId::new(2)]), 1);
    }

    #[test]
    fn distinct_latencies_sorted() {
        let g = path3();
        assert_eq!(g.distinct_latencies(), vec![2, 5]);
        assert_eq!(g.total_latency(), 7);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(Graph::from_parts(0, vec![]), Err(GraphError::Empty));
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_latency(), 0);
    }
}
