//! Latency-assignment strategies.
//!
//! The paper's constructions use very structured latencies (e.g. "all cross
//! edges are slow except a hidden fast one"); the experiment harness also
//! needs generic ways to turn an unweighted family into a weighted instance.
//! [`LatencyScheme`] captures the assignment strategies used in the
//! evaluation: uniform, two-level fast/slow, power-law latency classes, and
//! uniformly random within a range.

use rand::Rng;

use crate::{Graph, GraphError, Latency};

/// Strategy for assigning latencies to the edges of an (unweighted) graph.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyScheme {
    /// Every edge gets the same latency (latency 1 reproduces the unweighted model).
    Uniform(Latency),
    /// Each edge independently is *fast* (`fast` latency) with probability
    /// `fast_probability`, otherwise *slow* (`slow` latency).
    TwoLevel {
        /// Latency of fast edges.
        fast: Latency,
        /// Latency of slow edges.
        slow: Latency,
        /// Probability that an edge is fast.
        fast_probability: f64,
    },
    /// Each edge picks latency class `i ∈ 1..=classes` with probability
    /// proportional to `2^{-i}` and gets latency `2^i` (a heavy-tailed mix of
    /// fast and slow edges exercising many latency classes).
    PowerLawClasses {
        /// Number of latency classes to draw from.
        classes: usize,
    },
    /// Each edge gets an independent uniformly random latency in `[min, max]`.
    UniformRandom {
        /// Smallest possible latency.
        min: Latency,
        /// Largest possible latency.
        max: Latency,
    },
    /// An *exact* fraction of the edges is slow: `round(slow_fraction · m)`
    /// edges, chosen uniformly without replacement, get latency `slow`; every
    /// other edge gets latency 1.
    ///
    /// Unlike [`TwoLevel`](Self::TwoLevel) (independent per-edge coin flips),
    /// the slow-edge *count* here is deterministic, so small instances cannot
    /// accidentally come out all-fast or all-slow — useful when sweeping the
    /// slow fraction as a controlled variable.
    BimodalFraction {
        /// Latency of slow edges.
        slow: Latency,
        /// Fraction of edges (in `[0, 1]`) that is slow.
        slow_fraction: f64,
    },
}

impl LatencyScheme {
    /// Draws one latency according to the scheme, for the schemes that assign
    /// latencies to edges *independently*.
    ///
    /// [`BimodalFraction`](Self::BimodalFraction) is **not** such a scheme:
    /// its documented guarantee — exactly `round(slow_fraction · m)` slow
    /// edges — is a property of a whole edge set, and per-edge Bernoulli
    /// draws silently violate it (small instances can come out all-fast or
    /// all-slow, exactly what the variant exists to prevent).  Sampling it
    /// therefore returns [`GraphError::SchemeNotPerEdge`]; route such schemes
    /// through [`apply`](Self::apply), which honors the exact count.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SchemeNotPerEdge`] for schemes whose guarantee
    /// spans the whole edge set.
    ///
    /// # Panics
    ///
    /// Panics if the scheme parameters are invalid (zero latency, empty range,
    /// probability outside `[0, 1]`, zero classes).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Latency, GraphError> {
        match *self {
            LatencyScheme::Uniform(l) => {
                assert!(l > 0, "uniform latency must be positive");
                Ok(l)
            }
            LatencyScheme::TwoLevel {
                fast,
                slow,
                fast_probability,
            } => {
                assert!(fast > 0 && slow > 0, "latencies must be positive");
                assert!(
                    (0.0..=1.0).contains(&fast_probability),
                    "fast_probability must lie in [0, 1]"
                );
                Ok(if rng.gen_bool(fast_probability) {
                    fast
                } else {
                    slow
                })
            }
            LatencyScheme::PowerLawClasses { classes } => {
                assert!(classes > 0, "at least one latency class is required");
                // P[class i] ∝ 2^{-i}; sample by repeated coin flips, capped at `classes`.
                let mut class = 1usize;
                while class < classes && rng.gen_bool(0.5) {
                    class += 1;
                }
                Ok(1u64 << class.min(32))
            }
            LatencyScheme::UniformRandom { min, max } => {
                assert!(min > 0, "latencies must be positive");
                assert!(min <= max, "latency range must be non-empty");
                Ok(rng.gen_range(min..=max))
            }
            LatencyScheme::BimodalFraction { .. } => Err(GraphError::SchemeNotPerEdge {
                scheme: "bimodal-fraction",
            }),
        }
    }

    /// Returns a copy of `g` with every edge latency re-drawn from this scheme.
    ///
    /// The topology (node and edge set) is unchanged.  For
    /// [`BimodalFraction`](Self::BimodalFraction) the slow edges are sampled
    /// *without* replacement so exactly `round(slow_fraction · m)` of them are
    /// slow; every other scheme draws latencies independently per edge.
    ///
    /// # Errors
    ///
    /// Never fails for a valid input graph; the `Result` mirrors the builder API.
    pub fn apply<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Result<Graph, GraphError> {
        if let LatencyScheme::BimodalFraction {
            slow,
            slow_fraction,
        } = *self
        {
            assert!(slow > 0, "latencies must be positive");
            assert!(
                (0.0..=1.0).contains(&slow_fraction),
                "slow_fraction must lie in [0, 1]"
            );
            let m = g.edge_count();
            let k = ((m as f64) * slow_fraction).round() as usize;
            let k = k.min(m);
            // Partial Fisher–Yates: after k swaps, indices[..k] is a uniform
            // k-subset of the edge ids.
            let mut indices: Vec<usize> = (0..m).collect();
            for i in 0..k {
                let j = rng.gen_range(i..m);
                indices.swap(i, j);
            }
            let mut is_slow = vec![false; m];
            for &e in &indices[..k] {
                is_slow[e] = true;
            }
            let edges = g
                .edges()
                .enumerate()
                .map(|(i, rec)| crate::EdgeRecord {
                    u: rec.u,
                    v: rec.v,
                    latency: if is_slow[i] { slow } else { 1 },
                })
                .collect();
            return Graph::from_parts(g.node_count(), edges);
        }
        let edges = g
            .edges()
            .map(|rec| {
                Ok(crate::EdgeRecord {
                    u: rec.u,
                    v: rec.v,
                    // Infallible here: the one non-per-edge scheme
                    // (BimodalFraction) was fully handled above.
                    latency: self.sample(rng)?,
                })
            })
            .collect::<Result<Vec<_>, GraphError>>()?;
        Graph::from_parts(g.node_count(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_scheme_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = LatencyScheme::Uniform(7);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), Ok(7));
        }
    }

    #[test]
    fn two_level_produces_both_levels() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = LatencyScheme::TwoLevel {
            fast: 1,
            slow: 100,
            fast_probability: 0.5,
        };
        let draws: Vec<Latency> = (0..200).map(|_| s.sample(&mut rng).unwrap()).collect();
        assert!(draws.contains(&1));
        assert!(draws.contains(&100));
        assert!(draws.iter().all(|&l| l == 1 || l == 100));
    }

    #[test]
    fn two_level_extreme_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        let all_fast = LatencyScheme::TwoLevel {
            fast: 2,
            slow: 50,
            fast_probability: 1.0,
        };
        let all_slow = LatencyScheme::TwoLevel {
            fast: 2,
            slow: 50,
            fast_probability: 0.0,
        };
        for _ in 0..20 {
            assert_eq!(all_fast.sample(&mut rng), Ok(2));
            assert_eq!(all_slow.sample(&mut rng), Ok(50));
        }
    }

    #[test]
    fn power_law_latencies_are_powers_of_two_within_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = LatencyScheme::PowerLawClasses { classes: 4 };
        for _ in 0..500 {
            let l = s.sample(&mut rng).unwrap();
            assert!(l.is_power_of_two());
            assert!((2..=16).contains(&l));
        }
    }

    #[test]
    fn uniform_random_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = LatencyScheme::UniformRandom { min: 3, max: 9 };
        for _ in 0..200 {
            let l = s.sample(&mut rng).unwrap();
            assert!((3..=9).contains(&l));
        }
    }

    #[test]
    fn apply_preserves_topology() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::clique(6, 1).unwrap();
        let w = LatencyScheme::UniformRandom { min: 1, max: 5 }
            .apply(&g, &mut rng)
            .unwrap();
        assert_eq!(w.node_count(), g.node_count());
        assert_eq!(w.edge_count(), g.edge_count());
        for (a, b) in g.edges().zip(w.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((1..=5).contains(&b.latency));
        }
    }

    #[test]
    fn bimodal_fraction_is_exact() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::clique(12, 1).unwrap(); // 66 edges
        for frac in [0.0, 0.25, 0.5, 1.0] {
            let s = LatencyScheme::BimodalFraction {
                slow: 40,
                slow_fraction: frac,
            };
            let w = s.apply(&g, &mut rng).unwrap();
            let slow_edges = w.edges().filter(|e| e.latency == 40).count();
            let expected = (66.0_f64 * frac).round() as usize;
            assert_eq!(slow_edges, expected, "fraction {frac}");
            assert!(w.edges().all(|e| e.latency == 1 || e.latency == 40));
        }
    }

    #[test]
    fn bimodal_fraction_cannot_be_sampled_per_edge() {
        // Regression: `sample` used to fall back to independent Bernoulli
        // draws, silently violating the exact-count contract that only
        // `apply` honors.  The per-edge path is now unrepresentable.
        let mut rng = SmallRng::seed_from_u64(9);
        let s = LatencyScheme::BimodalFraction {
            slow: 10,
            slow_fraction: 0.5,
        };
        assert_eq!(
            s.sample(&mut rng),
            Err(GraphError::SchemeNotPerEdge {
                scheme: "bimodal-fraction"
            })
        );
    }

    #[test]
    fn bimodal_fraction_slow_count_is_exact_for_every_seed() {
        // Regression companion: on a 13-edge graph with slow_fraction 0.5,
        // independent coin flips would produce a count other than
        // round(0.5 * 13) = 7 in the overwhelming majority of seeds; the
        // whole-edge-set path must hit it every single time.
        let g = generators::cycle(13, 1).unwrap(); // 13 edges
        let s = LatencyScheme::BimodalFraction {
            slow: 40,
            slow_fraction: 0.5,
        };
        for seed in 0..64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let w = s.apply(&g, &mut rng).unwrap();
            let slow_edges = w.edges().filter(|e| e.latency == 40).count();
            assert_eq!(slow_edges, 7, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "latency range must be non-empty")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = LatencyScheme::UniformRandom { min: 9, max: 3 }.sample(&mut rng);
    }
}
