//! Property tests for the lexer: `lex` must never panic on arbitrary input
//! (including unterminated literals, raw identifiers, shebangs, and byte
//! strings), and comment/string stripping must be idempotent — re-lexing a
//! rendered token stream yields the same stream.
//!
//! The vendored `proptest` subset only samples numeric ranges, so each case
//! draws a seed and expands it into a string with a locally seeded
//! [`SmallRng`] — same determinism, richer inputs.

use gossip_lint::lexer::{lex, Lexed, TokKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Renders a lexed token stream back to lexable source.  Literal contents
/// are discarded by the lexer, so every `Lit` becomes `""`; lifetimes store
/// only the identifier after the quote, so the quote is re-prepended (`'_`
/// when the name was empty, as in a stray `'` at end of input).
fn render(lexed: &Lexed) -> String {
    lexed
        .tokens
        .iter()
        .map(|t| match t.kind {
            TokKind::Lit => "\"\"".to_string(),
            TokKind::Lifetime if t.text.is_empty() => "'_".to_string(),
            TokKind::Lifetime => format!("'{}", t.text),
            _ => t.text.clone(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Fragments biased toward the lexer's tricky paths: pragmas, contracts,
/// raw identifiers/strings, byte literals, lifetimes, shebangs, and
/// unterminated literals and block comments.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "// gossip-lint: allow(wall-clock): fixture reason",
    "// gossip-audit: contract(pure)",
    "let r#type = r#\"raw \" quote\"#;",
    "let b = b'\\n';",
    "let bs = br#\"bytes\"#;",
    "fn g<'a, 'b>(x: &'a str) -> &'a str { x }",
    "#!/usr/bin/env cargo",
    "#![forbid(unsafe_code)]",
    "\"unterminated",
    "/* unterminated block",
    "let n = 0x1f_u64; let r = 1..10; let f = 1.5e3;",
    "'",
    "b\"",
    "r##\"half-raw",
];

/// Punctuation soup biased toward the characters the lexer special-cases.
const ALPHABET: &[u8] = b"abr_09:;{}()[]<>.,&*'\"#!/%=+-\\ \t";

/// Rust-shaped input: random fragments glued with random soup so fragments
/// interact across line boundaries.
fn rusty_soup(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(0usize..24);
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_range(0u64..4) == 0 {
            let len = rng.gen_range(0usize..16);
            parts.push(
                (0..len)
                    .map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())] as char)
                    .collect::<String>(),
            );
        } else {
            parts.push(FRAGMENTS[rng.gen_range(0usize..FRAGMENTS.len())].to_string());
        }
    }
    parts.join("\n")
}

/// Fully arbitrary input: random bytes, lossily decoded (covers invalid
/// UTF-8 boundaries collapsing to replacement chars, NULs, controls).
fn byte_soup(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len = rng.gen_range(0usize..256);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_never_panics_on_arbitrary_input(seed in 0u64..u64::MAX) {
        let _ = lex(&byte_soup(seed));
    }

    #[test]
    fn lexing_never_panics_on_rust_shaped_input(seed in 0u64..u64::MAX) {
        let _ = lex(&rusty_soup(seed));
    }

    /// Stripping is a projection: once comments and literal contents are
    /// gone, lexing the rendered stream must reproduce it exactly.
    #[test]
    fn stripping_is_idempotent(seed in 0u64..u64::MAX) {
        let src = rusty_soup(seed);
        let once = render(&lex(&src));
        let twice = render(&lex(&once));
        prop_assert_eq!(&once, &twice, "source was:\n{}", &src);
    }
}
