//! The meta-tests behind the CI gate: the workspace is lint-clean, every
//! pragma in the tree suppresses a real finding (deleting any one flips the
//! verdict), and injecting any fire-fixture violation flips it too.

use std::path::Path;

use gossip_lint::{analyze_sources, collect_sources, SourceFile};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_lint_clean() {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    assert!(
        files.len() > 50,
        "suspiciously few files collected ({}) — walker broke?",
        files.len()
    );
    let report = analyze_sources(&files);
    assert!(
        report.clean(),
        "workspace must be lint-clean:\n{}",
        report.render_text()
    );
    assert!(
        report.pragmas_used > 0,
        "the audit pragmas must be visible to the walker"
    );
}

/// Finds every line carrying a real `marker` annotation, using the lexer
/// itself as ground truth so doc comments that merely *mention* the syntax
/// and marker text buried inside string literals (as in the lint crate's
/// own unit tests) are never mistaken for sites.
fn marker_sites(files: &[SourceFile], marker: &str) -> Vec<(usize, usize)> {
    let mut sites = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let lexed = gossip_lint::lexer::lex(&file.content);
        let lines: Vec<u32> = if marker == "gossip-lint:" {
            lexed.pragmas.iter().map(|p| p.line).collect()
        } else {
            lexed.contracts.iter().map(|c| c.line).collect()
        };
        for line in lines {
            sites.push((fi, line as usize - 1));
        }
    }
    sites
}

/// Every suppression and contract in the tree is load-bearing: deleting any
/// one `gossip-lint: allow(..)` pragma (the finding comes back) or any one
/// `gossip-audit: contract(..)` annotation (the coverage rule fires) flips
/// the workspace verdict.
fn deleting_any_marker_flips_the_verdict(marker: &str) {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    let sites = marker_sites(&files, marker);
    assert!(
        !sites.is_empty(),
        "expected `{marker}` annotations in the workspace"
    );

    for &(fi, li) in &sites {
        let mut mutated: Vec<SourceFile> = files.clone();
        let stripped: String = mutated[fi]
            .content
            .lines()
            .enumerate()
            .map(|(i, line)| {
                if i == li {
                    line.replace(marker, "gossip-stripped:")
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        mutated[fi].content = stripped;
        let report = analyze_sources(&mutated);
        assert!(
            !report.clean(),
            "deleting the `{marker}` annotation at {}:{} must make the workspace fail the lint",
            files[fi].rel,
            li + 1
        );
    }
}

#[test]
fn every_workspace_pragma_is_load_bearing() {
    deleting_any_marker_flips_the_verdict("gossip-lint:");
}

#[test]
fn every_workspace_contract_is_load_bearing() {
    deleting_any_marker_flips_the_verdict("gossip-audit:");
}

#[test]
fn injecting_any_fire_fixture_fails_the_workspace() {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut injected_any = false;
    for (rule, inject_at) in [
        // A crate-root path, so forbid-unsafe applies to its fixture too.
        ("unordered-iter", "crates/injected/src/main.rs"),
        ("wall-clock", "crates/injected/src/main.rs"),
        ("ambient-rng", "crates/injected/src/main.rs"),
        ("par-order", "crates/injected/src/main.rs"),
        ("debug-assert-side-effect", "crates/injected/src/main.rs"),
        ("forbid-unsafe", "crates/injected/src/main.rs"),
        // The audit rules only fire inside the audited engine paths.
        ("panic-path", "crates/sim/src/injected.rs"),
        ("idle-purity", "crates/sim/src/injected.rs"),
        ("shared-state", "crates/sim/src/injected.rs"),
    ] {
        let content = std::fs::read_to_string(fixtures.join(rule).join("fire.rs"))
            .expect("reading fire fixture");
        let mut mutated = files.clone();
        mutated.push(SourceFile {
            rel: inject_at.to_string(),
            content,
        });
        let report = analyze_sources(&mutated);
        assert!(
            !report.clean(),
            "injecting {rule}/fire.rs must make the workspace fail the lint"
        );
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "injecting {rule}/fire.rs must fire `{rule}` specifically:\n{}",
            report.render_text()
        );
        injected_any = true;
    }
    assert!(injected_any);
}
