//! The meta-tests behind the CI gate: the workspace is lint-clean, every
//! pragma in the tree suppresses a real finding (deleting any one flips the
//! verdict), and injecting any fire-fixture violation flips it too.

use std::path::Path;

use gossip_lint::{analyze_sources, collect_sources, SourceFile};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_lint_clean() {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    assert!(
        files.len() > 50,
        "suspiciously few files collected ({}) — walker broke?",
        files.len()
    );
    let report = analyze_sources(&files);
    assert!(
        report.clean(),
        "workspace must be lint-clean:\n{}",
        report.render_text()
    );
    assert!(
        report.pragmas_used > 0,
        "the audit pragmas must be visible to the walker"
    );
}

#[test]
fn every_workspace_pragma_is_load_bearing() {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    let marker = "gossip-lint:";

    // Mirror the lexer's anchoring: a pragma is a `//` comment whose body
    // starts with the marker.  Doc comments that merely *mention* the
    // syntax (their body starts with `!` or `/`) are not pragmas.
    // Only the *first* `//` starts a comment; a second `//` inside the
    // comment text (as in the lexer's own docs) is just prose, and a `//`
    // preceded by an odd number of quotes is inside a string literal (as in
    // the lexer's own unit tests).
    let is_pragma_line = |line: &str| {
        line.find("//").is_some_and(|at| {
            line[..at].matches('"').count().is_multiple_of(2)
                && line[at + 2..].trim_start().starts_with(marker)
        })
    };
    let mut pragma_sites = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (li, line) in file.content.lines().enumerate() {
            if is_pragma_line(line) {
                pragma_sites.push((fi, li));
            }
        }
    }
    assert!(
        !pragma_sites.is_empty(),
        "expected audit pragmas in the workspace"
    );

    for &(fi, li) in &pragma_sites {
        let mut mutated: Vec<SourceFile> = files.clone();
        let stripped: String = mutated[fi]
            .content
            .lines()
            .enumerate()
            .map(|(i, line)| {
                if i == li {
                    line.replace(marker, "gossip-lint-stripped:")
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        mutated[fi].content = stripped;
        let report = analyze_sources(&mutated);
        assert!(
            !report.clean(),
            "deleting the pragma at {}:{} must make the workspace fail the lint",
            files[fi].rel,
            li + 1
        );
    }
}

#[test]
fn injecting_any_fire_fixture_fails_the_workspace() {
    let files = collect_sources(workspace_root()).expect("walking the workspace");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut injected_any = false;
    for rule in [
        "unordered-iter",
        "wall-clock",
        "ambient-rng",
        "par-order",
        "debug-assert-side-effect",
        "forbid-unsafe",
    ] {
        let content = std::fs::read_to_string(fixtures.join(rule).join("fire.rs"))
            .expect("reading fire fixture");
        let mut mutated = files.clone();
        mutated.push(SourceFile {
            // A crate-root path, so forbid-unsafe applies to its fixture too.
            rel: format!("crates/injected/src/{}.rs", "main"),
            content,
        });
        let report = analyze_sources(&mutated);
        assert!(
            !report.clean(),
            "injecting {rule}/fire.rs must make the workspace fail the lint"
        );
        injected_any = true;
    }
    assert!(injected_any);
}
