//! A crate root that opts out of the forbid with a written reason.

// gossip-lint: allow(forbid-unsafe): fixture — FFI shim crate, unsafe audited separately

pub fn answer() -> u32 {
    42
}
