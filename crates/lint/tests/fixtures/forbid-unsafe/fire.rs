//! A crate root that forgot to forbid unsafe code.

pub fn answer() -> u32 {
    42
}
