use std::collections::BTreeMap;

pub fn observable_order(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
