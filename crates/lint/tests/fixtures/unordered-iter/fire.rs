use std::collections::HashMap;

pub fn observable_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
