use std::collections::HashMap;

// gossip-lint: allow(unordered-iter): fixture — order is sorted before it escapes
pub fn observable_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = m.values().copied().collect(); // gossip-lint: allow(unordered-iter): fixture — sorted on the next line
    out.sort_unstable();
    out
}
