use std::collections::BTreeSet;

pub fn record(set: &mut BTreeSet<u32>, x: u32) {
    let fresh = set.insert(x);
    debug_assert!(fresh, "duplicate id");
    debug_assert!(!set.is_empty());
}
