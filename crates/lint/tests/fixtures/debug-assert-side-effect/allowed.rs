use std::collections::BTreeSet;

pub fn record(set: &mut BTreeSet<u32>, x: u32) {
    // gossip-lint: allow(debug-assert-side-effect): fixture — scratch set rebuilt from scratch each call, both builds agree
    debug_assert!(set.insert(x), "duplicate id");
}
