use std::collections::BTreeSet;

pub fn record(set: &mut BTreeSet<u32>, x: u32) {
    debug_assert!(set.insert(x), "duplicate id");
}
