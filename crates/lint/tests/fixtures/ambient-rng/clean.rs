use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_range(0..6)
}
