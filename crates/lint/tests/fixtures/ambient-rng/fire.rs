pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
