pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // gossip-lint: allow(ambient-rng): fixture — interactive demo, output never recorded
    rng.gen_range(0..6)
}
