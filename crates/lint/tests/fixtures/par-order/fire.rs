use rayon::prelude::*;
use std::collections::BTreeMap;

pub fn total(items: &[u64]) -> u64 {
    items.par_iter().map(|x| x + 1).reduce(|| 0, |a, b| a + b)
}

pub fn index(items: &[(u64, u64)]) -> usize {
    let m = items.par_iter().map(|&(k, v)| (k, v)).collect::<HashMap<u64, u64>>();
    m.len()
}
