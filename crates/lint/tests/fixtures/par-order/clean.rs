use rayon::prelude::*;

pub fn total(items: &[u64]) -> u64 {
    // Collect in input order, then reduce sequentially: deterministic for
    // any thread count.  Sequential folds inside the mapped closures are
    // fine too — only the parallel chain itself is order-sensitive.
    let mapped: Vec<u64> = items
        .par_iter()
        .map(|x| (0..4u64).fold(*x, |a, b| a + b))
        .collect::<Vec<u64>>();
    mapped.iter().sum()
}
