use rayon::prelude::*;

pub fn total(items: &[u64]) -> u64 {
    items.par_iter().map(|x| x + 1).reduce(|| 0, |a, b| a + b) // gossip-lint: allow(par-order): fixture — addition is associative and commutative here
}
