//! Fire fixture: lock-free shared state in an audited engine crate — the
//! atomic type and the memory ordering are both findings.

use std::sync::atomic::{AtomicU64, Ordering};

static DELIVERED: AtomicU64 = AtomicU64::new(0);

pub fn record(n: u64) {
    DELIVERED.fetch_add(n, Ordering::Relaxed);
}
