//! Allowlisted fixture: a deliberately-shared startup flag, with every line
//! that touches the atomic carrying a reasoned pragma.

use std::sync::atomic;

// gossip-lint: allow(shared-state): write-once startup flag, read-only after init
static READY: atomic::AtomicBool = atomic::AtomicBool::new(false);

pub fn ready() -> bool {
    // gossip-lint: allow(shared-state): reads the write-once startup flag
    READY.load(atomic::Ordering::SeqCst)
}
