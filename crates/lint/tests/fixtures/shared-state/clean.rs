//! Clean fixture: `cmp::Ordering` is a comparison result, not a memory
//! ordering — the rule must not confuse the two.

use std::cmp::Ordering;

pub fn compare(a: u64, b: u64) -> Ordering {
    a.cmp(&b)
}
