//! Fire fixture: `helper` is reachable from the `Simulation::run` delivery
//! root and contains an unwrap and a slice index.

pub struct Simulation {
    steps: Vec<u64>,
}

impl Simulation {
    pub fn run(&self) -> u64 {
        helper(&self.steps, 1)
    }
}

fn helper(xs: &[u64], i: usize) -> u64 {
    let head = xs.first().unwrap();
    head + xs[i]
}
