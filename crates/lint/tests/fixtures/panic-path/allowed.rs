//! Allowlisted fixture: the firing shape, suppressed by a reasoned pragma
//! directly above the flagged fn (panic-path findings anchor on the fn line).

pub struct Simulation {
    steps: Vec<u64>,
}

impl Simulation {
    pub fn run(&self) -> u64 {
        helper(&self.steps, 0)
    }
}

// gossip-lint: allow(panic-path): run() only passes indices below steps.len()
fn helper(xs: &[u64], i: usize) -> u64 {
    xs[i]
}
