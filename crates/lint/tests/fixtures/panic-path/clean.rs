//! Clean fixture: the same call shape with every panic site designed out —
//! total accessors instead of unwrap/indexing.

pub struct Simulation {
    steps: Vec<u64>,
}

impl Simulation {
    pub fn run(&self) -> u64 {
        helper(&self.steps, 1)
    }
}

fn helper(xs: &[u64], i: usize) -> u64 {
    let head = xs.first().copied().unwrap_or_default();
    head + xs.get(i).copied().unwrap_or(0)
}
