pub fn elapsed_ms() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}
