pub fn elapsed_ms() -> u128 {
    let started = std::time::Instant::now(); // gossip-lint: allow(wall-clock): fixture — timing sidecar, never part of a report
    started.elapsed().as_millis()
}
