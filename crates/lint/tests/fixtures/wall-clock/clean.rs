pub fn elapsed_rounds(start_round: u64, now_round: u64) -> u64 {
    now_round.saturating_sub(start_round)
}
