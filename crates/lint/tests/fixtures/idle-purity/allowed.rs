//! Allowlisted fixture: an `activity` that bumps a `Cell` counter — impure
//! by the letter of the contract, suppressed with a reasoned pragma.

use std::cell::Cell;

pub struct Proto {
    count: Cell<u64>,
}

impl Proto {
    // gossip-audit: contract(pure)
    // gossip-lint: allow(idle-purity): the Cell counter is observability-only and never read by the schedule
    pub fn activity(&self) -> u64 {
        self.count.set(self.count.get() + 1);
        self.count.get()
    }
}
