//! Fire fixture: an `activity` fn declared pure but mutating its receiver —
//! both the `&mut self` signature and the field mutation are violations.

pub struct Proto {
    count: u64,
}

impl Proto {
    // gossip-audit: contract(pure)
    pub fn activity(&mut self) -> u64 {
        self.count += 1;
        self.count
    }
}
