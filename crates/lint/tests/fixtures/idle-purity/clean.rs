//! Clean fixture: a genuinely pure `activity` — reads the receiver, mutates
//! only a local accumulator.

pub struct Proto {
    window: Vec<u64>,
}

impl Proto {
    // gossip-audit: contract(pure)
    pub fn activity(&self) -> u64 {
        let mut acc = 0;
        for w in &self.window {
            acc += w;
        }
        acc
    }
}
