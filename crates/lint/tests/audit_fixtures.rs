//! Fixture triples for the workspace-level audit rules (`panic-path`,
//! `idle-purity`, `shared-state`).  Unlike the per-file UI fixtures these
//! flow through [`analyze_sources`], which builds the item index and call
//! graph, so each fixture is mounted at an audited engine path.

use gossip_lint::{analyze_sources, Report, SourceFile};

const AUDIT_RULES: &[&str] = &["panic-path", "idle-purity", "shared-state"];

fn fixture(rule: &str, kind: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule}/{kind}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Mounts the fixture inside `crates/sim/` so the shared-state and
/// idle-purity path filters treat it as audited engine code.
fn analyze(rule: &str, kind: &str, content: String) -> Report {
    analyze_sources(&[SourceFile {
        rel: format!("crates/sim/src/{rule}_{kind}.rs"),
        content,
    }])
}

/// Drops every line containing `marker` — simulating a contributor deleting
/// a pragma or contract instead of satisfying it.
fn strip(src: &str, marker: &str) -> String {
    src.lines()
        .filter(|l| !l.contains(marker))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fire_fixtures_fire_their_own_rule_and_nothing_else() {
    for &rule in AUDIT_RULES {
        let report = analyze(rule, "fire", fixture(rule, "fire"));
        assert!(!report.clean(), "{rule}/fire.rs must produce findings");
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "{rule}/fire.rs must fire `{rule}`:\n{}",
            report.render_text()
        );
        assert!(
            report.findings.iter().all(|f| f.rule == rule),
            "{rule}/fire.rs fired a foreign rule:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for &rule in AUDIT_RULES {
        let report = analyze(rule, "clean", fixture(rule, "clean"));
        assert!(
            report.clean(),
            "{rule}/clean.rs must be finding-free:\n{}",
            report.render_text()
        );
        assert!(
            report.suppressions_clean(),
            "{rule}/clean.rs must have no dangling suppressions:\n{}",
            report.render_suppressions()
        );
    }
}

#[test]
fn allowed_fixtures_are_suppressed_and_load_bearing() {
    for &rule in AUDIT_RULES {
        let src = fixture(rule, "allowed");
        let report = analyze(rule, "allowed", src.clone());
        assert!(
            report.clean(),
            "{rule}/allowed.rs must be clean under its pragmas:\n{}",
            report.render_text()
        );
        assert!(
            report.suppressed_by_rule.get(rule).copied().unwrap_or(0) >= 1,
            "{rule}/allowed.rs must record a suppression for `{rule}`"
        );
        assert!(
            report.suppressions_clean(),
            "every pragma in {rule}/allowed.rs must be used:\n{}",
            report.render_suppressions()
        );

        // Deleting the pragmas must bring the findings straight back.
        let report = analyze(rule, "allowed", strip(&src, "gossip-lint:"));
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "stripping the pragmas from {rule}/allowed.rs must re-fire `{rule}`:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn stripping_the_contract_is_a_coverage_finding() {
    let src = fixture("idle-purity", "clean");
    let report = analyze("idle-purity", "clean", strip(&src, "gossip-audit:"));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "idle-purity" && f.message.contains("contract(pure)")),
        "an unannotated activity fn must be an idle-purity coverage finding:\n{}",
        report.render_text()
    );
}
