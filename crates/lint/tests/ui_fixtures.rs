//! The ui-fixture suite: per rule, one fixture that fires, one that is
//! clean, and one whose findings are suppressed by reasoned pragmas — plus
//! proof that stripping the pragmas makes the findings come back, so every
//! allowlist entry is load-bearing.

use gossip_lint::analyze_source;

/// (rule name, does the fixture need crate-root classification).
const RULES: &[(&str, bool)] = &[
    ("unordered-iter", false),
    ("wall-clock", false),
    ("ambient-rng", false),
    ("par-order", false),
    ("debug-assert-side-effect", false),
    ("forbid-unsafe", true),
];

fn fixture(rule: &str, kind: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule}/{kind}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn analyze(rule: &str, kind: &str, content: &str, crate_root: bool) -> gossip_lint::FileAnalysis {
    analyze_source(
        &format!("fixtures/{rule}/{kind}.rs"),
        "fixture",
        content,
        false,
        crate_root,
    )
}

#[test]
fn fire_fixtures_fire() {
    for &(rule, crate_root) in RULES {
        let analysis = analyze(rule, "fire", &fixture(rule, "fire"), crate_root);
        assert!(
            analysis.findings.iter().any(|f| f.rule == rule),
            "{rule}/fire.rs must produce at least one {rule} finding, got: {:?}",
            analysis.findings
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for &(rule, crate_root) in RULES {
        let analysis = analyze(rule, "clean", &fixture(rule, "clean"), crate_root);
        assert!(
            analysis.findings.is_empty(),
            "{rule}/clean.rs must be clean, got: {:?}",
            analysis.findings
        );
    }
}

#[test]
fn allowed_fixtures_are_suppressed_and_pragmas_are_load_bearing() {
    for &(rule, crate_root) in RULES {
        let content = fixture(rule, "allowed");
        let analysis = analyze(rule, "allowed", &content, crate_root);
        assert!(
            analysis.findings.is_empty(),
            "{rule}/allowed.rs must be fully suppressed, got: {:?}",
            analysis.findings
        );
        assert!(
            analysis.pragmas_used >= 1,
            "{rule}/allowed.rs must use at least one pragma"
        );

        // Strip the pragmas (the marker no longer anchors) and the findings
        // must come back: every pragma in the fixture is load-bearing.
        let stripped = content.replace("gossip-lint:", "gossip-lint-stripped:");
        let analysis = analyze(rule, "allowed", &stripped, crate_root);
        assert!(
            analysis.findings.iter().any(|f| f.rule == rule),
            "stripping pragmas from {rule}/allowed.rs must resurface a {rule} finding, got: {:?}",
            analysis.findings
        );
    }
}

#[test]
fn pragma_hygiene_is_enforced() {
    // Unknown rule.
    let analysis = analyze_source(
        "hygiene.rs",
        "fixture",
        "// gossip-lint: allow(no-such-rule): reason\npub fn f() {}\n",
        false,
        false,
    );
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("unknown rule")),
        "unknown rule must be reported: {:?}",
        analysis.findings
    );

    // Missing reason on a pragma that would otherwise suppress a finding.
    let analysis = analyze_source(
        "hygiene.rs",
        "fixture",
        "pub fn f() {\n    let t = std::time::Instant::now(); // gossip-lint: allow(wall-clock)\n}\n",
        false,
        false,
    );
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("missing its mandatory reason")),
        "missing reason must be reported: {:?}",
        analysis.findings
    );
    assert!(
        analysis.findings.iter().any(|f| f.rule == "wall-clock"),
        "a reasonless pragma must not suppress: {:?}",
        analysis.findings
    );

    // A well-formed pragma that suppresses nothing is itself a finding.
    let analysis = analyze_source(
        "hygiene.rs",
        "fixture",
        "// gossip-lint: allow(wall-clock): but nothing here reads a clock\npub fn f() {}\n",
        false,
        false,
    );
    assert!(
        analysis
            .findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("unused pragma")),
        "unused pragma must be reported: {:?}",
        analysis.findings
    );
}

#[test]
fn test_code_is_exempt_from_behavior_rules() {
    let content = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() {\n        let m: HashMap<u32, u32> = HashMap::new();\n        for (k, v) in &m {\n            let _ = (k, v);\n        }\n    }\n}\n";
    let analysis = analyze_source("exempt.rs", "fixture", content, false, false);
    assert!(
        analysis.findings.is_empty(),
        "cfg(test) items must be exempt, got: {:?}",
        analysis.findings
    );
}
