//! The workspace item index: every `fn` item, with enough context for the
//! interprocedural rules — enclosing `impl`/`trait` type, module path, body
//! token range, receiver kind, test classification, and any attached
//! `// gossip-audit: contract(...)` annotation.
//!
//! The index is built from the [`lexer`](crate::lexer) token stream with a
//! small structural scan: brace depth plus a scope stack for `mod`/`impl`/
//! `trait` blocks.  Function *bodies* are skipped wholesale (nothing inside
//! a body declares an item this index cares about), which keeps the scan
//! robust against closures, match arms, and struct literals.

use crate::lexer::{Lexed, TokKind, Token};

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The function name (`run`, `merge_prefix`, ...).
    pub name: String,
    /// The `impl` target type or `trait` name the fn is declared under, if
    /// any (`Simulation`, `Protocol`, ...).
    pub self_ty: Option<String>,
    /// Fully qualified diagnostic name: `module::Type::name`.
    pub qual: String,
    /// Index of the file (into the analyzed source set) declaring the fn.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line where the declaration starts (first attribute of the
    /// attribute run, or the `fn` keyword) — contract annotations attach to
    /// any line in `decl_start_line..=body_open_line`.
    pub decl_start_line: u32,
    /// 1-based line of the body `{` (or of the terminating `;` for
    /// body-less trait methods).
    pub body_open_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range of the parameter list `( .. )`, inclusive of the parens.
    pub params: Option<(usize, usize)>,
    /// Token range of the body, inclusive of both braces; `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// The fn takes some form of `self` (it is a method or can be called
    /// with method syntax).
    pub has_self: bool,
    /// The fn takes `&mut self`.
    pub takes_mut_self: bool,
    /// The fn takes a `&mut` parameter other than the receiver.
    pub has_mut_param: bool,
    /// The fn is test code (`#[test]`/`#[cfg(test)]` region or whole-file
    /// test classification).
    pub is_test: bool,
    /// A `contract(pure)` annotation is attached to this fn.
    pub contract_pure: bool,
    /// Line of the attached contract annotation, if any.
    pub contract_line: Option<u32>,
}

/// A contract annotation that could not be attached to a `fn` item, or
/// whose kind is unknown — reported as a finding by the rules.
#[derive(Debug, Clone)]
pub struct ContractIssue {
    /// 1-based line of the offending contract comment.
    pub line: u32,
    /// Human-readable description of the problem.
    pub message: String,
}

/// Keywords that can precede `(` without being a call, and that terminate a
/// backwards place-walk.
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "trait", "mod", "struct", "enum", "union", "use",
    "pub", "where", "unsafe", "dyn", "box", "await", "const", "static", "type",
];

/// Contract kinds the rules know how to verify.
pub const CONTRACT_KINDS: &[&str] = &["pure"];

enum Scope {
    /// An inline `mod <name> {` block.
    Mod(String),
    /// An `impl <Type> {`, `impl Trait for <Type> {`, or `trait <Name> {`
    /// block: fns inside are associated with `<Type>`/`<Name>`.
    Holder(String),
}

/// Indexes one file's `fn` items and attaches its contract annotations.
///
/// `test_mask` must cover `lexed.tokens` (see
/// [`test_regions`](crate::rules::test_regions)); `module` is the file's
/// diagnostic module path.
pub fn index_file(
    file: usize,
    module: &str,
    lexed: &Lexed,
    test_mask: &[bool],
) -> (Vec<Item>, Vec<ContractIssue>) {
    let tokens = &lexed.tokens;
    let mut items = Vec::new();
    let mut scopes: Vec<(i32, Scope)> = Vec::new();
    let mut depth: i32 = 0;
    // Start of the current attribute run at item level, if any.
    let mut attr_start: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                attr_start = None;
                i += 1;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                while scopes.last().is_some_and(|(d, _)| *d >= depth) {
                    scopes.pop();
                }
                attr_start = None;
                i += 1;
            }
            (TokKind::Punct, "#") if tokens.get(i + 1).is_some_and(|t| t.text == "[") => {
                if attr_start.is_none() {
                    attr_start = Some(i);
                }
                i = skip_attribute(tokens, i);
            }
            (TokKind::Ident, "macro_rules") => {
                // `macro_rules! name { ... }` bodies contain token soup
                // (including `fn` templates); skip the whole definition.
                let mut j = i;
                while j < tokens.len() && tokens[j].text != "{" {
                    j += 1;
                }
                i = skip_braces(tokens, j);
                attr_start = None;
            }
            (TokKind::Ident, "mod") => {
                if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    if tokens.get(i + 2).is_some_and(|t| t.text == "{") {
                        scopes.push((depth, Scope::Mod(name.text.clone())));
                    }
                }
                attr_start = None;
                i += 1;
            }
            (TokKind::Ident, "impl") => {
                if let Some((head, brace)) = impl_header(tokens, i) {
                    scopes.push((depth, Scope::Holder(head)));
                    i = brace;
                } else {
                    i += 1;
                }
                attr_start = None;
            }
            (TokKind::Ident, "trait") => {
                if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    let mut j = i + 2;
                    while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                        j += 1;
                    }
                    if tokens.get(j).is_some_and(|t| t.text == "{") {
                        scopes.push((depth, Scope::Holder(name.text.clone())));
                        i = j;
                    } else {
                        i = j.max(i + 1);
                    }
                } else {
                    i += 1;
                }
                attr_start = None;
            }
            (TokKind::Ident, "fn")
                if tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) =>
            {
                let (item, next) = parse_fn(
                    file,
                    module,
                    tokens,
                    test_mask,
                    i,
                    attr_start,
                    scopes.as_slice(),
                );
                items.push(item);
                attr_start = None;
                i = next;
            }
            _ => {
                attr_start = None;
                i += 1;
            }
        }
    }

    let issues = attach_contracts(&mut items, lexed);
    (items, issues)
}

/// Attaches each contract annotation to the item whose declaration spans
/// its target line; returns the problems (unknown kind, dangling).
fn attach_contracts(items: &mut [Item], lexed: &Lexed) -> Vec<ContractIssue> {
    let mut issues = Vec::new();
    for contract in &lexed.contracts {
        if !CONTRACT_KINDS.contains(&contract.kind.as_str()) {
            issues.push(ContractIssue {
                line: contract.line,
                message: format!(
                    "malformed contract: unknown kind '{}' (expected `contract({})`)",
                    contract.kind,
                    CONTRACT_KINDS.join("|")
                ),
            });
            continue;
        }
        let target = contract.target_line(&lexed.tokens);
        let attached = items
            .iter_mut()
            .find(|item| item.decl_start_line <= target && target <= item.body_open_line);
        match attached {
            Some(item) => {
                item.contract_pure = true;
                item.contract_line = Some(contract.line);
            }
            None => issues.push(ContractIssue {
                line: contract.line,
                message: "dangling contract annotation: no fn declaration follows it".to_string(),
            }),
        }
    }
    issues
}

/// Parses one `fn` item starting at the `fn` keyword; returns the item and
/// the token index to resume scanning from (past the body or `;`).
fn parse_fn(
    file: usize,
    module: &str,
    tokens: &[Token],
    test_mask: &[bool],
    fn_idx: usize,
    attr_start: Option<usize>,
    scopes: &[(i32, Scope)],
) -> (Item, usize) {
    let name = tokens[fn_idx + 1].text.clone();
    // Scan the signature: generics (angle-aware, since `<` of generics must
    // not be confused with comparison — there is none in a signature), then
    // the parameter parens, then up to the body `{` or a `;`.
    let mut j = fn_idx + 2;
    let mut adepth: i32 = 0;
    let mut pdepth: i32 = 0;
    let mut params: Option<(usize, usize)> = None;
    let mut param_open: Option<usize> = None;
    let mut body_open: Option<usize> = None;
    let mut sig_end = tokens.len().saturating_sub(1);
    while j < tokens.len() {
        let text = tokens[j].text.as_str();
        match text {
            "<" => adepth += 1,
            ">" => adepth -= 1,
            "<<" => adepth += 2,
            ">>" => adepth -= 2,
            "(" => {
                if adepth == 0 && pdepth == 0 && params.is_none() && param_open.is_none() {
                    param_open = Some(j);
                }
                pdepth += 1;
            }
            ")" => {
                pdepth -= 1;
                if pdepth == 0 {
                    if let Some(open) = param_open.take() {
                        params = Some((open, j));
                    }
                }
            }
            "[" => pdepth += 1,
            "]" => pdepth -= 1,
            "{" if pdepth == 0 => {
                body_open = Some(j);
                sig_end = j;
                break;
            }
            ";" if pdepth == 0 => {
                sig_end = j;
                break;
            }
            _ => {}
        }
        j += 1;
    }

    let (body, next) = match body_open {
        Some(open) => {
            let past = skip_braces(tokens, open);
            (Some((open, past.saturating_sub(1))), past)
        }
        None => (None, sig_end + 1),
    };

    let (has_self, takes_mut_self, has_mut_param) = match params {
        Some((open, close)) => receiver_kind(tokens, open, close),
        None => (false, false, false),
    };

    let self_ty = scopes.iter().rev().find_map(|(_, s)| match s {
        Scope::Holder(name) => Some(name.clone()),
        Scope::Mod(_) => None,
    });
    let mut qual = String::from(module);
    for (_, scope) in scopes {
        if let Scope::Mod(name) = scope {
            qual.push_str("::");
            qual.push_str(name);
        }
    }
    if let Some(ty) = &self_ty {
        qual.push_str("::");
        qual.push_str(ty);
    }
    qual.push_str("::");
    qual.push_str(&name);

    let decl_start_line = attr_start.map_or(tokens[fn_idx].line, |a| tokens[a].line);
    let body_open_line = tokens.get(sig_end).map_or(tokens[fn_idx].line, |t| t.line);

    let item = Item {
        name,
        self_ty,
        qual,
        file,
        line: tokens[fn_idx].line,
        decl_start_line,
        body_open_line,
        fn_idx,
        params,
        body,
        has_self,
        takes_mut_self,
        has_mut_param,
        is_test: test_mask.get(fn_idx).copied().unwrap_or(false),
        contract_pure: false,
        contract_line: None,
    };
    (item, next)
}

/// Classifies the receiver and `&mut` parameters of a parameter list:
/// `(has_self, takes_mut_self, has_mut_param)`.
fn receiver_kind(tokens: &[Token], open: usize, close: usize) -> (bool, bool, bool) {
    // The receiver is the first parameter: skip `&`, a lifetime, and `mut`.
    let mut j = open + 1;
    let mut saw_amp = false;
    let mut saw_mut = false;
    while j < close {
        match (tokens[j].kind, tokens[j].text.as_str()) {
            (TokKind::Punct, "&") => saw_amp = true,
            (TokKind::Lifetime, _) => {}
            (TokKind::Ident, "mut") => saw_mut = true,
            _ => break,
        }
        j += 1;
    }
    let has_self = tokens.get(j).is_some_and(|t| t.text == "self") && j < close;
    let takes_mut_self = has_self && saw_amp && saw_mut;

    // Any further `& mut` pair in the list is a mutable non-receiver param.
    let scan_from = if has_self { j + 1 } else { open + 1 };
    let mut has_mut_param = false;
    let mut k = scan_from;
    while k < close {
        if tokens[k].text == "&" {
            let mut m = k + 1;
            if tokens.get(m).is_some_and(|t| t.kind == TokKind::Lifetime) {
                m += 1;
            }
            if tokens.get(m).is_some_and(|t| t.text == "mut") {
                has_mut_param = true;
                break;
            }
        }
        k += 1;
    }
    (has_self, takes_mut_self, has_mut_param)
}

/// Extracts the implemented type's head identifier from an `impl` header
/// (`Simulation` from `impl<'g> Simulation<'g> {`, `RandomPushPull` from
/// `impl Protocol for RandomPushPull {`); returns it plus the index of the
/// opening `{`.
fn impl_header(tokens: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut adepth: i32 = 0;
    let mut head: Option<String> = None;
    let mut after_for = false;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => adepth += 1,
            (TokKind::Punct, ">") => adepth -= 1,
            (TokKind::Punct, "<<") => adepth += 2,
            (TokKind::Punct, ">>") => adepth -= 2,
            (TokKind::Ident, "for") if adepth == 0 => {
                after_for = true;
                head = None;
            }
            (TokKind::Ident, "where") if adepth == 0 => {
                // The type head is fixed by now; scan on for the brace.
            }
            (TokKind::Ident, _) if adepth == 0 => {
                // Track the last path segment seen at angle depth 0; for
                // `a::b::C` this ends on `C`.
                head = Some(t.text.clone());
            }
            (TokKind::Punct, "{") if adepth == 0 => {
                let _ = after_for;
                return head.map(|h| (h, j));
            }
            (TokKind::Punct, ";") if adepth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Returns the index just past an attribute starting at `#`.
fn skip_attribute(tokens: &[Token], at: usize) -> usize {
    let mut j = at + 2;
    let mut depth = 1i32;
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Returns the index just past the brace block opening at `open` (which
/// must point at `{`); token-balanced.
fn skip_braces(tokens: &[Token], open: usize) -> usize {
    if tokens.get(open).is_none_or(|t| t.text != "{") {
        return open + 1;
    }
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Finds the index of the opening delimiter matching the closing one at
/// `close` (`)` or `]`), scanning backwards; `None` when unbalanced.
pub fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let (open_text, close_text) = match tokens.get(close)?.text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 1i32;
    let mut j = close;
    while j > 0 {
        j -= 1;
        let text = tokens[j].text.as_str();
        if text == close_text {
            depth += 1;
        } else if text == open_text {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn index(src: &str) -> Vec<Item> {
        let lexed = lex(src);
        let (mask, _) = test_regions(&lexed.tokens);
        index_file(0, "demo", &lexed, &mask).0
    }

    #[test]
    fn free_impl_and_trait_fns_are_indexed() {
        let src = "
            pub fn free(x: u32) -> u32 { x }
            pub struct S;
            impl S {
                pub fn method(&self) -> u32 { free(1) }
                pub fn method_mut(&mut self, v: &mut Vec<u32>) { v.push(1); }
            }
            pub trait T {
                fn required(&self);
                fn provided(&self) -> u32 { 0 }
            }
            impl T for S {
                fn required(&self) {}
            }
        ";
        let items = index(src);
        let names: Vec<(&str, Option<&str>)> = items
            .iter()
            .map(|i| (i.name.as_str(), i.self_ty.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("S")),
                ("method_mut", Some("S")),
                ("required", Some("T")),
                ("provided", Some("T")),
                ("required", Some("S")),
            ]
        );
        let free = &items[0];
        assert!(!free.has_self && free.body.is_some());
        let method = &items[1];
        assert!(method.has_self && !method.takes_mut_self);
        assert_eq!(method.qual, "demo::S::method");
        let method_mut = &items[2];
        assert!(method_mut.takes_mut_self && method_mut.has_mut_param);
        let required_decl = &items[3];
        assert!(required_decl.body.is_none());
    }

    #[test]
    fn generic_impl_headers_resolve_the_type_head() {
        let items = index(
            "pub struct Sim<'g> { g: &'g u32 }
             impl<'g> Sim<'g> {
                 pub fn run(&mut self) {}
             }",
        );
        assert_eq!(items[0].self_ty.as_deref(), Some("Sim"));
        assert!(items[0].takes_mut_self);
    }

    #[test]
    fn nested_mods_extend_the_qual_path() {
        let items = index("mod inner { pub fn f() {} }");
        assert_eq!(items[0].qual, "demo::inner::f");
    }

    #[test]
    fn test_fns_are_classified() {
        let items = index("#[test]\nfn t() {}\npub fn real() {}");
        assert!(items[0].is_test);
        assert!(!items[1].is_test);
    }

    #[test]
    fn contracts_attach_through_attributes() {
        let src = "// gossip-audit: contract(pure)\n#[inline]\nfn activity(&self) {}\n";
        let lexed = lex(src);
        let (mask, _) = test_regions(&lexed.tokens);
        let (items, issues) = index_file(0, "demo", &lexed, &mask);
        assert!(issues.is_empty(), "{issues:?}");
        assert!(items[0].contract_pure);
        assert_eq!(items[0].contract_line, Some(1));
    }

    #[test]
    fn dangling_and_malformed_contracts_are_issues() {
        let src = "// gossip-audit: contract(pure)\nstruct NotAFn;\n// gossip-audit: contract(fast)\nfn f() {}\n";
        let lexed = lex(src);
        let (mask, _) = test_regions(&lexed.tokens);
        let (items, issues) = index_file(0, "demo", &lexed, &mask);
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues.iter().any(|i| i.message.contains("dangling")));
        assert!(issues.iter().any(|i| i.message.contains("unknown kind")));
        assert!(!items.iter().any(|i| i.contract_pure));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = index("pub struct H { cb: fn(u32) -> u32 }\npub fn real() {}");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }
}
