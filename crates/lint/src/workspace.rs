//! Deterministic workspace walker and the interprocedural audit driver:
//! finds every first-party `.rs` file, classifies it (test code / crate
//! root / module path), runs the per-file rules, builds the workspace item
//! index and call graph, and runs the three audit rules on top.
//!
//! The analysis is staged: stage one lexes everything and collects
//! `#[cfg(test)] mod name;` declarations so that *file* modules gated to
//! tests are exempted like inline `#[cfg(test)]` blocks; stage two
//! classifies files, runs the per-file rules, and indexes `fn` items;
//! stage three builds the call graph and runs the audit rules
//! ([`panic-path`](audit_panic_path), [`idle-purity`](audit_idle_purity),
//! and shared-state, which is per-file but configured here); stage four
//! enriches findings with their enclosing item and line snippet (the
//! inputs to the stable finding id) and applies each file's pragmas.
//! File order is sorted, so the report is byte-identical across runs and
//! platforms.
//!
//! Collection ([`collect_sources`]) and analysis ([`analyze_sources`]) are
//! separate so the test-suite can analyse *modified* in-memory sources —
//! stripping a pragma or injecting a violation — and assert the workspace
//! verdict flips, without touching the checkout.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{self, crate_of};
use crate::effects;
use crate::items::{index_file, Item};
use crate::lexer::{lex, Lexed};
use crate::report::{Finding, Report, Suppression};
use crate::rules::{apply_pragmas, file_findings, test_regions, FileInput};

/// Directories never descended into: build output, vendored third-party
/// code (not ours to lint), VCS metadata, and the lint crate's own
/// deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Path components that mark everything beneath them as test code — unless
/// the component is a crate directory itself (`crates/tests` is the
/// integration-test *crate*, whose `src/lib.rs` is normal source).
const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (used in diagnostics and
    /// for classification).
    pub rel: String,
    /// The file contents.
    pub content: String,
}

/// Configuration for the workspace-level audit rules.
///
/// The defaults encode this repo's contracts: the merge/delivery/calendar
/// path of the engine plus the heavy-protocol entry points as panic-path
/// roots, and the engine crates as shared-state- and idle-purity-audited
/// paths.
pub struct AuditConfig {
    /// `panic-path` roots, as `Type::name` (methods/associated fns) or
    /// bare `name` (free fns) strings.  Every fn transitively reachable
    /// from a root must be free of potential panic sites or carry a
    /// reasoned `allow(panic-path)` pragma on its `fn` line.
    pub panic_roots: Vec<String>,
    /// Path prefixes whose non-test code must stay free of shared-state
    /// primitives (`Mutex`, atomics, `static mut`, ...): determinism here
    /// is argued from value-identical merges, never from synchronisation.
    pub shared_state_paths: Vec<String>,
    /// Path prefixes whose non-test `fn activity` / `fn shard_activity`
    /// implementations (the idle-skip decision of the event-driven
    /// scheduler, in both its serial and sharded form) must carry — and
    /// honor — a `// gossip-audit: contract(pure)` annotation.
    pub activity_paths: Vec<String>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        let panic_roots = [
            // The engine's top-level driver and its merge/delivery/calendar
            // internals.  `run`/`run_sharded` reach `run_inner` through a
            // turbofish call (`self.run_inner::<P, D>(..)`) the name-based
            // call graph cannot see, and `run_inner` dispatches the decision
            // pass through `D::decide` — so the inner driver and both
            // decision drivers are roots of their own.
            "Simulation::run",
            "Simulation::run_sharded",
            "Simulation::run_inner",
            "SerialDecisions::decide",
            "ShardedDecisions::decide",
            "Progress::merge_completions",
            "Progress::advance_shadow",
            "Progress::collapse_node",
            "next_event_round",
            // The sharded merge/decision machinery: shard phase workers, the
            // destination partitioner and the pool fan-out helper (also
            // reachable by name from `merge_completions`; listed explicitly
            // because they are the parallel-path contract this audit exists
            // to keep panic-free).
            "merge_shard_phase_a",
            "merge_shard_phase_b",
            "partition_tasks",
            "run_jobs",
            // `ShardedProtocol` entry points are dispatched `P::`-qualified
            // inside the sharded decision driver — invisible to the call
            // graph, so each implementation is a root.
            "RandomPushPull::shard_on_round",
            "RandomPushPull::shard_activity",
            "RoundRobinFlood::decision_shards",
            "RoundRobinFlood::shard_on_round",
            "RoundRobinFlood::shard_activity",
            // The mid-size dense-bitset oracle is driven from the test and
            // bench harnesses only, so it roots itself.
            "OracleSimulation::run",
            // Rumor-set merge operations (the parallel-merge contract).
            "RumorSet::insert",
            "RumorSet::insert_consecutive",
            "RumorSet::insert_all",
            "RumorSet::union_with",
            "RumorSet::union_words_collect_new_runs",
            // Acquisition-log operations driven from the merge path.
            "AcquisitionLog::push",
            "AcquisitionLog::push_run",
            "AcquisitionLog::truncate_below",
            "AcquisitionLog::truncate_all",
            "AcquisitionLog::for_each_segment",
            // Heavy-protocol entry points dispatched through `P: Protocol`
            // generics — invisible to the name-based call graph from
            // `Simulation::run` (core is not a dependency of sim), so they
            // are roots of their own.
            "EllDtg::on_round",
            "EllDtg::on_exchange",
            "RrBroadcast::on_round",
            // Fault-injection entry points.  Plan construction runs before
            // `Simulation::run` (from bench/test harnesses), and the
            // graceful-degradation accounting walks liveness bitsets — both
            // must be panic-free on every seed, so they are roots of their
            // own in addition to being reachable from the engine driver.
            "FaultPlan::random_churn",
            "Progress::crash_node",
            "Progress::rejoin_node",
            "AliveView::kill_node",
            "AliveView::revive_node",
            "AliveView::residual_components",
            "stranded_rumors",
        ];
        Self {
            panic_roots: panic_roots.iter().map(|s| s.to_string()).collect(),
            shared_state_paths: vec!["crates/sim/".to_string(), "crates/core/".to_string()],
            activity_paths: vec!["crates/sim/".to_string(), "crates/core/".to_string()],
        }
    }
}

/// Lints every first-party source file under `root` (the workspace root)
/// with the default audit configuration.
pub fn run(root: &Path) -> io::Result<Report> {
    Ok(analyze_sources(&collect_sources(root)?))
}

/// Collects every first-party `.rs` file under `root`, sorted by relative
/// path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Ok(SourceFile {
                rel,
                content: fs::read_to_string(&path)?,
            })
        })
        .collect()
}

/// Runs the rules over an in-memory source set with the default audit
/// configuration (see module docs).
pub fn analyze_sources(files: &[SourceFile]) -> Report {
    analyze_sources_with(files, &AuditConfig::default())
}

/// Per-file classification computed once in stage two.
struct FileCtx {
    module: String,
    whole_file_test: bool,
    crate_root: bool,
}

/// Runs the per-file rules *and* the workspace audit rules over an
/// in-memory source set.
pub fn analyze_sources_with(files: &[SourceFile], config: &AuditConfig) -> Report {
    // Stage one: lex everything, collect `#[cfg(test)] mod name;` modules.
    let mut lexed: Vec<Lexed> = Vec::new();
    let mut test_files: BTreeSet<PathBuf> = BTreeSet::new();
    for file in files {
        let lx = lex(&file.content);
        let (_, test_mods) = test_regions(&lx.tokens);
        for name in &test_mods {
            for candidate in test_mod_candidates(Path::new(&file.rel), name) {
                test_files.insert(candidate);
            }
        }
        lexed.push(lx);
    }

    // Stage two: classify, run the per-file rules, index items.
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    for (fi, (file, lx)) in files.iter().zip(&lexed).enumerate() {
        let rel = Path::new(&file.rel);
        let ctx = FileCtx {
            module: module_path(rel),
            whole_file_test: is_test_path(rel) || test_files.contains(rel),
            crate_root: is_crate_root(rel),
        };
        let input = FileInput {
            path: &file.rel,
            module: &ctx.module,
            lexed: lx,
            whole_file_test: ctx.whole_file_test,
            crate_root: ctx.crate_root,
        };
        raw.extend(file_findings(&input));

        let (mut test_mask, _) = test_regions(&lx.tokens);
        if ctx.whole_file_test {
            test_mask.iter_mut().for_each(|b| *b = true);
        }
        let (file_items, contract_issues) = index_file(fi, &ctx.module, lx, &test_mask);
        for issue in contract_issues {
            raw.push(Finding::new(
                "contract",
                &file.rel,
                issue.line,
                &ctx.module,
                issue.message,
            ));
        }
        items.extend(file_items);

        // shared-state is per-file but belongs to the audit: value-identity
        // arguments break down the moment synchronisation primitives enter
        // the audited crates.
        if config
            .shared_state_paths
            .iter()
            .any(|p| file.rel.starts_with(p.as_str()))
        {
            for site in effects::shared_state_sites(&lx.tokens, &test_mask) {
                raw.push(Finding::new(
                    "shared-state",
                    &file.rel,
                    site.line,
                    &ctx.module,
                    format!(
                        "{} in an audited crate: determinism is argued from value-identical merges, not synchronisation — remove it or allowlist with a reasoned pragma",
                        site.what
                    ),
                ));
            }
        }
        ctxs.push(ctx);
    }

    // Stage three: call graph + interprocedural audit rules.
    let crate_names: Vec<String> = files.iter().map(|f| crate_of(&f.rel).to_string()).collect();
    let graph = callgraph::build(&items, |fi| &lexed[fi].tokens, &crate_names);
    audit_panic_path(files, &lexed, &items, &graph, &ctxs, config, &mut raw);
    audit_idle_purity(files, &lexed, &items, &graph, &ctxs, config, &mut raw);

    // Stage four: enrichment, pragma application, suppression inventory.
    let contracts_attached: BTreeSet<(usize, u32)> = items
        .iter()
        .filter_map(|it| it.contract_line.map(|l| (it.file, l)))
        .collect();
    let file_index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(fi, f)| (f.rel.as_str(), fi))
        .collect();
    let mut by_file: BTreeMap<usize, Vec<Finding>> = BTreeMap::new();
    for finding in raw {
        let fi = file_index[finding.file.as_str()];
        by_file.entry(fi).or_default().push(finding);
    }

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for (fi, (file, lx)) in files.iter().zip(&lexed).enumerate() {
        let ctx = &ctxs[fi];
        let input = FileInput {
            path: &file.rel,
            module: &ctx.module,
            lexed: lx,
            whole_file_test: ctx.whole_file_test,
            crate_root: ctx.crate_root,
        };
        let outcome = apply_pragmas(&input, by_file.remove(&fi).unwrap_or_default());
        for mut finding in outcome.findings {
            enrich(&mut finding, fi, lx, &items);
            report.findings.push(finding);
        }
        report.pragmas_used += outcome.pragmas_used;
        for (rule, n) in outcome.suppressed_by_rule {
            *report.suppressed_by_rule.entry(rule).or_default() += n;
        }
        for (pi, pragma) in lx.pragmas.iter().enumerate() {
            report.suppressions.push(Suppression {
                file: file.rel.clone(),
                line: pragma.line,
                kind: "pragma".to_string(),
                name: pragma.rule.clone(),
                reason: pragma.reason.clone(),
                used: outcome.pragma_used[pi],
            });
        }
        for contract in &lx.contracts {
            report.suppressions.push(Suppression {
                file: file.rel.clone(),
                line: contract.line,
                kind: "contract".to_string(),
                name: contract.kind.clone(),
                reason: String::new(),
                used: contracts_attached.contains(&(fi, contract.line)),
            });
        }
    }
    report.findings.sort();
    report.suppressions.sort();
    report
}

/// Does a `Type::name` / `name` root spec match an indexed item?
fn root_matches(root: &str, item: &Item) -> bool {
    match root.split_once("::") {
        Some((ty, name)) => item.self_ty.as_deref() == Some(ty) && item.name == name,
        None => item.self_ty.is_none() && item.name == root,
    }
}

/// **panic-path** — every fn transitively reachable from the configured
/// merge/delivery roots must be free of potential panic sites.
///
/// Sites within one fn are aggregated into a single finding anchored on its
/// `fn` line (so one reasoned pragma covers the fn), with the per-site
/// lines in the human-only detail and the BFS path from the root in the
/// message.
fn audit_panic_path(
    files: &[SourceFile],
    lexed: &[Lexed],
    items: &[Item],
    graph: &callgraph::CallGraph,
    ctxs: &[FileCtx],
    config: &AuditConfig,
    raw: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, item)| {
            !item.is_test && config.panic_roots.iter().any(|r| root_matches(r, item))
        })
        .map(|(idx, _)| idx)
        .collect();
    let seen = callgraph::reach(graph, &roots);
    for &idx in seen.keys() {
        let item = &items[idx];
        let Some(body) = item.body else {
            continue;
        };
        let sites = effects::panic_sites(&lexed[item.file].tokens, body);
        if sites.is_empty() {
            continue;
        }
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for site in &sites {
            *counts.entry(site.kind).or_default() += 1;
        }
        let kinds = effects::PANIC_KINDS
            .iter()
            .filter_map(|k| counts.get(k).map(|n| format!("{n} {k}")))
            .collect::<Vec<_>>()
            .join(", ");
        let detail = sites
            .iter()
            .map(|s| format!("line {} ({})", s.line, s.kind))
            .collect::<Vec<_>>()
            .join(", ");
        let mut finding = Finding::new(
            "panic-path",
            &files[item.file].rel,
            item.line,
            &ctxs[item.file].module,
            format!(
                "`{}` is on the merge/delivery panic-path ({}) with {}; prove each site unreachable and allowlist with a reasoned pragma, or restructure",
                item.qual,
                callgraph::path_to_root(items, &seen, idx),
                kinds
            ),
        );
        finding.item = item.qual.clone();
        finding.detail = format!("sites: {detail}");
        raw.push(finding);
    }
}

/// **idle-purity** — the idle-skip decision must be pure, transitively.
///
/// Two sub-checks: *coverage* (every non-test `fn activity` taking `self`,
/// and every `fn shard_activity` — the associated-fn form used by the
/// sharded decision pass — in the audited paths must carry `contract(pure)`,
/// so stripping an annotation flips the workspace verdict) and *verification*
/// (each
/// `contract(pure)` fn, and everything it transitively calls, is free of
/// purity violations).  Violations anchor on the contract-carrying fn's
/// line, so one pragma there covers a deliberate exception.
fn audit_idle_purity(
    files: &[SourceFile],
    lexed: &[Lexed],
    items: &[Item],
    graph: &callgraph::CallGraph,
    ctxs: &[FileCtx],
    config: &AuditConfig,
    raw: &mut Vec<Finding>,
) {
    for item in items {
        let is_idle_decision =
            (item.name == "activity" && item.has_self) || item.name == "shard_activity";
        if item.is_test || !is_idle_decision || item.contract_pure {
            continue;
        }
        let rel = &files[item.file].rel;
        if !config
            .activity_paths
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
        {
            continue;
        }
        let mut finding = Finding::new(
            "idle-purity",
            rel,
            item.line,
            &ctxs[item.file].module,
            format!(
                "`{}` implements the idle-skip decision but carries no `// gossip-audit: contract(pure)` annotation — the event-driven scheduler is only sound if this is pure",
                item.qual
            ),
        );
        finding.item = item.qual.clone();
        raw.push(finding);
    }

    for (idx, item) in items.iter().enumerate() {
        if !item.contract_pure || item.is_test {
            continue;
        }
        let seen = callgraph::reach(graph, &[idx]);
        for &jdx in seen.keys() {
            let callee = &items[jdx];
            for violation in effects::purity_sites(callee, &lexed[callee.file].tokens) {
                let message = if jdx == idx {
                    format!(
                        "contract(pure) on `{}` is violated: it {}",
                        item.qual, violation.what
                    )
                } else {
                    format!(
                        "contract(pure) on `{}` is violated transitively: `{}` ({}) {}",
                        item.qual,
                        callee.qual,
                        callgraph::path_to_root(items, &seen, jdx),
                        violation.what
                    )
                };
                let mut finding = Finding::new(
                    "idle-purity",
                    &files[item.file].rel,
                    item.line,
                    &ctxs[item.file].module,
                    message,
                );
                finding.item = item.qual.clone();
                finding.detail = format!("site: {}:{}", files[callee.file].rel, violation.line);
                raw.push(finding);
            }
        }
    }
}

/// Fills a finding's `snippet` (token texts of its anchor line) and `item`
/// (enclosing fn) when the producing rule left them empty — these are the
/// content components of the stable finding id.
fn enrich(finding: &mut Finding, fi: usize, lx: &Lexed, items: &[Item]) {
    if finding.snippet.is_empty() {
        finding.snippet = lx
            .tokens
            .iter()
            .filter(|t| t.line == finding.line)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
    }
    if finding.item.is_empty() {
        if let Some(item) = enclosing_item(items, lx, fi, finding.line) {
            finding.item = item.qual.clone();
        }
    }
}

/// The innermost fn item of file `fi` whose declaration-plus-body line
/// range covers `line`.
fn enclosing_item<'a>(items: &'a [Item], lx: &Lexed, fi: usize, line: u32) -> Option<&'a Item> {
    items
        .iter()
        .filter(|it| it.file == fi && it.decl_start_line <= line)
        .filter(|it| {
            let end_line = match it.body {
                Some((_, close)) => lx.tokens.get(close).map_or(it.body_open_line, |t| t.line),
                None => it.body_open_line,
            };
            line <= end_line
        })
        .max_by_key(|it| it.decl_start_line)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`] and hidden
/// entries; sorted later for determinism.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Where a `#[cfg(test)] mod name;` declared in `declaring_file` may live.
fn test_mod_candidates(declaring_file: &Path, name: &str) -> Vec<PathBuf> {
    let dir = declaring_file.parent().unwrap_or(Path::new(""));
    let stem = declaring_file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = if matches!(stem.as_str(), "lib" | "main" | "mod") {
        dir.to_path_buf()
    } else {
        dir.join(&stem)
    };
    vec![
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
    ]
}

/// `true` when every token in the file is test code by *location*:
/// integration tests, benches, and examples directories — but not the
/// `crates/tests` crate directory itself.
fn is_test_path(rel: &Path) -> bool {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    for (i, part) in parts.iter().enumerate() {
        // The last component is the file name, not a directory.
        if i + 1 == parts.len() {
            break;
        }
        let under_crates = i > 0 && parts[i - 1] == "crates";
        if TEST_DIRS.contains(&part.as_str()) && !under_crates {
            return true;
        }
    }
    false
}

/// `true` for files that are crate roots and must carry
/// `#![forbid(unsafe_code)]`: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`.
fn is_crate_root(rel: &Path) -> bool {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let n = parts.len();
    if n >= 2 && parts[n - 2] == "src" && matches!(parts[n - 1].as_str(), "lib.rs" | "main.rs") {
        return true;
    }
    n >= 3 && parts[n - 3] == "src" && parts[n - 2] == "bin"
}

/// Best-effort Rust module path for diagnostics: `crates/core/src/dtg.rs`
/// → `gossip_core::dtg`.  Every workspace crate is named `gossip-<dir>`,
/// so the mapping needs no Cargo.toml parsing.
fn module_path(rel: &Path) -> String {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let stem = parts
        .last()
        .map(|p| p.trim_end_matches(".rs").to_string())
        .unwrap_or_default();
    if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        let mut path = format!("gossip_{}", parts[1]);
        for part in &parts[3..parts.len() - 1] {
            if part == "bin" {
                continue;
            }
            path.push_str("::");
            path.push_str(part);
        }
        if !matches!(stem.as_str(), "lib" | "main" | "mod") {
            path.push_str("::");
            path.push_str(&stem);
        }
        return path;
    }
    stem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_path_classification() {
        assert!(is_test_path(Path::new("tests/determinism.rs")));
        assert!(is_test_path(Path::new("examples/quickstart.rs")));
        assert!(is_test_path(Path::new("crates/bench/benches/dtg.rs")));
        assert!(is_test_path(Path::new("crates/graph/tests/props.rs")));
        assert!(!is_test_path(Path::new("crates/tests/src/lib.rs")));
        assert!(!is_test_path(Path::new("crates/core/src/dtg.rs")));
    }

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root(Path::new("crates/core/src/lib.rs")));
        assert!(is_crate_root(Path::new(
            "crates/bench/src/bin/experiments.rs"
        )));
        assert!(!is_crate_root(Path::new("crates/core/src/dtg.rs")));
        assert!(!is_crate_root(Path::new("tests/determinism.rs")));
    }

    #[test]
    fn module_paths() {
        assert_eq!(
            module_path(Path::new("crates/core/src/dtg.rs")),
            "gossip_core::dtg"
        );
        assert_eq!(
            module_path(Path::new("crates/core/src/lib.rs")),
            "gossip_core"
        );
        assert_eq!(
            module_path(Path::new("crates/graph/src/generators/random.rs")),
            "gossip_graph::generators::random"
        );
        assert_eq!(
            module_path(Path::new("crates/bench/src/bin/experiments.rs")),
            "gossip_bench::experiments"
        );
        assert_eq!(
            module_path(Path::new("tests/determinism.rs")),
            "determinism"
        );
    }

    #[test]
    fn test_mod_candidates_resolve_siblings() {
        let got = test_mod_candidates(Path::new("crates/core/src/lib.rs"), "spanner_old");
        assert!(got.contains(&PathBuf::from("crates/core/src/spanner_old.rs")));
    }

    #[test]
    fn cfg_test_file_module_is_exempt() {
        let lib = SourceFile {
            rel: "crates/demo/src/lib.rs".to_string(),
            content: "//! Demo.\n#![forbid(unsafe_code)]\n#[cfg(test)]\nmod helpers;\n".to_string(),
        };
        let helpers = SourceFile {
            rel: "crates/demo/src/helpers.rs".to_string(),
            content: "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n".to_string(),
        };
        let report = analyze_sources(&[lib.clone(), helpers.clone()]);
        assert!(
            report.clean(),
            "cfg(test) file module should be exempt: {:?}",
            report.findings
        );

        // Without the #[cfg(test)] gate the same module is linted.
        let lib_ungated = SourceFile {
            content: lib.content.replace("#[cfg(test)]\n", ""),
            ..lib
        };
        let report = analyze_sources(&[lib_ungated, helpers]);
        assert!(!report.clean(), "ungated module must be linted");
    }

    #[test]
    fn panic_path_findings_aggregate_and_suppress_by_fn_line() {
        let src = SourceFile {
            rel: "crates/sim/src/demo.rs".to_string(),
            content: "pub struct Simulation;
impl Simulation {
    pub fn run(&self) { helper(1); }
}
fn helper(i: usize) -> u64 {
    let xs = vec![1u64, 2];
    xs[i] + xs.first().unwrap()
}
"
            .to_string(),
        };
        let report = analyze_sources(std::slice::from_ref(&src));
        let pp: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == "panic-path")
            .collect();
        assert_eq!(pp.len(), 1, "one aggregated finding: {:?}", report.findings);
        assert!(pp[0].message.contains("Simulation::run -> "));
        assert!(pp[0].detail.contains("indexing") && pp[0].detail.contains("unwrap/expect"));
        assert_eq!(pp[0].line, 5, "anchored on the fn line");

        // A reasoned pragma directly above the fn suppresses it.
        let allowed = SourceFile {
            content: src.content.replace(
                "fn helper",
                "// gossip-lint: allow(panic-path): demo bounds are checked by caller\nfn helper",
            ),
            ..src
        };
        let report = analyze_sources(&[allowed]);
        assert!(
            !report.findings.iter().any(|f| f.rule == "panic-path"),
            "{:?}",
            report.findings
        );
        assert_eq!(report.suppressed_by_rule.get("panic-path"), Some(&1));
    }

    #[test]
    fn idle_purity_coverage_and_verification_fire() {
        // Coverage: an unannotated activity fn in an audited path.
        let uncovered = SourceFile {
            rel: "crates/sim/src/demo.rs".to_string(),
            content: "pub struct P;\nimpl P {\n    pub fn activity(&self) -> u32 { 0 }\n}\n"
                .to_string(),
        };
        let report = analyze_sources(&[uncovered]);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "idle-purity" && f.message.contains("no")),
            "{:?}",
            report.findings
        );

        // Verification: an annotated fn that mutates self, transitively.
        let impure = SourceFile {
            rel: "crates/sim/src/demo.rs".to_string(),
            content: "pub struct P { count: u64 }
impl P {
    // gossip-audit: contract(pure)
    pub fn activity(&self) -> u64 { self.peek() }
    fn peek(&self) -> u64 { thread_rng() }
}
fn thread_rng() -> u64 { 4 }
"
            .to_string(),
        };
        let report = analyze_sources(&[impure]);
        let viols: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == "idle-purity")
            .collect();
        assert!(
            viols.iter().any(|f| f.message.contains("transitively")),
            "{:?}",
            report.findings
        );
        assert_eq!(viols[0].line, 4, "anchored on the contract fn line");
    }

    #[test]
    fn shared_state_fires_only_in_audited_paths() {
        let content = "pub fn bump() {\n    let _ = std::sync::atomic::Ordering::Relaxed;\n}\n";
        let audited = SourceFile {
            rel: "crates/sim/src/demo.rs".to_string(),
            content: content.to_string(),
        };
        let outside = SourceFile {
            rel: "crates/bench/src/demo.rs".to_string(),
            content: content.to_string(),
        };
        let report = analyze_sources(&[audited]);
        assert!(report.findings.iter().any(|f| f.rule == "shared-state"));
        let report = analyze_sources(&[outside]);
        assert!(!report.findings.iter().any(|f| f.rule == "shared-state"));
    }

    #[test]
    fn contracts_appear_in_the_suppression_inventory() {
        let src = SourceFile {
            rel: "crates/sim/src/demo.rs".to_string(),
            content: "pub struct P;
impl P {
    // gossip-audit: contract(pure)
    pub fn activity(&self) -> u32 { 0 }
}
// gossip-audit: contract(pure)
pub struct Dangling;
"
            .to_string(),
        };
        let report = analyze_sources(&[src]);
        let contracts: Vec<&Suppression> = report
            .suppressions
            .iter()
            .filter(|s| s.kind == "contract")
            .collect();
        assert_eq!(contracts.len(), 2);
        assert!(contracts.iter().any(|s| s.used));
        assert!(contracts.iter().any(|s| !s.used));
        // The dangling one is also a finding.
        assert!(report.findings.iter().any(|f| f.rule == "contract"));
        assert!(!report.suppressions_clean());
    }
}
