//! Deterministic workspace walker: finds every first-party `.rs` file,
//! classifies it (test code / crate root / module path), and runs the rules.
//!
//! The analysis is two-pass: pass one lexes everything and collects
//! `#[cfg(test)] mod name;` declarations so that *file* modules gated to
//! tests (e.g. `crates/core/src/spanner_old.rs`) are exempted like inline
//! `#[cfg(test)]` blocks; pass two classifies and analyses.  File order is
//! sorted, so the report is byte-identical across runs and platforms.
//!
//! Collection ([`collect_sources`]) and analysis ([`analyze_sources`]) are
//! separate so the test-suite can analyse *modified* in-memory sources —
//! stripping a pragma or injecting a violation — and assert the workspace
//! verdict flips, without touching the checkout.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};
use crate::report::Report;
use crate::rules::{analyze_file, test_regions, FileInput};

/// Directories never descended into: build output, vendored third-party
/// code (not ours to lint), VCS metadata, and the lint crate's own
/// deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Path components that mark everything beneath them as test code — unless
/// the component is a crate directory itself (`crates/tests` is the
/// integration-test *crate*, whose `src/lib.rs` is normal source).
const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (used in diagnostics and
    /// for classification).
    pub rel: String,
    /// The file contents.
    pub content: String,
}

/// Lints every first-party source file under `root` (the workspace root).
pub fn run(root: &Path) -> io::Result<Report> {
    Ok(analyze_sources(&collect_sources(root)?))
}

/// Collects every first-party `.rs` file under `root`, sorted by relative
/// path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Ok(SourceFile {
                rel,
                content: fs::read_to_string(&path)?,
            })
        })
        .collect()
}

/// Runs the rules over an in-memory source set (see module docs).
pub fn analyze_sources(files: &[SourceFile]) -> Report {
    // Pass one: lex everything, collect `#[cfg(test)] mod name;` modules.
    let mut lexed: Vec<Lexed> = Vec::new();
    let mut test_files: BTreeSet<PathBuf> = BTreeSet::new();
    for file in files {
        let lx = lex(&file.content);
        let (_, test_mods) = test_regions(&lx.tokens);
        for name in &test_mods {
            for candidate in test_mod_candidates(Path::new(&file.rel), name) {
                test_files.insert(candidate);
            }
        }
        lexed.push(lx);
    }

    // Pass two: classify and analyse.
    let mut report = Report::default();
    for (file, lx) in files.iter().zip(&lexed) {
        let rel = Path::new(&file.rel);
        let input = FileInput {
            path: &file.rel,
            module: &module_path(rel),
            lexed: lx,
            whole_file_test: is_test_path(rel) || test_files.contains(rel),
            crate_root: is_crate_root(rel),
        };
        let analysis = analyze_file(&input);
        report.findings.extend(analysis.findings);
        report.pragmas_used += analysis.pragmas_used;
        report.files_scanned += 1;
    }
    report.findings.sort();
    report
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`] and hidden
/// entries; sorted later for determinism.
fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Where a `#[cfg(test)] mod name;` declared in `declaring_file` may live.
fn test_mod_candidates(declaring_file: &Path, name: &str) -> Vec<PathBuf> {
    let dir = declaring_file.parent().unwrap_or(Path::new(""));
    let stem = declaring_file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = if matches!(stem.as_str(), "lib" | "main" | "mod") {
        dir.to_path_buf()
    } else {
        dir.join(&stem)
    };
    vec![
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
    ]
}

/// `true` when every token in the file is test code by *location*:
/// integration tests, benches, and examples directories — but not the
/// `crates/tests` crate directory itself.
fn is_test_path(rel: &Path) -> bool {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    for (i, part) in parts.iter().enumerate() {
        // The last component is the file name, not a directory.
        if i + 1 == parts.len() {
            break;
        }
        let under_crates = i > 0 && parts[i - 1] == "crates";
        if TEST_DIRS.contains(&part.as_str()) && !under_crates {
            return true;
        }
    }
    false
}

/// `true` for files that are crate roots and must carry
/// `#![forbid(unsafe_code)]`: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`.
fn is_crate_root(rel: &Path) -> bool {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let n = parts.len();
    if n >= 2 && parts[n - 2] == "src" && matches!(parts[n - 1].as_str(), "lib.rs" | "main.rs") {
        return true;
    }
    n >= 3 && parts[n - 3] == "src" && parts[n - 2] == "bin"
}

/// Best-effort Rust module path for diagnostics: `crates/core/src/dtg.rs`
/// → `gossip_core::dtg`.  Every workspace crate is named `gossip-<dir>`,
/// so the mapping needs no Cargo.toml parsing.
fn module_path(rel: &Path) -> String {
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let stem = parts
        .last()
        .map(|p| p.trim_end_matches(".rs").to_string())
        .unwrap_or_default();
    if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        let mut path = format!("gossip_{}", parts[1]);
        for part in &parts[3..parts.len() - 1] {
            if part == "bin" {
                continue;
            }
            path.push_str("::");
            path.push_str(part);
        }
        if !matches!(stem.as_str(), "lib" | "main" | "mod") {
            path.push_str("::");
            path.push_str(&stem);
        }
        return path;
    }
    stem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_path_classification() {
        assert!(is_test_path(Path::new("tests/determinism.rs")));
        assert!(is_test_path(Path::new("examples/quickstart.rs")));
        assert!(is_test_path(Path::new("crates/bench/benches/dtg.rs")));
        assert!(is_test_path(Path::new("crates/graph/tests/props.rs")));
        assert!(!is_test_path(Path::new("crates/tests/src/lib.rs")));
        assert!(!is_test_path(Path::new("crates/core/src/dtg.rs")));
    }

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root(Path::new("crates/core/src/lib.rs")));
        assert!(is_crate_root(Path::new(
            "crates/bench/src/bin/experiments.rs"
        )));
        assert!(!is_crate_root(Path::new("crates/core/src/dtg.rs")));
        assert!(!is_crate_root(Path::new("tests/determinism.rs")));
    }

    #[test]
    fn module_paths() {
        assert_eq!(
            module_path(Path::new("crates/core/src/dtg.rs")),
            "gossip_core::dtg"
        );
        assert_eq!(
            module_path(Path::new("crates/core/src/lib.rs")),
            "gossip_core"
        );
        assert_eq!(
            module_path(Path::new("crates/graph/src/generators/random.rs")),
            "gossip_graph::generators::random"
        );
        assert_eq!(
            module_path(Path::new("crates/bench/src/bin/experiments.rs")),
            "gossip_bench::experiments"
        );
        assert_eq!(
            module_path(Path::new("tests/determinism.rs")),
            "determinism"
        );
    }

    #[test]
    fn test_mod_candidates_resolve_siblings() {
        let got = test_mod_candidates(Path::new("crates/core/src/lib.rs"), "spanner_old");
        assert!(got.contains(&PathBuf::from("crates/core/src/spanner_old.rs")));
    }

    #[test]
    fn cfg_test_file_module_is_exempt() {
        let lib = SourceFile {
            rel: "crates/demo/src/lib.rs".to_string(),
            content: "//! Demo.\n#![forbid(unsafe_code)]\n#[cfg(test)]\nmod helpers;\n".to_string(),
        };
        let helpers = SourceFile {
            rel: "crates/demo/src/helpers.rs".to_string(),
            content: "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n".to_string(),
        };
        let report = analyze_sources(&[lib.clone(), helpers.clone()]);
        assert!(
            report.clean(),
            "cfg(test) file module should be exempt: {:?}",
            report.findings
        );

        // Without the #[cfg(test)] gate the same module is linted.
        let lib_ungated = SourceFile {
            content: lib.content.replace("#[cfg(test)]\n", ""),
            ..lib
        };
        let report = analyze_sources(&[lib_ungated, helpers]);
        assert!(!report.clean(), "ungated module must be linted");
    }
}
