//! Findings and the two output renderings (human text, machine JSON).

use gossip_bench::json::Json;

/// One diagnostic produced by a rule (or by pragma hygiene checking).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule name (`unordered-iter`, ..., or `pragma` for pragma hygiene).
    pub rule: String,
    /// Rust module path of the file (`gossip_core::dtg`), best-effort.
    pub module: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Renders the `file:line: [rule] message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} (in {})",
            self.file, self.line, self.rule, self.message, self.module
        )
    }

    /// Serialises one finding as a JSON object with stable key order.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Int(i64::from(self.line))),
            ("rule", Json::Str(self.rule.clone())),
            ("module", Json::Str(self.module.clone())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// The full result of a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of well-formed pragmas that suppressed at least one finding.
    pub pragmas_used: usize,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The human-readable rendering printed to stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "gossip-lint: {} finding(s) in {} file(s) scanned ({} pragma(s) in use)\n",
            self.findings.len(),
            self.files_scanned,
            self.pragmas_used
        ));
        out
    }

    /// The `--json` rendering: a versioned object reusing the bench JSON
    /// writer, byte-identical for identical findings.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::Str("gossip-lint/v1".to_string())),
            ("files_scanned", Json::Int(self.files_scanned as i64)),
            ("pragmas_used", Json::Int(self.pragmas_used as i64)),
            ("clean", Json::Bool(self.clean())),
            (
                "findings",
                Json::Array(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ])
    }
}
