//! Findings and the two output renderings (human text, machine JSON).
//!
//! The JSON schema is `gossip-lint/v2`: findings carry a *stable id* —
//! an FNV-1a hash of `rule:file:enclosing-item:snippet` — instead of line
//! numbers, so the CI artifact diffs cleanly across pure line-shift
//! changes.  Line numbers stay in the human rendering, where a developer
//! actually navigates to them.

use std::collections::BTreeMap;

use gossip_bench::json::Json;

/// One diagnostic produced by a rule (or by pragma/contract hygiene).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (human output only; the JSON
    /// identity is the stable [`id`](Self::id)).
    pub line: u32,
    /// Rule name (`unordered-iter`, ..., or `pragma`/`contract` for
    /// suppression hygiene).
    pub rule: String,
    /// Rust module path of the file (`gossip_core::dtg`), best-effort.
    pub module: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// Qualified name of the enclosing `fn` item, when one exists.
    pub item: String,
    /// The token texts of the anchor line, joined — the line-number-free
    /// content component of the stable id.
    pub snippet: String,
    /// Optional human-only elaboration (e.g. per-site line numbers of an
    /// aggregated panic-path finding); never serialised to JSON.
    pub detail: String,
}

/// 64-bit FNV-1a over `\0`-separated parts.
fn fnv1a64(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            h ^= 0;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl Finding {
    /// Builds a finding with empty enrichment fields (`item`, `snippet`,
    /// `detail`); the workspace driver fills them before reporting.
    pub fn new(rule: &str, file: &str, line: u32, module: &str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            module: module.to_string(),
            message,
            item: String::new(),
            snippet: String::new(),
            detail: String::new(),
        }
    }

    /// The stable finding id: `fnv1a64(rule, file, item, snippet)` in hex.
    /// Independent of line numbers, so inserting code above a finding does
    /// not change its identity in the JSON artifact.
    pub fn id(&self) -> String {
        format!(
            "{:016x}",
            fnv1a64(&[&self.rule, &self.file, &self.item, &self.snippet])
        )
    }

    /// Renders the `file:line: [rule] message` diagnostic line(s).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {} (in {})",
            self.file, self.line, self.rule, self.message, self.module
        );
        if !self.detail.is_empty() {
            out.push_str("\n    ");
            out.push_str(&self.detail);
        }
        out
    }

    /// Serialises one finding as a JSON object with stable key order.
    /// `id` must be the (collision-disambiguated) stable id.
    fn to_json(&self, id: &str) -> Json {
        Json::object(vec![
            ("id", Json::Str(id.to_string())),
            ("file", Json::Str(self.file.clone())),
            ("rule", Json::Str(self.rule.clone())),
            ("item", Json::Str(self.item.clone())),
            ("module", Json::Str(self.module.clone())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// One suppression (pragma or contract) in the tree, for the
/// `--suppressions` inventory and the zero-dead-suppressions CI gate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppression {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// `pragma` or `contract`.
    pub kind: String,
    /// The allowlisted rule (pragmas) or contract kind (contracts).
    pub name: String,
    /// The mandatory reason (pragmas; empty for contracts).
    pub reason: String,
    /// `true` when the suppression is load-bearing: a pragma that
    /// suppressed at least one finding, or a contract attached to a fn.
    pub used: bool,
}

impl Suppression {
    /// Renders one inventory line.
    pub fn render(&self) -> String {
        let status = if self.used { "used" } else { "UNUSED" };
        let what = match self.kind.as_str() {
            "pragma" => format!("allow({})", self.name),
            _ => format!("contract({})", self.name),
        };
        let reason = if self.reason.is_empty() {
            String::new()
        } else {
            format!(" — {}", self.reason)
        };
        format!(
            "{}:{}: {} {} [{}]{}",
            self.file, self.line, self.kind, what, status, reason
        )
    }
}

/// The full result of a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of well-formed pragmas that suppressed at least one finding.
    pub pragmas_used: usize,
    /// Suppressed-finding counts per rule (pragma hits).
    pub suppressed_by_rule: BTreeMap<String, usize>,
    /// Every pragma and contract in the tree, with usage status.
    pub suppressions: Vec<Suppression>,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` when every suppression in the tree is load-bearing.
    pub fn suppressions_clean(&self) -> bool {
        self.suppressions.iter().all(|s| s.used)
    }

    /// Stable finding ids, disambiguated: a repeated hash (identical rule,
    /// file, item, and line content) gets a `-2`, `-3`, ... suffix in
    /// sorted finding order.
    fn ids(&self) -> Vec<String> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        self.findings
            .iter()
            .map(|f| {
                let id = f.id();
                let n = counts.entry(id.clone()).or_insert(0);
                *n += 1;
                if *n == 1 {
                    id
                } else {
                    format!("{id}-{n}")
                }
            })
            .collect()
    }

    /// The per-rule summary: `(rule, surviving findings, suppressed)` for
    /// every rule that has either, sorted by rule name.
    pub fn summary(&self) -> Vec<(String, usize, usize)> {
        let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for finding in &self.findings {
            per_rule.entry(&finding.rule).or_default().0 += 1;
        }
        for (rule, suppressed) in &self.suppressed_by_rule {
            per_rule.entry(rule).or_default().1 += suppressed;
        }
        per_rule
            .into_iter()
            .map(|(rule, (findings, suppressed))| (rule.to_string(), findings, suppressed))
            .collect()
    }

    /// The human-readable rendering printed to stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.render());
            out.push('\n');
        }
        for (rule, findings, suppressed) in self.summary() {
            out.push_str(&format!(
                "gossip-lint: rule {rule}: {findings} finding(s), {suppressed} suppressed\n"
            ));
        }
        out.push_str(&format!(
            "gossip-lint: {} finding(s) in {} file(s) scanned ({} pragma(s) in use)\n",
            self.findings.len(),
            self.files_scanned,
            self.pragmas_used
        ));
        out
    }

    /// The suppression inventory rendering (`--suppressions`).
    pub fn render_suppressions(&self) -> String {
        let mut out = String::new();
        for s in &self.suppressions {
            out.push_str(&s.render());
            out.push('\n');
        }
        let unused = self.suppressions.iter().filter(|s| !s.used).count();
        out.push_str(&format!(
            "gossip-lint: {} suppression(s) in the tree, {} unused\n",
            self.suppressions.len(),
            unused
        ));
        out
    }

    /// The `--json` rendering: the versioned `gossip-lint/v2` object,
    /// byte-identical for identical findings and line-shift-stable (no
    /// per-finding line numbers).
    pub fn to_json(&self) -> Json {
        let ids = self.ids();
        Json::object(vec![
            ("schema", Json::Str("gossip-lint/v2".to_string())),
            ("files_scanned", Json::Int(self.files_scanned as i64)),
            ("pragmas_used", Json::Int(self.pragmas_used as i64)),
            ("clean", Json::Bool(self.clean())),
            (
                "summary",
                Json::Array(
                    self.summary()
                        .into_iter()
                        .map(|(rule, findings, suppressed)| {
                            Json::object(vec![
                                ("rule", Json::Str(rule)),
                                ("findings", Json::Int(findings as i64)),
                                ("suppressed", Json::Int(suppressed as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "findings",
                Json::Array(
                    self.findings
                        .iter()
                        .zip(&ids)
                        .map(|(f, id)| f.to_json(id))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(line: u32, message: &str) -> Finding {
        Finding {
            file: "crates/demo/src/lib.rs".to_string(),
            line,
            rule: "wall-clock".to_string(),
            module: "gossip_demo".to_string(),
            message: message.to_string(),
            item: "gossip_demo::f".to_string(),
            snippet: "let t = Instant :: now ( ) ;".to_string(),
            detail: String::new(),
        }
    }

    #[test]
    fn ids_are_line_shift_stable_and_content_sensitive() {
        let a = finding(10, "m");
        let shifted = finding(99, "m");
        assert_eq!(a.id(), shifted.id());
        let mut other = finding(10, "m");
        other.snippet = "different".to_string();
        assert_ne!(a.id(), other.id());
    }

    #[test]
    fn duplicate_ids_are_disambiguated_in_json() {
        let report = Report {
            findings: vec![finding(10, "m"), finding(11, "m")],
            ..Report::default()
        };
        let ids = report.ids();
        assert_ne!(ids[0], ids[1]);
        assert!(ids[1].ends_with("-2"));
    }

    #[test]
    fn json_is_v2_without_finding_lines() {
        let report = Report {
            findings: vec![finding(10, "m")],
            files_scanned: 1,
            ..Report::default()
        };
        let json = report.to_json().to_pretty();
        assert!(json.contains("gossip-lint/v2"));
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"id\""));
        assert!(!json.contains("\"line\""));
        // The human rendering keeps file:line.
        assert!(report.render_text().contains("crates/demo/src/lib.rs:10:"));
    }
}
