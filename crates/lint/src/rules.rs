//! The six determinism rules, applied to one file's token stream.
//!
//! Every rule is a token-pattern matcher over the [`lexer`](crate::lexer)
//! output.  None of them do type inference — they are deliberately shallow
//! heuristics whose residual false positives are handled by the inline
//! pragma allowlist (`// gossip-lint: allow(<rule>): <reason>`), and whose
//! blind spots are documented on each rule function.  Test code (integration
//! tests, benches, examples, `#[cfg(test)]` items) is exempt from every rule
//! except [`forbid-unsafe`](check_crate_root), which inspects crate roots.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, TokKind, Token};
use crate::report::Finding;

/// The rule names a pragma may allowlist: the six per-file rules plus the
/// three workspace-level audit rules (`panic-path`, `idle-purity`,
/// `shared-state`) driven by [`workspace`](crate::workspace).
pub const RULES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "ambient-rng",
    "par-order",
    "debug-assert-side-effect",
    "forbid-unsafe",
    "panic-path",
    "idle-purity",
    "shared-state",
];

/// Iteration methods whose visit order on a hash container is unordered.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

/// Order-sensitive sinks when chained directly onto a parallel iterator.
const PAR_SINKS: &[&str] = &["reduce", "fold", "for_each", "sum", "product"];

/// Entry points into the parallel-iterator world.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
];

/// Methods that mutate their receiver (or draw from an RNG), which must not
/// appear inside a `debug_assert!` — the release build compiles the whole
/// macro away and silently diverges from the debug build.
const MUTATING_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "drain",
    "clear",
    "truncate",
    "extend",
    "append",
    "swap_remove",
    "retain",
    "push_run",
    "next_u32",
    "next_u64",
    "fill_bytes",
    "gen",
    "gen_range",
    "gen_bool",
    "sample",
    "shuffle",
    "choose",
];

/// Identifiers that reach ambient (non-seeded) randomness.
const AMBIENT_RNG: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Wall-clock types; any read of them makes an observable depend on when the
/// run happened.
const WALL_CLOCK: &[&str] = &["Instant", "SystemTime"];

/// Marks every token covered by a `#[cfg(test)]` / `#[test]` item, and
/// collects the names declared by `#[cfg(test)] mod <name>;` (whose *files*
/// are test code too — the walker resolves those).
pub fn test_regions(tokens: &[Token]) -> (Vec<bool>, Vec<String>) {
    let mut mask = vec![false; tokens.len()];
    let mut test_file_mods = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let attr_start = i;
            let mut is_test = false;
            let mut j = i;
            // A run of consecutive attributes shares one item.
            while j < tokens.len()
                && tokens[j].text == "#"
                && tokens.get(j + 1).is_some_and(|t| t.text == "[")
            {
                let (end, test) = scan_attribute(tokens, j);
                is_test |= test;
                j = end;
            }
            if is_test {
                let end = item_end(tokens, j);
                if let (Some(m), Some(name)) = (tokens.get(j), tokens.get(j + 1)) {
                    if m.text == "mod"
                        && name.kind == TokKind::Ident
                        && tokens.get(j + 2).is_some_and(|t| t.text == ";")
                    {
                        test_file_mods.push(name.text.clone());
                    }
                }
                for slot in mask
                    .iter_mut()
                    .take((end + 1).min(tokens.len()))
                    .skip(attr_start)
                {
                    *slot = true;
                }
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    (mask, test_file_mods)
}

/// Scans one `#[...]` attribute starting at the `#`; returns the index just
/// past the closing `]` and whether the attribute gates the item to tests
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`).
fn scan_attribute(tokens: &[Token], at: usize) -> (usize, bool) {
    let mut j = at + 2; // past `#[`
    let first = tokens.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut depth = 1i32;
    let mut saw_test_ident = false;
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            "test" if tokens[j].kind == TokKind::Ident => saw_test_ident = true,
            _ => {}
        }
        j += 1;
    }
    let is_test = first == "test" || (first == "cfg" && saw_test_ident);
    (j, is_test)
}

/// Finds the index of the token ending the item that starts at `from`: the
/// `}` closing its first top-level brace block, or a top-level `;`.
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                let mut braces = 1i32;
                j += 1;
                while j < tokens.len() && braces > 0 {
                    match tokens[j].text.as_str() {
                        "{" => braces += 1,
                        "}" => braces -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                return j.saturating_sub(1);
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Marks every token inside a `use ...;` item (imports of `HashMap` are not
/// declarations and are exempt from `unordered-iter`).
fn use_item_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "use" {
            let mut j = i;
            while j < tokens.len() && tokens[j].text != ";" {
                mask[j] = true;
                j += 1;
            }
            if j < tokens.len() {
                mask[j] = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Collects identifiers whose declared type (or constructor) is a hash
/// container: `name: HashMap<...>` bindings/fields/params whose type *head*
/// is `HashMap`/`HashSet` (so `Vec<HashMap<..>>` does not taint `name`), and
/// `let [mut] name = HashMap::new()`-style inferred bindings.
///
/// Blind spot: an identifier re-bound across files (or a hash container
/// returned by a helper and bound without annotation) is not tracked; the
/// declaration-site check still fires wherever the type is written.
fn hash_typed_idents(tokens: &[Token], test_mask: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        if test_mask[i] {
            continue;
        }
        // Pattern A: Ident ':' <type whose head is HashMap/HashSet>.
        if tokens[i].kind == TokKind::Ident && tokens.get(i + 1).is_some_and(|t| t.text == ":") {
            if let Some(head) = type_head(tokens, i + 2) {
                if head == "HashMap" || head == "HashSet" {
                    names.insert(tokens[i].text.clone());
                }
            }
        }
        // Pattern B: let [mut] Ident = [std::collections::]Hash{Map,Set}::...
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "let" {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            // Find the `=` of the binding (top level of the statement).
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    "=" if depth == 0 => {
                        if let Some(head) = path_head(tokens, k + 1) {
                            if head == "HashMap" || head == "HashSet" {
                                names.insert(name.text.clone());
                            }
                        }
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    names
}

/// Resolves the head identifier of a type starting at `at`: skips `&`,
/// `mut`, `dyn`, and lifetimes, then follows `a::b::C` to its last segment
/// *before* any generic arguments.
fn type_head(tokens: &[Token], mut at: usize) -> Option<String> {
    while let Some(t) = tokens.get(at) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "&") | (TokKind::Ident, "mut") | (TokKind::Ident, "dyn") => at += 1,
            (TokKind::Lifetime, _) => at += 1,
            _ => break,
        }
    }
    let mut head = tokens.get(at).filter(|t| t.kind == TokKind::Ident)?;
    // Follow path segments: `std :: collections :: HashMap`.
    while tokens.get(at + 1).is_some_and(|t| t.text == "::")
        && tokens.get(at + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        at += 2;
        head = &tokens[at];
    }
    Some(head.text.clone())
}

/// Like [`type_head`] but for an expression path: returns the *first*
/// user-meaningful segment (`HashMap` in `HashMap::new()` or
/// `std::collections::HashMap::with_capacity`).
fn path_head(tokens: &[Token], mut at: usize) -> Option<String> {
    // Skip a fully-qualified std prefix.
    if tokens.get(at).is_some_and(|t| t.text == "std")
        && tokens.get(at + 1).is_some_and(|t| t.text == "::")
        && tokens.get(at + 2).is_some_and(|t| t.text == "collections")
        && tokens.get(at + 3).is_some_and(|t| t.text == "::")
    {
        at += 4;
    }
    tokens
        .get(at)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Context for analysing one file's token stream.
pub struct FileInput<'a> {
    /// Workspace-relative path (used in diagnostics).
    pub path: &'a str,
    /// Rust module path for diagnostics (`gossip_core::dtg`).
    pub module: &'a str,
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// `true` when the whole file is test code (integration test, bench,
    /// example, or a `#[cfg(test)] mod foo;` file module).
    pub whole_file_test: bool,
    /// `true` when the file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`) and must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// One file's analysis result.
pub struct FileAnalysis {
    /// Surviving findings (including pragma-hygiene findings), sorted.
    pub findings: Vec<Finding>,
    /// Pragmas that suppressed at least one finding.
    pub pragmas_used: usize,
}

/// Runs every *per-file* rule on one file; returns the raw findings,
/// before pragma application.  The workspace driver appends the
/// interprocedural audit findings to this list and only then applies the
/// file's pragmas — a `panic-path` pragma must be able to suppress a
/// finding produced by the workspace-level call-graph walk.
pub fn file_findings(input: &FileInput<'_>) -> Vec<Finding> {
    let tokens = &input.lexed.tokens;
    let (mut test_mask, _) = test_regions(tokens);
    if input.whole_file_test {
        test_mask.iter_mut().for_each(|b| *b = true);
    }

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        raw.push(Finding::new(rule, input.path, line, input.module, message));
    };

    rule_unordered_iter(tokens, &test_mask, &mut push);
    rule_wall_clock(tokens, &test_mask, &mut push);
    rule_ambient_rng(tokens, &test_mask, &mut push);
    rule_par_order(tokens, &test_mask, &mut push);
    rule_debug_assert(tokens, &test_mask, &mut push);
    if input.crate_root {
        rule_forbid_unsafe(tokens, &mut push);
    }
    raw
}

/// Runs every per-file rule on one file and applies its pragmas; returns
/// the surviving findings (including pragma-hygiene findings).  Audit rules
/// do *not* run here — use the workspace driver for those.
pub fn analyze_file(input: &FileInput<'_>) -> FileAnalysis {
    let outcome = apply_pragmas(input, file_findings(input));
    FileAnalysis {
        findings: outcome.findings,
        pragmas_used: outcome.pragmas_used,
    }
}

/// The result of applying one file's pragmas to its findings.
pub struct PragmaOutcome {
    /// Surviving findings plus pragma-hygiene findings, sorted.
    pub findings: Vec<Finding>,
    /// Number of pragmas that suppressed at least one finding.
    pub pragmas_used: usize,
    /// Suppressed-finding counts per rule.
    pub suppressed_by_rule: BTreeMap<String, usize>,
    /// Per-pragma used flags, parallel to `input.lexed.pragmas`.
    pub pragma_used: Vec<bool>,
}

/// Suppresses findings covered by well-formed pragmas and reports pragma
/// hygiene problems (unknown rule, missing reason, unused pragma).
pub fn apply_pragmas(input: &FileInput<'_>, raw: Vec<Finding>) -> PragmaOutcome {
    let tokens = &input.lexed.tokens;
    let pragmas = &input.lexed.pragmas;
    let mut used = vec![false; pragmas.len()];
    let mut suppressed_by_rule: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::new();

    'findings: for finding in raw {
        for (pi, pragma) in pragmas.iter().enumerate() {
            if pragma.rule != finding.rule || pragma.reason.is_empty() {
                continue;
            }
            let hit = if pragma.rule == "forbid-unsafe" {
                // The missing-attribute finding has no meaningful line; any
                // forbid-unsafe pragma in the file covers it.
                true
            } else {
                pragma.target_line(tokens) == finding.line
            };
            if hit {
                used[pi] = true;
                *suppressed_by_rule.entry(finding.rule).or_default() += 1;
                continue 'findings;
            }
        }
        out.push(finding);
    }

    for (pi, pragma) in pragmas.iter().enumerate() {
        let mut problem = None;
        if pragma.rule.is_empty() || !RULES.contains(&pragma.rule.as_str()) {
            problem = Some(format!(
                "malformed pragma: unknown rule '{}' (expected one of: {})",
                pragma.rule,
                RULES.join(", ")
            ));
        } else if pragma.reason.is_empty() {
            problem = Some(format!(
                "pragma allow({}) is missing its mandatory reason (`// gossip-lint: allow({}): <why>`)",
                pragma.rule, pragma.rule
            ));
        } else if !used[pi] {
            problem = Some(format!(
                "unused pragma: allow({}) suppresses no finding on line {} — delete it or fix its placement",
                pragma.rule,
                pragma.target_line(tokens)
            ));
        }
        if let Some(message) = problem {
            out.push(Finding::new(
                "pragma",
                input.path,
                pragma.line,
                input.module,
                message,
            ));
        }
    }
    out.sort();
    PragmaOutcome {
        findings: out,
        pragmas_used: used.iter().filter(|&&u| u).count(),
        suppressed_by_rule,
        pragma_used: used,
    }
}

/// **unordered-iter** — `HashMap`/`HashSet` in non-test code.
///
/// Fires on (a) every *type-position* occurrence of the names (not followed
/// by `::`, not inside a `use` item): declaring an unordered container is
/// where the convention wants a written justification or a `BTreeMap`/
/// `BTreeSet`; and (b) every *iteration* of an identifier tracked as
/// hash-typed (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,
/// `for .. in &map`, ...), where the unordered visit order actually escapes.
fn rule_unordered_iter(
    tokens: &[Token],
    test_mask: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    let use_mask = use_item_mask(tokens);
    let tracked = hash_typed_idents(tokens, test_mask);
    for (i, t) in tokens.iter().enumerate() {
        if test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        // (a) declaration sites.
        if (t.text == "HashMap" || t.text == "HashSet")
            && !use_mask[i]
            && tokens.get(i + 1).is_none_or(|n| n.text != "::")
        {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                "unordered-iter",
                t.line,
                format!(
                    "{} declared in non-test code: iteration order is nondeterministic; use {} or justify why order can never reach an observable",
                    t.text, ordered
                ),
            );
        }
        // (b) iteration sites on tracked identifiers.
        if tracked.contains(&t.text) {
            if tokens.get(i + 1).is_some_and(|n| n.text == ".")
                && tokens
                    .get(i + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && tokens
                    .get(i + 3)
                    .is_some_and(|p| p.text == "(" || p.text == "::")
            {
                push(
                    "unordered-iter",
                    t.line,
                    format!(
                        "iterating hash container `{}` via `.{}` — visit order is nondeterministic",
                        t.text,
                        tokens[i + 2].text
                    ),
                );
            }
            // `for pat in [&[mut]] [self.]ident {`
            if tokens.get(i + 1).is_some_and(|n| n.text == "{") {
                let mut j = i;
                if j >= 2 && tokens[j - 1].text == "." && tokens[j - 2].text == "self" {
                    j -= 2;
                }
                while j >= 1 && (tokens[j - 1].text == "&" || tokens[j - 1].text == "mut") {
                    j -= 1;
                }
                if j >= 1 && tokens[j - 1].kind == TokKind::Ident && tokens[j - 1].text == "in" {
                    push(
                        "unordered-iter",
                        t.line,
                        format!(
                            "for-loop over hash container `{}` — visit order is nondeterministic",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

/// **wall-clock** — `Instant`/`SystemTime` in non-test code.
///
/// Reading the wall clock makes any derived value depend on when and where
/// the run happened; the only sanctioned use is the explicitly
/// non-deterministic bench timing artifact (allowlisted by pragma).
fn rule_wall_clock(
    tokens: &[Token],
    test_mask: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if !test_mask[i] && t.kind == TokKind::Ident && WALL_CLOCK.contains(&t.text.as_str()) {
            push(
                "wall-clock",
                t.line,
                format!(
                    "`{}` in non-test code: wall-clock reads are nondeterministic; derive observables from round counters instead",
                    t.text
                ),
            );
        }
    }
}

/// **ambient-rng** — `thread_rng`/`from_entropy`/`OsRng` in non-test code.
///
/// All randomness must flow from an explicitly seeded `SmallRng` so a run is
/// a pure function of its seed.
fn rule_ambient_rng(
    tokens: &[Token],
    test_mask: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if !test_mask[i] && t.kind == TokKind::Ident && AMBIENT_RNG.contains(&t.text.as_str()) {
            push(
                "ambient-rng",
                t.line,
                format!(
                    "`{}` reaches ambient entropy: seed a SmallRng explicitly (SmallRng::seed_from_u64) so runs are reproducible",
                    t.text
                ),
            );
        }
    }
}

/// **par-order** — a parallel iterator chained into an order-sensitive sink.
///
/// Flags `.reduce()`, `.fold()`, `.for_each()`, `.sum()`, `.product()`, and
/// `.collect::<HashMap/HashSet<..>>()` applied *directly* to the chain
/// (closure bodies nested inside chain arguments are not flagged).  With
/// real work-stealing rayon these sinks observe a nondeterministic element
/// order; deterministic alternatives are an indexed `collect::<Vec<_>>()`
/// followed by a sequential reduction.
fn rule_par_order(
    tokens: &[Token],
    test_mask: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    // Running paren depth for every token.
    let mut depth = 0i32;
    let mut depths = Vec::with_capacity(tokens.len());
    for t in tokens {
        if t.text == "(" {
            depths.push(depth);
            depth += 1;
        } else {
            if t.text == ")" {
                depth -= 1;
            }
            depths.push(depth);
        }
    }

    for i in 0..tokens.len() {
        if test_mask[i]
            || tokens[i].kind != TokKind::Ident
            || !PAR_SOURCES.contains(&tokens[i].text.as_str())
        {
            continue;
        }
        let chain_depth = depths[i];
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if depths[j] < chain_depth || (t.text == ";" && depths[j] <= chain_depth) {
                break;
            }
            if depths[j] == chain_depth && t.text == "." {
                if let Some(method) = tokens.get(j + 1).filter(|m| m.kind == TokKind::Ident) {
                    if PAR_SINKS.contains(&method.text.as_str()) {
                        push(
                            "par-order",
                            method.line,
                            format!(
                                "parallel iterator chained into `.{}`: element order is nondeterministic under work stealing; collect into a Vec (indexed) and reduce sequentially",
                                method.text
                            ),
                        );
                    } else if method.text == "collect"
                        && tokens.get(j + 2).is_some_and(|t| t.text == "::")
                        && tokens.get(j + 3).is_some_and(|t| t.text == "<")
                    {
                        if let Some(head) = type_head(tokens, j + 4) {
                            if head == "HashMap" || head == "HashSet" {
                                push(
                                    "par-order",
                                    method.line,
                                    format!(
                                        "parallel `.collect::<{head}<..>>()`: combine order is nondeterministic; collect into a Vec or an ordered map",
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }
}

/// **debug-assert-side-effect** — mutation inside `debug_assert!`.
///
/// `debug_assert!` compiles to nothing in release builds, so a mutating call
/// (or RNG draw) inside one silently diverges debug from release — the exact
/// bug class the `semantics`-identical engine-equivalence suites exist to
/// rule out.
fn rule_debug_assert(
    tokens: &[Token],
    test_mask: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    const COMPOUND_ASSIGN: &[&str] =
        &["+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
    for i in 0..tokens.len() {
        if test_mask[i]
            || tokens[i].kind != TokKind::Ident
            || !matches!(
                tokens[i].text.as_str(),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
            )
            || tokens.get(i + 1).is_none_or(|t| t.text != "!")
            || tokens.get(i + 2).is_none_or(|t| t.text != "(")
        {
            continue;
        }
        let line = tokens[i].line;
        let mut depth = 1i32;
        let mut j = i + 3;
        let mut saw_let = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            if depth <= 0 {
                break;
            }
            if t.kind == TokKind::Ident && t.text == "let" {
                saw_let = true;
            }
            if matches!(t.text.as_str(), "," | ";") {
                saw_let = false;
            }
            if COMPOUND_ASSIGN.contains(&t.text.as_str()) {
                push(
                    "debug-assert-side-effect",
                    line,
                    format!(
                        "`{}` inside debug_assert! mutates state that release builds never touch",
                        t.text
                    ),
                );
            }
            if t.text == "=" && !saw_let {
                push(
                    "debug-assert-side-effect",
                    line,
                    "assignment inside debug_assert! mutates state that release builds never touch"
                        .to_string(),
                );
            }
            if t.text == "."
                && tokens
                    .get(j + 1)
                    .is_some_and(|m| MUTATING_METHODS.contains(&m.text.as_str()))
                && tokens
                    .get(j + 2)
                    .is_some_and(|p| p.text == "(" || p.text == "::")
            {
                push(
                    "debug-assert-side-effect",
                    line,
                    format!(
                        "`.{}(..)` inside debug_assert! mutates state (or draws RNG) that release builds never touch",
                        tokens[j + 1].text
                    ),
                );
            }
            j += 1;
        }
    }
}

/// **forbid-unsafe** — every crate root must carry `#![forbid(unsafe_code)]`.
///
/// All workspace crates forbid unsafe today; this rule keeps future crates
/// (and forgotten binary roots) from silently opting back in.
fn rule_forbid_unsafe(tokens: &[Token], push: &mut impl FnMut(&'static str, u32, String)) {
    let pattern = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = tokens.windows(pattern.len()).any(|w| {
        w.iter()
            .zip(pattern.iter())
            .all(|(t, p)| t.text.as_str() == *p)
    });
    if !found {
        push(
            "forbid-unsafe",
            1,
            "crate root is missing `#![forbid(unsafe_code)]` — every workspace crate must forbid unsafe code".to_string(),
        );
    }
}

/// Convenience wrapper used by the ui-fixture suite and the workspace
/// driver: lex + analyze one source string.
pub fn analyze_source(
    path: &str,
    module: &str,
    content: &str,
    whole_file_test: bool,
    crate_root: bool,
) -> FileAnalysis {
    let lexed = crate::lexer::lex(content);
    let input = FileInput {
        path,
        module,
        lexed: &lexed,
        whole_file_test,
        crate_root,
    };
    analyze_file(&input)
}
