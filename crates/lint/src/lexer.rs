//! A comment- and string-stripping Rust lexer.
//!
//! The lint rules operate on token streams, never on raw text, so that
//! occurrences of `HashMap` inside a doc comment or a string literal can
//! never produce a finding.  The lexer is deliberately small: it recognises
//! identifiers, numeric/string/char literals, lifetimes, and punctuation
//! (multi-character operators are merged into single tokens), and it collects
//! `// gossip-lint: allow(<rule>): <reason>` pragmas from the comments it
//! strips.  It does not attempt to be a full Rust lexer — it only needs to be
//! faithful enough that the token patterns the rules match cannot be confused
//! by comments, strings, or operator adjacency.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `in`, ...).
    Ident,
    /// A punctuation token; multi-character operators (`::`, `+=`, `=>`, ...)
    /// are merged into a single token.
    Punct,
    /// A numeric literal.
    Num,
    /// A string, byte-string, or char literal (contents discarded).
    Lit,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (empty for [`TokKind::Lit`]).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Token kind.
    pub kind: TokKind,
}

/// An inline allowlist pragma: `// gossip-lint: allow(<rule>): <reason>`.
///
/// The reason is mandatory; a pragma without one is itself reported as a
/// finding (the allowlist must stay auditable).
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The free-text justification after the closing `):`.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// `true` if no code token precedes the pragma on its line (the pragma
    /// then applies to the next line that carries a token, rather than to
    /// its own line).
    pub own_line: bool,
}

impl Pragma {
    /// The 1-based line whose findings this pragma suppresses.
    pub fn target_line(&self, tokens: &[Token]) -> u32 {
        if !self.own_line {
            return self.line;
        }
        tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > self.line)
            .unwrap_or(self.line)
    }
}

/// A contract annotation: `// gossip-audit: contract(<kind>)`.
///
/// Contracts declare a property the interprocedural rules must *verify*
/// (currently only `pure`), as opposed to pragmas, which *suppress*.
#[derive(Debug, Clone)]
pub struct Contract {
    /// The kind inside `contract(...)` (empty when malformed).
    pub kind: String,
    /// 1-based line the contract comment starts on.
    pub line: u32,
    /// `true` if no code token precedes the contract on its line.
    pub own_line: bool,
}

impl Contract {
    /// The 1-based line of the item this contract annotates (the next line
    /// carrying a token for an own-line contract, its own line otherwise).
    pub fn target_line(&self, tokens: &[Token]) -> u32 {
        if !self.own_line {
            return self.line;
        }
        tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > self.line)
            .unwrap_or(self.line)
    }
}

/// The result of lexing one file: its token stream plus the pragmas and
/// contract annotations found in the stripped comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All pragmas in source order (well-formed or not; validation is the
    /// analyzer's job).
    pub pragmas: Vec<Pragma>,
    /// All contract annotations in source order (well-formed or not).
    pub contracts: Vec<Contract>,
}

/// Multi-character operators merged into single punct tokens, longest first.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Marker that introduces a pragma inside a `//` comment.
const PRAGMA_MARKER: &str = "gossip-lint:";

/// Marker that introduces a contract annotation inside a `//` comment.
const CONTRACT_MARKER: &str = "gossip-audit:";

/// Lexes `source`, stripping comments and literals and collecting pragmas
/// and contract annotations.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line number of the most recently emitted token, to classify pragmas as
    // trailing (code before them on the line) or own-line.
    let mut last_token_line: u32 = 0;

    // A shebang (`#!/usr/bin/env ...`) is only special on the very first
    // line, and only when it is not the start of an inner attribute `#![`.
    if bytes.starts_with(b"#!") && bytes.get(2) != Some(&b'[') {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let text = &source[start..end];
                if let Some(pragma) = parse_pragma(text, line, last_token_line == line) {
                    out.pragmas.push(pragma);
                }
                if let Some(contract) = parse_contract(text, line, last_token_line == line) {
                    out.contracts.push(contract);
                }
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, per Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    text: String::new(),
                    line,
                    kind: TokKind::Lit,
                });
                last_token_line = line;
            }
            // `r#type` is a raw *identifier*, not a raw string: exactly one
            // `#` followed by an identifier start (a raw string needs `"`).
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|&b| is_ident_start(b)) =>
            {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && is_ident_byte(bytes[end]) {
                    end += 1;
                }
                out.tokens.push(Token {
                    text: source[start..end].to_string(),
                    line,
                    kind: TokKind::Ident,
                });
                last_token_line = line;
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_literal(bytes, i, &mut line);
                out.tokens.push(Token {
                    text: String::new(),
                    line: tok_line,
                    kind: TokKind::Lit,
                });
                last_token_line = line;
            }
            b'\'' => {
                // Char literal or lifetime.
                if is_char_literal(bytes, i) {
                    i = skip_char_literal(bytes, i);
                    out.tokens.push(Token {
                        text: String::new(),
                        line,
                        kind: TokKind::Lit,
                    });
                } else {
                    // Lifetime: consume the quote plus the identifier.
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len() && is_ident_byte(bytes[end]) {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        text: source[start..end].to_string(),
                        line,
                        kind: TokKind::Lifetime,
                    });
                    i = end;
                }
                last_token_line = line;
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    text: source[start..i].to_string(),
                    line,
                    kind: TokKind::Ident,
                });
                last_token_line = line;
            }
            b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (is_ident_byte(bytes[i])) {
                    i += 1;
                }
                // A fractional part only when the dot is followed by a digit
                // (so `0..n` range syntax is not swallowed).
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    text: source[start..i].to_string(),
                    line,
                    kind: TokKind::Num,
                });
                last_token_line = line;
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                let text = match op {
                    Some(op) => op.to_string(),
                    None => (b as char).to_string(),
                };
                i += text.len();
                out.tokens.push(Token {
                    text,
                    line,
                    kind: TokKind::Punct,
                });
                last_token_line = line;
            }
        }
    }
    out
}

/// Parses a pragma out of one `//` comment body, if the comment *starts*
/// with the marker (after whitespace).  Anchoring at the start keeps doc
/// comments and prose that merely *mention* the pragma syntax (like this
/// crate's own documentation) from being parsed as pragmas — a doc comment
/// body starts with `!` or `/`, never with the marker.
///
/// Malformed pragmas (missing rule or reason) are still returned, with the
/// missing parts empty, so the analyzer can report them instead of silently
/// ignoring a typo that would otherwise disable a suppression.
fn parse_pragma(comment: &str, line: u32, trailing: bool) -> Option<Pragma> {
    let rest = comment
        .trim_start()
        .strip_prefix(PRAGMA_MARKER)?
        .trim_start();
    let (rule, reason) = match rest.strip_prefix("allow(") {
        Some(after) => match after.find(')') {
            Some(close) => {
                let rule = after[..close].trim().to_string();
                let tail = after[close + 1..].trim_start();
                let reason = tail.strip_prefix(':').map_or("", |r| r.trim()).to_string();
                (rule, reason)
            }
            None => (String::new(), String::new()),
        },
        None => (String::new(), String::new()),
    };
    Some(Pragma {
        rule,
        reason,
        line,
        own_line: !trailing,
    })
}

/// Parses a contract annotation out of one `//` comment body, if the
/// comment starts with the [`CONTRACT_MARKER`].  Malformed contracts
/// (anything other than `contract(<kind>)`) are returned with an empty
/// kind so the analyzer reports them instead of silently dropping a typo
/// that would otherwise disable a verification.
fn parse_contract(comment: &str, line: u32, trailing: bool) -> Option<Contract> {
    let rest = comment
        .trim_start()
        .strip_prefix(CONTRACT_MARKER)?
        .trim_start();
    let kind = rest
        .strip_prefix("contract(")
        .and_then(|after| after.find(')').map(|close| after[..close].trim()))
        .unwrap_or("")
        .to_string();
    Some(Contract {
        kind,
        line,
        own_line: !trailing,
    })
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Skips a `"..."` string starting at `i` (which must point at the quote).
fn skip_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                // The escaped byte may itself be a newline (a line
                // continuation) — it still advances the line counter.
                if bytes.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Does `r`/`b` at `i` introduce a raw string, byte string, or byte char?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'\'') | Some(b'r')),
        _ => false,
    }
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'`.
fn skip_raw_or_byte_literal(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    if bytes[i] == b'b' {
        match bytes.get(j) {
            Some(b'\'') => return skip_char_literal(bytes, j),
            Some(b'"') => return skip_string(bytes, j, line),
            Some(b'r') => j += 1,
            _ => return j,
        }
    }
    // Raw string: count `#`s, then scan for `"` followed by that many `#`s.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#') {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// Is the `'` at `i` a char literal (vs a lifetime)?
///
/// A char literal is the quote, exactly one character (one to four UTF-8
/// bytes, or an escape), and a closing quote.  Anything else — including
/// `'a` in `<'a, 'b>`, where a closing quote merely appears *nearby* — is a
/// lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&first) => {
            // One UTF-8 character: its byte length is determined by the
            // leading byte.
            let len = match first {
                0x00..=0x7f => 1,
                0xc0..=0xdf => 2,
                0xe0..=0xef => 3,
                _ => 4,
            };
            bytes.get(i + 1 + len) == Some(&b'\'')
        }
        None => false,
    }
}

/// Skips a `'...'` char literal starting at the opening quote.
fn skip_char_literal(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" text"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn operators_are_merged() {
        let toks = lex("a += b == c => d :: e");
        let puncts: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["+=", "==", "=>", "::"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lit)
                .count(),
            1
        );
    }

    #[test]
    fn number_lexing_does_not_swallow_ranges() {
        let toks = lex("for i in 0..m {}");
        let texts: Vec<&str> = toks.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&".."));
        assert!(texts.contains(&"0"));
        let toks = lex("let x = 0.5;");
        assert!(toks.tokens.iter().any(|t| t.text == "0.5"));
    }

    #[test]
    fn pragmas_are_collected_with_position() {
        let src = "let a = 1;\n// gossip-lint: allow(wall-clock): timing artifact only\nlet t = Instant::now();\nlet b = 2; // gossip-lint: allow(unordered-iter): keyed access\n";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 2);
        let p0 = &lexed.pragmas[0];
        assert_eq!(p0.rule, "wall-clock");
        assert_eq!(p0.reason, "timing artifact only");
        assert!(p0.own_line);
        assert_eq!(p0.target_line(&lexed.tokens), 3);
        let p1 = &lexed.pragmas[1];
        assert_eq!(p1.rule, "unordered-iter");
        assert!(!p1.own_line);
        assert_eq!(p1.target_line(&lexed.tokens), 4);
    }

    #[test]
    fn malformed_pragmas_are_preserved_for_reporting() {
        let lexed = lex("// gossip-lint: allow(unordered-iter)\nlet x = 1;\n");
        assert_eq!(lexed.pragmas.len(), 1);
        assert!(lexed.pragmas[0].reason.is_empty());
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let toks = lex("let r#type = r#match + 1;");
        let ids = idents("let r#type = r#match + 1;");
        assert_eq!(ids, vec!["let", "type", "match"]);
        assert!(toks.tokens.iter().all(|t| t.kind != TokKind::Lit));
        // A raw *string* still lexes as a literal.
        let toks = lex(r##"let s = r#"text"#;"##);
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lit)
                .count(),
            1
        );
    }

    #[test]
    fn byte_strings_and_byte_chars_are_literals() {
        let toks = lex(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(
            toks.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lit)
                .count(),
            3
        );
        // `b` and `r` as ordinary identifiers are unaffected.
        assert_eq!(idents("let b = r + 1;"), vec!["let", "b", "r"]);
    }

    #[test]
    fn shebang_is_skipped_but_inner_attribute_is_not() {
        let lexed = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(lexed.tokens[0].text, "fn");
        assert_eq!(lexed.tokens[0].line, 2);
        let lexed = lex("#![forbid(unsafe_code)]\n");
        assert_eq!(lexed.tokens[0].text, "#");
    }

    #[test]
    fn adjacent_lifetimes_are_not_a_char_literal() {
        let toks = lex("fn f<'a, 'b>(x: &'a u32, y: &'b u32) {}");
        let lifetimes: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "b", "a", "b"]);
        assert!(toks.tokens.iter().all(|t| t.kind != TokKind::Lit));
    }

    #[test]
    fn contracts_are_collected_with_position() {
        let src =
            "// gossip-audit: contract(pure)\nfn activity() {}\n// gossip-audit: contract(???)\n";
        let lexed = lex(src);
        assert_eq!(lexed.contracts.len(), 2);
        assert_eq!(lexed.contracts[0].kind, "pure");
        assert!(lexed.contracts[0].own_line);
        assert_eq!(lexed.contracts[0].target_line(&lexed.tokens), 2);
        assert_eq!(lexed.contracts[1].kind, "???");
        // Doc prose mentioning the syntax is not a contract.
        let lexed = lex("/// the `// gossip-audit: contract(pure)` syntax\nfn f() {}\n");
        assert!(lexed.contracts.is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nlet x = HashMap::new();\n";
        let lexed = lex(src);
        let map = lexed.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(map.line, 4);
    }

    #[test]
    fn line_numbers_survive_string_continuations() {
        // A `\` immediately before the newline escapes it (a line
        // continuation) — the newline must still count toward line numbers.
        let src = "let s = \"a \\\n  b \\\n  c\";\nlet x = HashMap::new();\n";
        let lexed = lex(src);
        let map = lexed.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(map.line, 4);
    }
}
