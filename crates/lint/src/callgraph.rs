//! A conservative, name-based call graph over the workspace item index.
//!
//! Resolution is deliberately approximate — there is no type inference — but
//! tuned to stay quiet on this workspace:
//!
//! * `Type::name(...)` qualified calls resolve *precisely* against the
//!   `(impl type, fn name)` index (`Self::` resolves to the caller's own
//!   impl type).
//! * `.name(...)` method calls resolve by bare name against every workspace
//!   fn that takes `self`.
//! * `name(...)` free calls resolve by bare name against every workspace fn
//!   that does not take `self`.
//!
//! Bare-name matches are additionally scoped by the crate dependency graph:
//! a call site in `crates/sim` can only resolve to items in crates `sim`
//! actually depends on, so a same-named helper in `bench` never pollutes a
//! closure rooted in the engine.  The dependency table is hardcoded from
//! the workspace `Cargo.toml`s; unknown crates (fixtures, injected test
//! sources) conservatively see everything.
//!
//! Known blind spot, by design: trait-object/generic dispatch *upward* in
//! the crate DAG (e.g. `Simulation::run` calling an `EllDtg` method through
//! `P: Protocol`) is invisible, because `core` is not a dependency of
//! `sim`.  The audit closes it by listing the higher-crate protocol entry
//! points as explicit roots (see `AuditConfig::default`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{Item, KEYWORDS};
use crate::lexer::{TokKind, Token};

/// One syntactic call site inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `Type::name(...)` (with `Self::` already resolved to the impl type).
    Qualified(String, String),
    /// `.name(...)`.
    Method(String),
    /// `name(...)` or `module::name(...)` (lower-case path head).
    Free(String),
}

/// The resolved call graph: `edges[i]` lists the item indices `items[i]`
/// may call, sorted and deduplicated.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency: caller item index → sorted callee item indices.
    pub edges: Vec<Vec<usize>>,
}

/// Extracts the call references in `tokens[range]` (a fn body), resolving
/// `Self::` against `self_ty`.
pub fn call_refs(tokens: &[Token], range: (usize, usize), self_ty: Option<&str>) -> Vec<CallRef> {
    let (start, end) = range;
    let mut out = Vec::new();
    for i in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || tokens.get(i + 1).is_none_or(|n| n.text != "(")
        {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        match prev {
            // A declaration, not a call.
            Some("fn") => {}
            Some(".") => out.push(CallRef::Method(t.text.clone())),
            Some("::") => {
                let seg = i.checked_sub(2).map(|p| &tokens[p]);
                match seg {
                    Some(s) if s.kind == TokKind::Ident => {
                        let owner = if s.text == "Self" {
                            self_ty.map(str::to_string)
                        } else if s.text.chars().next().is_some_and(char::is_uppercase) {
                            Some(s.text.clone())
                        } else {
                            // `module::free_fn(...)`: resolve by bare name.
                            None
                        };
                        match owner {
                            Some(ty) => out.push(CallRef::Qualified(ty, t.text.clone())),
                            None => out.push(CallRef::Free(t.text.clone())),
                        }
                    }
                    // `<T as Trait>::name(...)` and friends: give up on the
                    // owner, match by bare name.
                    _ => out.push(CallRef::Free(t.text.clone())),
                }
            }
            _ => out.push(CallRef::Free(t.text.clone())),
        }
    }
    out
}

/// The workspace crate a file belongs to (`crates/sim/src/engine.rs` →
/// `sim`); empty for paths outside `crates/`.
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("")
    } else {
        ""
    }
}

/// Direct dependencies (including self) a crate's bare-name calls may
/// resolve into, mirroring the workspace `Cargo.toml`s.  Unknown crates —
/// fixtures, injected sources, top-level test dirs — see everything.
fn can_call(from: &str, to: &str) -> bool {
    let deps: &[&str] = match from {
        "graph" => &["graph"],
        "sim" => &["sim", "graph"],
        "core" => &["core", "sim", "graph"],
        "conductance" => &["conductance", "graph"],
        "lowerbound" => &["lowerbound", "core", "sim", "graph"],
        "bench" => &["bench", "lowerbound", "conductance", "core", "sim", "graph"],
        "lint" => &["lint", "bench"],
        "tests" => return true,
        _ => return true,
    };
    deps.contains(&to)
}

/// Builds the call graph over `items`; `tokens_of(file)` returns the token
/// stream of file index `file`, and `crate_name[file]` its crate.
pub fn build<'a>(
    items: &[Item],
    tokens_of: impl Fn(usize) -> &'a [Token],
    crate_name: &[String],
) -> CallGraph {
    // Indexes for resolution.  Test items never resolve as callees: a
    // non-test fn cannot call into a `#[cfg(test)]` item.
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, item) in items.iter().enumerate() {
        if item.is_test {
            continue;
        }
        if let Some(ty) = &item.self_ty {
            typed.entry((ty, &item.name)).or_default().push(idx);
        }
        if item.has_self {
            methods.entry(&item.name).or_default().push(idx);
        } else {
            free.entry(&item.name).or_default().push(idx);
        }
    }

    let mut edges = Vec::with_capacity(items.len());
    for item in items {
        let Some(body) = item.body else {
            edges.push(Vec::new());
            continue;
        };
        let from_crate = crate_name[item.file].as_str();
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        for call in call_refs(tokens_of(item.file), body, item.self_ty.as_deref()) {
            let candidates: Option<&Vec<usize>> = match &call {
                CallRef::Qualified(ty, name) => typed.get(&(ty.as_str(), name.as_str())),
                CallRef::Method(name) => methods.get(name.as_str()),
                CallRef::Free(name) => free.get(name.as_str()),
            };
            let Some(candidates) = candidates else {
                continue;
            };
            for &callee in candidates {
                let to_crate = crate_name[items[callee].file].as_str();
                if can_call(from_crate, to_crate) {
                    callees.insert(callee);
                }
            }
        }
        edges.push(callees.into_iter().collect());
    }
    CallGraph { edges }
}

/// One reachability record: which root reached the item, and through which
/// parent (for shortest-path diagnostics).
#[derive(Debug, Clone, Copy)]
pub struct Reached {
    /// Item index of the root that first reached this item.
    pub root: usize,
    /// Item index of the BFS parent (`None` for roots themselves).
    pub parent: Option<usize>,
}

/// Multi-source BFS over the call graph; deterministic because roots are
/// processed in order and adjacency lists are sorted.
pub fn reach(graph: &CallGraph, roots: &[usize]) -> BTreeMap<usize, Reached> {
    let mut seen: BTreeMap<usize, Reached> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(r) {
            e.insert(Reached {
                root: r,
                parent: None,
            });
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        let root = seen[&u].root;
        for &v in &graph.edges[u] {
            if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(v) {
                e.insert(Reached {
                    root,
                    parent: Some(u),
                });
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Renders the BFS path from an item back to its root as
/// `root -> ... -> item` using the items' qualified names.
pub fn path_to_root(items: &[Item], seen: &BTreeMap<usize, Reached>, mut at: usize) -> String {
    let mut chain = vec![items[at].qual.clone()];
    while let Some(parent) = seen.get(&at).and_then(|r| r.parent) {
        chain.push(items[parent].qual.clone());
        at = parent;
    }
    chain.reverse();
    chain.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<Item>, CallGraph, Vec<crate::lexer::Lexed>) {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let mut items = Vec::new();
        for (fi, lx) in lexed.iter().enumerate() {
            let (mask, _) = test_regions(&lx.tokens);
            let (file_items, _) = crate::items::index_file(fi, "demo", lx, &mask);
            items.extend(file_items);
        }
        let crates: Vec<String> = srcs.iter().map(|(p, _)| crate_of(p).to_string()).collect();
        let graph = build(&items, |f| &lexed[f].tokens, &crates);
        (items, graph, lexed)
    }

    #[test]
    fn qualified_method_and_free_calls_resolve() {
        let (items, graph, _) = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub struct S;
             impl S {
                 pub fn run(&self) { helper(); self.step(); S::direct(); }
                 fn step(&self) {}
                 fn direct() {}
             }
             fn helper() {}",
        )]);
        let run = items.iter().position(|i| i.name == "run").unwrap();
        let callees: Vec<&str> = graph.edges[run]
            .iter()
            .map(|&c| items[c].name.as_str())
            .collect();
        assert_eq!(callees, vec!["step", "direct", "helper"]);
    }

    #[test]
    fn crate_scoping_blocks_unrelated_same_names() {
        let (items, graph, _) = graph_of(&[
            (
                "crates/sim/src/a.rs",
                "pub struct S; impl S { pub fn go(&self) { self.helper(); } pub fn helper(&self) {} }",
            ),
            (
                "crates/bench/src/b.rs",
                "pub struct B; impl B { pub fn helper(&self) {} }",
            ),
        ]);
        let go = items.iter().position(|i| i.name == "go").unwrap();
        let callees: Vec<&str> = graph.edges[go]
            .iter()
            .map(|&c| items[c].qual.as_str())
            .collect();
        // Only the sim-crate helper; the bench one is not a sim dependency.
        assert_eq!(callees, vec!["demo::S::helper"]);
    }

    #[test]
    fn bfs_reaches_transitively_with_paths() {
        let (items, graph, _) = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub fn root() { mid(); }
             fn mid() { leaf(); }
             fn leaf() {}
             fn unrelated() {}",
        )]);
        let root = items.iter().position(|i| i.name == "root").unwrap();
        let leaf = items.iter().position(|i| i.name == "leaf").unwrap();
        let unrelated = items.iter().position(|i| i.name == "unrelated").unwrap();
        let seen = reach(&graph, &[root]);
        assert!(seen.contains_key(&leaf));
        assert!(!seen.contains_key(&unrelated));
        assert_eq!(
            path_to_root(&items, &seen, leaf),
            "demo::root -> demo::mid -> demo::leaf"
        );
    }

    #[test]
    fn test_items_are_not_callees() {
        let (items, graph, _) = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub fn root() { helper(); }\n#[cfg(test)]\nfn helper() {}",
        )]);
        let root = items.iter().position(|i| i.name == "root").unwrap();
        assert!(graph.edges[root].is_empty());
    }
}
