//! Effect extraction for the interprocedural rules: per-fn panic sites,
//! purity violations, and per-file shared-state sites.
//!
//! Everything here is a token-pattern matcher with the same philosophy as
//! the per-file rules: shallow, deterministic, conservative, with the
//! residual false positives handled by the pragma allowlist.

use std::collections::BTreeSet;

use crate::items::{matching_open, Item, KEYWORDS};
use crate::lexer::{TokKind, Token};

/// Panic-site categories, in severity/reporting order.
pub const PANIC_KINDS: &[&str] = &["unwrap/expect", "panic-macro", "indexing", "division"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that mutate their receiver or draw from an RNG through it.
const MUTATING_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "drain",
    "clear",
    "truncate",
    "extend",
    "append",
    "swap_remove",
    "retain",
    "resize",
    "sort",
    "sort_by",
    "sort_unstable",
    "set",
    "push_run",
    "next_u32",
    "next_u64",
    "fill_bytes",
    "gen",
    "gen_range",
    "gen_bool",
    "sample",
    "shuffle",
    "choose",
];

/// Interior-mutability type names: state that can change behind a `&self`.
const INTERIOR_MUT: &[&str] = &[
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Identifiers that reach ambient (non-seeded) randomness — kept in sync
/// with the per-file `ambient-rng` rule.
const AMBIENT_RNG: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// One potential panic site inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Category (one of [`PANIC_KINDS`]).
    pub kind: &'static str,
    /// 1-based source line.
    pub line: u32,
}

/// Collects the potential panic sites in `tokens[range]` (a fn body).
///
/// Flagged: `.unwrap()`/`.expect(..)`, `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!`, expression-position `[..]` indexing and slicing, and
/// `/`/`%` (plus their compound-assign forms) whose divisor is not a
/// nonzero numeric literal (`x / 64` is exempt, `x % ring_len` is not).
pub fn panic_sites(tokens: &[Token], range: (usize, usize)) -> Vec<PanicSite> {
    let (start, end) = range;
    let mut out = Vec::new();
    for i in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ".")
                if tokens
                    .get(i + 1)
                    .is_some_and(|m| m.text == "unwrap" || m.text == "expect")
                    && tokens.get(i + 2).is_some_and(|p| p.text == "(") =>
            {
                out.push(PanicSite {
                    kind: "unwrap/expect",
                    line: tokens[i + 1].line,
                });
            }
            (TokKind::Ident, name)
                if PANIC_MACROS.contains(&name)
                    && tokens.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                out.push(PanicSite {
                    kind: "panic-macro",
                    line: t.line,
                });
            }
            (TokKind::Punct, "[") if is_indexing(tokens, i) => {
                out.push(PanicSite {
                    kind: "indexing",
                    line: t.line,
                });
            }
            (TokKind::Punct, "/" | "%" | "/=" | "%=") => {
                let divisor_is_literal = tokens.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Num && n.text != "0" && !n.text.starts_with("0.")
                });
                if !divisor_is_literal {
                    out.push(PanicSite {
                        kind: "division",
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Is the `[` at `i` expression-position indexing (vs an attribute, a macro
/// delimiter, an array literal/type, or a slice pattern)?
fn is_indexing(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return false;
    };
    match (prev.kind, prev.text.as_str()) {
        (TokKind::Ident, text) => !KEYWORDS.contains(&text),
        (TokKind::Punct, ")" | "]") => true,
        _ => false,
    }
}

/// One purity violation inside a fn.
#[derive(Debug, Clone)]
pub struct PuritySite {
    /// What was violated, for the diagnostic.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// Collects the purity violations of one fn: signature facts (`&mut self`,
/// `&mut` params), non-local writes, mutating method calls on non-local
/// receivers, interior mutability, and ambient RNG.
///
/// Mutation of *locals* (`let mut` bindings in the same body) is allowed: a
/// pure decision path may use local scratch state.  Writes through derefs,
/// to `self`, or to anything not provably local are violations.
pub fn purity_sites(item: &Item, tokens: &[Token]) -> Vec<PuritySite> {
    const COMPOUND_ASSIGN: &[&str] =
        &["+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
    let mut out = Vec::new();
    if item.takes_mut_self {
        out.push(PuritySite {
            what: "takes `&mut self`".to_string(),
            line: item.line,
        });
    }
    if item.has_mut_param {
        out.push(PuritySite {
            what: "takes a `&mut` parameter".to_string(),
            line: item.line,
        });
    }
    let Some((start, end)) = item.body else {
        return out;
    };

    // Interior-mutability types are flagged wherever they appear in the
    // declaration, signature included (`&Cell<u32>` params leak mutability
    // into a "read-only" closure).
    for i in item.fn_idx..start {
        if let Some(t) = tokens.get(i) {
            if t.kind == TokKind::Ident
                && (INTERIOR_MUT.contains(&t.text.as_str())
                    || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len()))
            {
                out.push(PuritySite {
                    what: format!("uses interior-mutability type `{}`", t.text),
                    line: t.line,
                });
            }
        }
    }

    // Local bindings may be freely mutated: `let [mut] name`, plus any
    // `mut name` binding pattern (closure params, `for mut x in ..`) —
    // `&mut name` is a reference type, not a binding, and is excluded.
    let mut locals: BTreeSet<&str> = BTreeSet::new();
    for i in start..=end {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "let" {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            if let Some(name) = tokens.get(j).filter(|t| t.kind == TokKind::Ident) {
                locals.insert(name.text.as_str());
            }
        } else if t.text == "mut" && i.checked_sub(1).is_none_or(|p| tokens[p].text != "&") {
            if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                locals.insert(name.text.as_str());
            }
        }
    }

    for i in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, _) if t.text == "=" || COMPOUND_ASSIGN.contains(&t.text.as_str()) => {
                if let Some(what) = assignment_violation(tokens, i, &locals) {
                    out.push(PuritySite { what, line: t.line });
                }
            }
            (TokKind::Punct, ".")
                if tokens
                    .get(i + 1)
                    .is_some_and(|m| MUTATING_METHODS.contains(&m.text.as_str()))
                    && tokens.get(i + 2).is_some_and(|p| p.text == "(") =>
            {
                match place_head(tokens, i.saturating_sub(1), start) {
                    Some(head) if head != "self" && locals.contains(head) => {}
                    head => out.push(PuritySite {
                        what: format!(
                            "calls mutating method `.{}(..)` on {}",
                            tokens[i + 1].text,
                            head.map_or("a non-local receiver".to_string(), |h| format!("`{h}`")),
                        ),
                        line: tokens[i + 1].line,
                    }),
                }
            }
            (TokKind::Ident, name)
                if INTERIOR_MUT.contains(&name)
                    || (name.starts_with("Atomic") && name.len() > "Atomic".len()) =>
            {
                out.push(PuritySite {
                    what: format!("uses interior-mutability type `{name}`"),
                    line: t.line,
                });
            }
            (TokKind::Ident, name) if AMBIENT_RNG.contains(&name) => {
                out.push(PuritySite {
                    what: format!("reaches ambient randomness via `{name}`"),
                    line: t.line,
                });
            }
            _ => {}
        }
    }
    out
}

/// Classifies the assignment at token `i`: `None` when it is a `let`
/// binding or a write to a local, otherwise a description of the violation.
fn assignment_violation(tokens: &[Token], i: usize, locals: &BTreeSet<&str>) -> Option<String> {
    let head_idx = place_head_idx(tokens, i.checked_sub(1)?, 0)?;
    let head = tokens[head_idx].text.as_str();
    let before = head_idx.checked_sub(1).map(|p| tokens[p].text.as_str());
    // `let x = ..`, `let mut x = ..`, `if let Some(x) = ..`: bindings.
    if matches!(before, Some("let" | "mut")) {
        return None;
    }
    // `*place = ..` writes through a reference — never provably local.
    if matches!(before, Some("*")) {
        return Some(format!("writes through `*{head}`"));
    }
    if head == "self" {
        return Some("writes to `self` state".to_string());
    }
    if locals.contains(head) {
        return None;
    }
    Some(format!("writes to non-local `{head}`"))
}

/// The text of the leftmost token of the place expression ending just
/// before `from + 1` (walking back over `.field`, `[..]`, `(..)`, and `::`
/// chains); `None` when the expression shape is unrecognised.
fn place_head(tokens: &[Token], from: usize, floor: usize) -> Option<&str> {
    place_head_idx(tokens, from, floor).map(|i| tokens[i].text.as_str())
}

fn place_head_idx(tokens: &[Token], mut j: usize, floor: usize) -> Option<usize> {
    loop {
        let t = tokens.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")" | "]") => {
                let open = matching_open(tokens, j)?;
                if open <= floor {
                    return None;
                }
                j = open.checked_sub(1)?;
            }
            (TokKind::Ident, _) | (TokKind::Num, _) => {
                // Continue left over a `.`/`::` chain; otherwise this is
                // the head.
                let Some(prev) = j.checked_sub(1) else {
                    return Some(j);
                };
                if j <= floor {
                    return Some(j);
                }
                match tokens[prev].text.as_str() {
                    "." | "::" => {
                        j = prev.checked_sub(1)?;
                    }
                    _ => return Some(j),
                }
            }
            _ => return None,
        }
    }
}

/// One shared-state site in a file.
#[derive(Debug, Clone)]
pub struct SharedStateSite {
    /// What was found, for the diagnostic.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// Memory-ordering variants of `std::sync::atomic::Ordering` (so that
/// `cmp::Ordering::Less` never fires).
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Collects shared-state sites: `Mutex`/`RwLock`/`AtomicXxx`/`UnsafeCell`
/// identifiers, `Ordering::<memory-ordering>` uses, and `static mut` items,
/// in non-test code.
pub fn shared_state_sites(tokens: &[Token], test_mask: &[bool]) -> Vec<SharedStateSite> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "Mutex" | "RwLock" | "UnsafeCell") => out.push(SharedStateSite {
                what: format!("`{}`", t.text),
                line: t.line,
            }),
            (TokKind::Ident, name) if name.starts_with("Atomic") && name.len() > "Atomic".len() => {
                out.push(SharedStateSite {
                    what: format!("`{name}`"),
                    line: t.line,
                });
            }
            (TokKind::Ident, "Ordering")
                if tokens.get(i + 1).is_some_and(|n| n.text == "::")
                    && tokens
                        .get(i + 2)
                        .is_some_and(|v| MEMORY_ORDERINGS.contains(&v.text.as_str())) =>
            {
                out.push(SharedStateSite {
                    what: format!("`Ordering::{}`", tokens[i + 2].text),
                    line: t.line,
                });
            }
            (TokKind::Ident, "static") if tokens.get(i + 1).is_some_and(|n| n.text == "mut") => {
                out.push(SharedStateSite {
                    what: "`static mut`".to_string(),
                    line: t.line,
                });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn body_item(src: &str) -> (Vec<Token>, Item) {
        let lexed = lex(src);
        let (mask, _) = test_regions(&lexed.tokens);
        let (items, _) = crate::items::index_file(0, "demo", &lexed, &mask);
        (lexed.tokens, items.into_iter().next().unwrap())
    }

    #[test]
    fn panic_sites_cover_the_categories() {
        let (tokens, item) = body_item(
            "fn f(xs: &[u64], i: usize, n: usize) -> u64 {
                 let a = xs[i];
                 let b = xs.first().unwrap();
                 if i > n { panic!(\"boom\") }
                 let c = i % n;
                 let d = i / 64;
                 a + b + (c as u64) + (d as u64)
             }",
        );
        let sites = panic_sites(&tokens, item.body.unwrap());
        let kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec!["indexing", "unwrap/expect", "panic-macro", "division"]
        );
    }

    #[test]
    fn literal_divisors_and_type_brackets_are_exempt() {
        let (tokens, item) = body_item(
            "fn f(i: usize) -> usize {
                 let w: [u64; 4] = [0; 4];
                 let v = vec![1, 2];
                 let half = i / 2 + i % 64;
                 half + w.len() + v.len()
             }",
        );
        let sites = panic_sites(&tokens, item.body.unwrap());
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn purity_allows_local_scratch_but_flags_self_writes() {
        let (tokens, item) = body_item(
            "fn f(&self) -> u64 {
                 let mut acc = 0;
                 acc += 1;
                 let mut q = Vec::new();
                 q.push(acc);
                 acc
             }",
        );
        assert!(purity_sites(&item, &tokens).is_empty());

        let (tokens, item) = body_item("fn f(&mut self) { self.count += 1; }");
        let sites = purity_sites(&item, &tokens);
        assert!(sites.iter().any(|s| s.what.contains("&mut self")));
        assert!(sites.iter().any(|s| s.what.contains("writes to `self`")));
    }

    #[test]
    fn purity_flags_interior_mutability_and_rng() {
        let (tokens, item) = body_item("fn f(&self, c: &std::cell::Cell<u32>) -> u32 { c.get() }");
        let sites = purity_sites(&item, &tokens);
        assert!(sites.iter().any(|s| s.what.contains("Cell")));

        let (tokens, item) = body_item("fn f(&self) -> u32 { thread_rng().gen_range(0..9) }");
        let sites = purity_sites(&item, &tokens);
        assert!(sites.iter().any(|s| s.what.contains("thread_rng")));
        assert!(sites.iter().any(|s| s.what.contains("gen_range")));
    }

    #[test]
    fn shared_state_catches_sync_primitives() {
        let lexed = lex("use std::sync::atomic::{AtomicU64, Ordering};
             static COUNTER: AtomicU64 = AtomicU64::new(0);
             pub fn bump() -> u64 { COUNTER.fetch_add(1, Ordering::Relaxed) }
             pub fn cmp(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }");
        let (mask, _) = test_regions(&lexed.tokens);
        let sites = shared_state_sites(&lexed.tokens, &mask);
        assert!(
            sites
                .iter()
                .filter(|s| s.what.contains("AtomicU64"))
                .count()
                >= 2
        );
        assert!(sites.iter().any(|s| s.what.contains("Ordering::Relaxed")));
        // `cmp::Ordering` alone does not fire.
        assert_eq!(
            sites
                .iter()
                .filter(|s| s.what.contains("Ordering::"))
                .count(),
            1
        );
    }
}
