//! The `gossip-lint` binary: lints the workspace, prints diagnostics, and
//! exits non-zero when any finding survives the pragma allowlist.
//!
//! ```text
//! gossip-lint [--root <dir>] [--json] [--out <file>] [--suppressions]
//! ```
//!
//! `--suppressions` prints the pragma/contract inventory instead of the
//! findings and fails when any suppression is unused or dangling — the CI
//! gate that keeps every allowlist entry load-bearing.
//!
//! Exit codes: `0` clean, `1` findings (or unused suppressions), `2` usage
//! or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: gossip-lint [--root <dir>] [--json] [--out <file>] [--suppressions]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut suppressions = false;
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--suppressions" => suppressions = true,
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return usage("--out needs a file path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let report = match gossip_lint::workspace::run(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("gossip-lint: error walking {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if suppressions {
        print!("{}", report.render_suppressions());
        return if report.suppressions_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let rendered = if json {
        let mut s = report.to_json().to_pretty();
        s.push('\n');
        s
    } else {
        report.render_text()
    };
    match &out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("gossip-lint: error writing {}: {err}", path.display());
                return ExitCode::from(2);
            }
            // Keep the human summary on stdout even when JSON goes to a file.
            if json {
                print!("{}", report.render_text());
            }
        }
        None => print!("{rendered}"),
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("gossip-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
