//! # gossip-lint
//!
//! A hand-rolled static-analysis pass that machine-checks the determinism
//! conventions every reproducibility claim in this repo rests on:
//! byte-identical sweep reports across thread counts, `semantics`-identical
//! engine equivalence, and the committed bench baseline.
//!
//! No `syn`, no network: a comment/string-stripping Rust lexer
//! ([`lexer`]) feeds token-stream pattern rules ([`rules`]) over a
//! deterministic workspace walk ([`workspace`]), with `file:line`
//! diagnostics and a `--json` mode (schema `gossip-lint/v2`, line-free
//! stable finding ids) reusing `gossip-bench`'s JSON writer ([`report`]).
//! On top of the per-file rules, **gossip-audit** builds a workspace item
//! index ([`items`]), a conservative name-based call graph ([`callgraph`]),
//! and effect extractors ([`effects`]) to check two interprocedural
//! contracts plus a crate-level ban.
//!
//! ## Per-file rules
//!
//! | rule | fires on |
//! |------|----------|
//! | `unordered-iter` | `HashMap`/`HashSet` declaration or iteration in non-test code |
//! | `wall-clock` | `Instant`/`SystemTime` in non-test code |
//! | `ambient-rng` | `thread_rng`/`from_entropy`/`OsRng` — all RNG must be seeded |
//! | `par-order` | parallel iterators chained into order-sensitive sinks |
//! | `debug-assert-side-effect` | mutation inside `debug_assert!` |
//! | `forbid-unsafe` | crate roots missing `#![forbid(unsafe_code)]` |
//!
//! ## Audit rules (workspace-level)
//!
//! | rule | fires on |
//! |------|----------|
//! | `panic-path` | a potential panic site (`unwrap`, `panic!`, indexing, `/`/`%`) in any fn reachable from the merge/delivery roots |
//! | `idle-purity` | an unannotated `fn activity`, or a `contract(pure)` fn that (transitively) mutates non-local state, uses interior mutability, or draws ambient RNG |
//! | `shared-state` | `Mutex`/`RwLock`/`Atomic*`/`static mut`/memory `Ordering` in the audited engine crates |
//!
//! ## Pragmas and contracts
//!
//! A finding is suppressed by an inline pragma **with a mandatory reason**:
//!
//! ```text
//! // gossip-lint: allow(unordered-iter): keyed access only, never iterated
//! ```
//!
//! Purity obligations are declared with a contract annotation on the fn:
//!
//! ```text
//! // gossip-audit: contract(pure)
//! fn activity(&self, view: &NodeView<'_>) -> Activity { ... }
//! ```
//!
//! A trailing pragma targets its own line; a pragma on its own line targets
//! the next line of code (for `panic-path`/`idle-purity`, the anchor is the
//! `fn` line, so the pragma sits directly above the declaration).
//! Malformed pragmas, pragmas that suppress nothing, and dangling or
//! unknown contracts are themselves findings, so every suppression in the
//! tree stays load-bearing — `gossip-lint --suppressions` prints the
//! inventory and fails CI on any unused entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod effects;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Finding, Report, Suppression};
pub use rules::{analyze_source, FileAnalysis};
pub use workspace::{
    analyze_sources, analyze_sources_with, collect_sources, AuditConfig, SourceFile,
};
