//! # gossip-lint
//!
//! A hand-rolled static-analysis pass that machine-checks the determinism
//! conventions every reproducibility claim in this repo rests on:
//! byte-identical sweep reports across thread counts, `semantics`-identical
//! engine equivalence, and the committed bench baseline.
//!
//! No `syn`, no network: a comment/string-stripping Rust lexer
//! ([`lexer`]) feeds token-stream pattern rules ([`rules`]) over a
//! deterministic workspace walk ([`workspace`]), with `file:line`
//! diagnostics and a `--json` mode reusing `gossip-bench`'s JSON writer
//! ([`report`]).
//!
//! ## Rules
//!
//! | rule | fires on |
//! |------|----------|
//! | `unordered-iter` | `HashMap`/`HashSet` declaration or iteration in non-test code |
//! | `wall-clock` | `Instant`/`SystemTime` in non-test code |
//! | `ambient-rng` | `thread_rng`/`from_entropy`/`OsRng` — all RNG must be seeded |
//! | `par-order` | parallel iterators chained into order-sensitive sinks |
//! | `debug-assert-side-effect` | mutation inside `debug_assert!` |
//! | `forbid-unsafe` | crate roots missing `#![forbid(unsafe_code)]` |
//!
//! ## Pragmas
//!
//! A finding is suppressed by an inline pragma **with a mandatory reason**:
//!
//! ```text
//! // gossip-lint: allow(unordered-iter): keyed access only, never iterated
//! ```
//!
//! A trailing pragma targets its own line; a pragma on its own line targets
//! the next line of code.  Malformed pragmas (unknown rule, missing reason)
//! and pragmas that suppress nothing are themselves findings, so every
//! pragma in the tree stays load-bearing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Finding, Report};
pub use rules::{analyze_source, FileAnalysis};
pub use workspace::{analyze_sources, collect_sources, SourceFile};
