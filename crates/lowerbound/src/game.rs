//! The guessing game `Guessing(2m, P)` (Section 3.1 of the paper).

use std::collections::BTreeSet;

use rand::Rng;

use crate::predicates::TargetPredicate;

/// A pair `(a, b)` with `a` indexing the left set `A` and `b` the right set `B`
/// (both in `0..m`).
pub type Pair = (usize, usize);

/// State of one game of `Guessing(2m, P)`.
///
/// The oracle's target set is hidden from Alice; she interacts with the game
/// only through [`submit`](GuessingGame::submit), which reveals the hits of a
/// round and applies the removal rule of Equation 3.
#[derive(Debug, Clone)]
pub struct GuessingGame {
    m: usize,
    target: BTreeSet<Pair>,
    initial_target_size: usize,
    rounds: u64,
    guesses: u64,
}

impl GuessingGame {
    /// Creates a game on sets of size `m` with the target drawn by `predicate`.
    pub fn new<R: Rng + ?Sized>(m: usize, predicate: TargetPredicate, rng: &mut R) -> Self {
        let target = predicate.sample(m, rng);
        GuessingGame {
            m,
            initial_target_size: target.len(),
            target,
            rounds: 0,
            guesses: 0,
        }
    }

    /// Creates a game with an explicit target set (used by the reduction,
    /// where the target is fixed by the constructed network).
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range.
    pub fn with_target(m: usize, target: BTreeSet<Pair>) -> Self {
        for &(a, b) in &target {
            assert!(
                a < m && b < m,
                "target pair ({a}, {b}) out of range for m = {m}"
            );
        }
        GuessingGame {
            m,
            initial_target_size: target.len(),
            target,
            rounds: 0,
            guesses: 0,
        }
    }

    /// Size `m` of each side of the bipartite ground set.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `true` once the target set is empty (Alice has won).
    pub fn is_solved(&self) -> bool {
        self.target.is_empty()
    }

    /// Number of rounds played so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total number of guesses submitted so far.
    pub fn guesses(&self) -> u64 {
        self.guesses
    }

    /// Size of the target set the oracle initially drew.
    pub fn initial_target_size(&self) -> usize {
        self.initial_target_size
    }

    /// Number of target pairs still alive.
    pub fn remaining_target_size(&self) -> usize {
        self.target.len()
    }

    /// Submits one round of guesses (at most `2m` of them, per the game's
    /// definition) and returns the pairs that hit the current target set.
    ///
    /// After revealing the hits, every target pair whose `B`-component matches
    /// a hit is removed (Equation 3 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if more than `2m` guesses are submitted in one round or if any
    /// guess is out of range.
    pub fn submit(&mut self, round_guesses: &[Pair]) -> Vec<Pair> {
        assert!(
            round_guesses.len() <= 2 * self.m,
            "at most 2m = {} guesses may be submitted per round",
            2 * self.m
        );
        for &(a, b) in round_guesses {
            assert!(
                a < self.m && b < self.m,
                "guess ({a}, {b}) out of range for m = {}",
                self.m
            );
        }
        self.rounds += 1;
        self.guesses += round_guesses.len() as u64;

        let hits: Vec<Pair> = round_guesses
            .iter()
            .copied()
            .filter(|p| self.target.contains(p))
            .collect();
        if !hits.is_empty() {
            let hit_b: BTreeSet<usize> = hits.iter().map(|&(_, b)| b).collect();
            self.target.retain(|&(_, b)| !hit_b.contains(&b));
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn explicit_target_and_basic_flow() {
        let target: BTreeSet<Pair> = [(0, 1), (2, 1), (3, 4)].into_iter().collect();
        let mut game = GuessingGame::with_target(8, target);
        assert_eq!(game.initial_target_size(), 3);
        assert!(!game.is_solved());

        // A miss reveals nothing and removes nothing.
        let hits = game.submit(&[(5, 5)]);
        assert!(hits.is_empty());
        assert_eq!(game.remaining_target_size(), 3);

        // Hitting (0,1) also removes (2,1): same B-component.
        let hits = game.submit(&[(0, 1)]);
        assert_eq!(hits, vec![(0, 1)]);
        assert_eq!(game.remaining_target_size(), 1);

        let hits = game.submit(&[(3, 4)]);
        assert_eq!(hits, vec![(3, 4)]);
        assert!(game.is_solved());
        assert_eq!(game.rounds(), 3);
        assert_eq!(game.guesses(), 3);
    }

    #[test]
    fn removal_rule_only_applies_to_hit_b_components() {
        let target: BTreeSet<Pair> = [(0, 0), (1, 1)].into_iter().collect();
        let mut game = GuessingGame::with_target(4, target);
        game.submit(&[(0, 0)]);
        assert_eq!(game.remaining_target_size(), 1);
        assert!(!game.is_solved());
    }

    #[test]
    fn singleton_predicate_gives_one_pair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let game = GuessingGame::new(16, TargetPredicate::Singleton, &mut rng);
        assert_eq!(game.initial_target_size(), 1);
    }

    #[test]
    fn random_predicate_size_concentrates_around_p_m_squared() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = 40;
        let p = 0.25;
        let game = GuessingGame::new(m, TargetPredicate::Random { p }, &mut rng);
        let expected = (m * m) as f64 * p;
        let got = game.initial_target_size() as f64;
        assert!(
            got > expected * 0.6 && got < expected * 1.4,
            "target size {got} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at most 2m")]
    fn too_many_guesses_rejected() {
        let mut game = GuessingGame::with_target(2, BTreeSet::new());
        let guesses: Vec<Pair> = (0..5).map(|i| (i % 2, i % 2)).collect();
        game.submit(&guesses);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_guess_rejected() {
        let mut game = GuessingGame::with_target(2, BTreeSet::new());
        game.submit(&[(0, 7)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_rejected() {
        let _ = GuessingGame::with_target(2, [(0, 9)].into_iter().collect());
    }
}
