//! Alice strategies for the guessing game and a driver that plays them.

use std::collections::BTreeSet;

use rand::Rng;

use crate::game::{GuessingGame, Pair};

/// A strategy for Alice: produce up to `2m` guesses each round and observe the
/// oracle's answers.
pub trait AliceStrategy {
    /// Human-readable strategy name.
    fn name(&self) -> &'static str;

    /// Produces the guesses for the next round (at most `2m` of them).
    fn next_guesses<R: Rng + ?Sized>(&mut self, m: usize, round: u64, rng: &mut R) -> Vec<Pair>;

    /// Observes the oracle's answer for the round: which of the submitted
    /// guesses were hits.
    fn observe(&mut self, guessed: &[Pair], hits: &[Pair]) {
        let _ = (guessed, hits);
    }
}

/// The "random guessing" strategy of Lemma 8(b): for every `a ∈ A` pick a
/// uniformly random `b`, and for every `b ∈ B` pick a uniformly random `a`.
/// This is exactly how push–pull activates cross edges in the gadget networks,
/// and it pays an extra `log m` factor over the optimal strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomGuessing;

impl AliceStrategy for RandomGuessing {
    fn name(&self) -> &'static str {
        "random-guessing"
    }

    fn next_guesses<R: Rng + ?Sized>(&mut self, m: usize, _round: u64, rng: &mut R) -> Vec<Pair> {
        let mut guesses = Vec::with_capacity(2 * m);
        for a in 0..m {
            guesses.push((a, rng.gen_range(0..m)));
        }
        for b in 0..m {
            guesses.push((rng.gen_range(0..m), b));
        }
        guesses
    }
}

/// The informed greedy strategy analysed for general protocols in Lemma 8(a):
/// Alice remembers which `B`-elements she has already hit and which pairs she
/// has already tried, and only spends guesses on fresh pairs that could still
/// discover a new `B`-element.  Its expected round count is `Θ(1/p)` on
/// `Random_p` targets — a `log m` factor better than random guessing.
#[derive(Debug, Clone, Default)]
pub struct FreshGreedy {
    covered_b: BTreeSet<usize>,
    tried: BTreeSet<Pair>,
}

impl AliceStrategy for FreshGreedy {
    fn name(&self) -> &'static str {
        "fresh-greedy"
    }

    fn next_guesses<R: Rng + ?Sized>(&mut self, m: usize, _round: u64, rng: &mut R) -> Vec<Pair> {
        let budget = 2 * m;
        let mut guesses = Vec::with_capacity(budget);
        // Spread guesses over uncovered columns, picking random untried rows.
        let uncovered: Vec<usize> = (0..m).filter(|b| !self.covered_b.contains(b)).collect();
        if uncovered.is_empty() {
            return guesses;
        }
        let mut column = 0usize;
        let mut attempts = 0usize;
        while guesses.len() < budget && attempts < budget * 4 {
            attempts += 1;
            let b = uncovered[column % uncovered.len()];
            column += 1;
            let a = rng.gen_range(0..m);
            let pair = (a, b);
            if self.tried.insert(pair) {
                guesses.push(pair);
            }
        }
        guesses
    }

    fn observe(&mut self, _guessed: &[Pair], hits: &[Pair]) {
        for &(_, b) in hits {
            self.covered_b.insert(b);
        }
    }
}

/// A deterministic baseline: round `r` guesses every pair in two full columns,
/// so the game is always solved within `⌈m/2⌉` rounds regardless of the target.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnSweep;

impl AliceStrategy for ColumnSweep {
    fn name(&self) -> &'static str {
        "column-sweep"
    }

    fn next_guesses<R: Rng + ?Sized>(&mut self, m: usize, round: u64, _rng: &mut R) -> Vec<Pair> {
        let first = (2 * round as usize) % m.max(1);
        let second = (2 * round as usize + 1) % m.max(1);
        let mut guesses = Vec::with_capacity(2 * m);
        for a in 0..m {
            guesses.push((a, first));
            if second != first {
                guesses.push((a, second));
            }
        }
        guesses
    }
}

/// Result of playing one game to completion (or to the round cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameOutcome {
    /// `true` if the target set was emptied within the round cap.
    pub solved: bool,
    /// Rounds played.
    pub rounds: u64,
    /// Total guesses submitted.
    pub guesses: u64,
    /// Size of the initially drawn target set.
    pub initial_target_size: usize,
}

/// Plays `game` with `strategy` until it is solved or `max_rounds` have passed.
pub fn play<S: AliceStrategy, R: Rng + ?Sized>(
    mut game: GuessingGame,
    strategy: &mut S,
    max_rounds: u64,
    rng: &mut R,
) -> GameOutcome {
    let m = game.m();
    let initial = game.initial_target_size();
    while !game.is_solved() && game.rounds() < max_rounds {
        let guesses = strategy.next_guesses(m, game.rounds(), rng);
        let hits = game.submit(&guesses);
        strategy.observe(&guesses, &hits);
    }
    GameOutcome {
        solved: game.is_solved(),
        rounds: game.rounds(),
        guesses: game.guesses(),
        initial_target_size: initial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::TargetPredicate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn avg_rounds<S: AliceStrategy + Default>(
        m: usize,
        predicate: TargetPredicate,
        trials: u64,
        seed: u64,
    ) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut total = 0u64;
        for _ in 0..trials {
            let game = GuessingGame::new(m, predicate, &mut rng);
            let mut strategy = S::default();
            let out = play(game, &mut strategy, 1_000_000, &mut rng);
            assert!(out.solved);
            total += out.rounds;
        }
        total as f64 / trials as f64
    }

    #[test]
    fn all_strategies_eventually_solve_singleton_games() {
        let mut rng = SmallRng::seed_from_u64(10);
        for m in [4usize, 16, 32] {
            let game = GuessingGame::new(m, TargetPredicate::Singleton, &mut rng);
            let out = play(game, &mut RandomGuessing, 1_000_000, &mut rng);
            assert!(out.solved);
            let game = GuessingGame::new(m, TargetPredicate::Singleton, &mut rng);
            let out = play(game, &mut FreshGreedy::default(), 1_000_000, &mut rng);
            assert!(out.solved);
            let game = GuessingGame::new(m, TargetPredicate::Singleton, &mut rng);
            let out = play(game, &mut ColumnSweep, 1_000_000, &mut rng);
            assert!(out.solved);
        }
    }

    #[test]
    fn column_sweep_solves_within_half_m_rounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let game = GuessingGame::new(20, TargetPredicate::Random { p: 0.3 }, &mut rng);
        let out = play(game, &mut ColumnSweep, 1_000, &mut rng);
        assert!(out.solved);
        assert!(out.rounds <= 10);
    }

    #[test]
    fn singleton_games_need_rounds_linear_in_m() {
        // Lemma 7: Ω(m) rounds.  With 2m guesses per round against m² hidden
        // pairs, the average number of rounds should grow linearly in m.
        let small = avg_rounds::<RandomGuessing>(8, TargetPredicate::Singleton, 40, 21);
        let large = avg_rounds::<RandomGuessing>(32, TargetPredicate::Singleton, 40, 22);
        assert!(
            large > 2.0 * small,
            "rounds should grow ~linearly with m: m=8 -> {small:.1}, m=32 -> {large:.1}"
        );
    }

    #[test]
    fn random_guessing_needs_more_rounds_than_fresh_greedy() {
        // Lemma 8: general protocols pay Θ(1/p); random guessing pays Θ(log m / p).
        let p = 0.05;
        let greedy = avg_rounds::<FreshGreedy>(48, TargetPredicate::Random { p }, 15, 31);
        let random = avg_rounds::<RandomGuessing>(48, TargetPredicate::Random { p }, 15, 32);
        assert!(
            random > 1.5 * greedy,
            "random guessing ({random:.1}) should pay a log-factor over greedy ({greedy:.1})"
        );
    }

    #[test]
    fn rounds_scale_inversely_with_p_for_greedy() {
        let dense = avg_rounds::<FreshGreedy>(32, TargetPredicate::Random { p: 0.4 }, 15, 41);
        let sparse = avg_rounds::<FreshGreedy>(32, TargetPredicate::Random { p: 0.05 }, 15, 42);
        assert!(
            sparse > 2.0 * dense,
            "sparser targets (p=0.05 -> {sparse:.1}) should need more rounds than dense (p=0.4 -> {dense:.1})"
        );
    }

    #[test]
    fn outcome_reports_guess_counts() {
        let mut rng = SmallRng::seed_from_u64(51);
        let game = GuessingGame::new(8, TargetPredicate::Singleton, &mut rng);
        let out = play(game, &mut ColumnSweep, 100, &mut rng);
        assert!(out.solved);
        assert!(out.guesses >= out.rounds);
        assert_eq!(out.initial_target_size, 1);
    }
}
