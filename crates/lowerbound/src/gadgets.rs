//! The guessing-game gadgets and worst-case networks of Section 3
//! (Figures 1 and 2 of the paper).

use std::collections::BTreeSet;

use gossip_graph::{Graph, GraphBuilder, GraphError, Latency, NodeId};
use rand::Rng;

use crate::game::Pair;
use crate::predicates::TargetPredicate;

/// A constructed gadget network together with the bookkeeping the reduction needs.
#[derive(Debug, Clone)]
pub struct GadgetNetwork {
    /// The constructed graph.
    pub graph: Graph,
    /// Size `m` of each side of the embedded bipartite gadget.
    pub m: usize,
    /// Node ids of the left side `L` (index `i` ↔ game element `a_i`).
    pub left: Vec<NodeId>,
    /// Node ids of the right side `R` (index `j` ↔ game element `b_j`).
    pub right: Vec<NodeId>,
    /// The hidden target set: the cross pairs whose edge is *fast* (latency `lo`).
    pub target: BTreeSet<Pair>,
    /// Latency of fast cross edges.
    pub lo: Latency,
    /// Latency of slow cross edges.
    pub hi: Latency,
}

impl GadgetNetwork {
    /// Returns `true` if the cross edge `(left i, right j)` is fast.
    pub fn is_fast(&self, i: usize, j: usize) -> bool {
        self.target.contains(&(i, j))
    }

    /// Maps a pair of node ids to a game pair `(i, j)` if they form a cross edge.
    pub fn cross_pair(&self, u: NodeId, v: NodeId) -> Option<Pair> {
        let li = self.left.iter().position(|&x| x == u);
        let rj = self.right.iter().position(|&x| x == v);
        if let (Some(i), Some(j)) = (li, rj) {
            return Some((i, j));
        }
        let li = self.left.iter().position(|&x| x == v);
        let rj = self.right.iter().position(|&x| x == u);
        if let (Some(i), Some(j)) = (li, rj) {
            return Some((i, j));
        }
        None
    }
}

/// Builds the gadget `G(2m, lo, hi, P)` of Figure 1(a): a clique on the left
/// side `L` (latency 1), a complete bipartite graph between `L` and `R`, and
/// cross-edge latencies `lo` for target pairs and `hi` otherwise.
/// With `symmetric = true` this is `Gsym(2m, lo, hi, P)` of Figure 1(b), which
/// additionally puts a clique on `R`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `m < 2`, if `lo >= hi`, or if
/// `lo == 0`.
pub fn gadget<R: Rng + ?Sized>(
    m: usize,
    lo: Latency,
    hi: Latency,
    predicate: TargetPredicate,
    symmetric: bool,
    rng: &mut R,
) -> Result<GadgetNetwork, GraphError> {
    if m < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "gadget needs m >= 2".into(),
        });
    }
    if lo == 0 || lo >= hi {
        return Err(GraphError::InvalidParameters {
            reason: format!("gadget needs 0 < lo < hi, got lo = {lo}, hi = {hi}"),
        });
    }
    let target = predicate.sample(m, rng);
    build_gadget(m, lo, hi, target, symmetric)
}

/// Builds a gadget with an explicitly chosen target set.
///
/// # Errors
///
/// Same conditions as [`gadget`]; additionally rejects out-of-range target pairs.
pub fn gadget_with_target(
    m: usize,
    lo: Latency,
    hi: Latency,
    target: BTreeSet<Pair>,
    symmetric: bool,
) -> Result<GadgetNetwork, GraphError> {
    if m < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "gadget needs m >= 2".into(),
        });
    }
    if lo == 0 || lo >= hi {
        return Err(GraphError::InvalidParameters {
            reason: format!("gadget needs 0 < lo < hi, got lo = {lo}, hi = {hi}"),
        });
    }
    if target.iter().any(|&(a, b)| a >= m || b >= m) {
        return Err(GraphError::InvalidParameters {
            reason: "target pair out of range for the gadget size".into(),
        });
    }
    build_gadget(m, lo, hi, target, symmetric)
}

fn build_gadget(
    m: usize,
    lo: Latency,
    hi: Latency,
    target: BTreeSet<Pair>,
    symmetric: bool,
) -> Result<GadgetNetwork, GraphError> {
    let mut b = GraphBuilder::new(2 * m);
    // Clique on L (nodes 0..m), latency 1.
    for i in 0..m {
        for j in (i + 1)..m {
            b.add_edge(i, j, 1)?;
        }
    }
    // Optional clique on R (nodes m..2m).
    if symmetric {
        for i in 0..m {
            for j in (i + 1)..m {
                b.add_edge(m + i, m + j, 1)?;
            }
        }
    }
    // Complete bipartite cross edges with target-dependent latencies.
    for i in 0..m {
        for j in 0..m {
            let latency = if target.contains(&(i, j)) { lo } else { hi };
            b.add_edge(i, m + j, latency)?;
        }
    }
    let graph = b.build_connected()?;
    Ok(GadgetNetwork {
        graph,
        m,
        left: (0..m).map(NodeId::new).collect(),
        right: (m..2 * m).map(NodeId::new).collect(),
        target,
        lo,
        hi,
    })
}

/// The Theorem 9 network: `Gsym(2Δ, 1, Δ, singleton)` combined with a
/// constant-degree expander on the remaining `n − 2Δ` nodes, one of which is
/// connected to every left-side gadget node.  All non-gadget edges have
/// latency 1, so the network has weighted diameter `O(log n)` and maximum
/// degree `Θ(Δ)`, yet local broadcast needs `Ω(Δ)` rounds.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 2·delta + 4` or `delta < 2`.
pub fn theorem9_network<R: Rng + ?Sized>(
    n: usize,
    delta: usize,
    rng: &mut R,
) -> Result<GadgetNetwork, GraphError> {
    if delta < 2 || n < 2 * delta + 4 {
        return Err(GraphError::InvalidParameters {
            reason: format!("theorem 9 network needs delta >= 2 and n >= 2*delta + 4, got n = {n}, delta = {delta}"),
        });
    }
    let hi = delta as Latency;
    let gadget = gadget(delta, 1, hi.max(2), TargetPredicate::Singleton, true, rng)?;

    // Append the expander nodes.
    let expander_nodes = n - 2 * delta;
    let expander_degree = 4.min(expander_nodes - 1).max(1);
    let expander = if expander_nodes >= 6 && expander_degree >= 2 {
        gossip_graph::generators::random_regular(expander_nodes, expander_degree, 1, rng)?
    } else {
        gossip_graph::generators::clique(expander_nodes, 1)?
    };

    let mut b = GraphBuilder::new(2 * delta + expander_nodes);
    for rec in gadget.graph.edges() {
        b.add_edge(rec.u.index(), rec.v.index(), rec.latency)?;
    }
    for rec in expander.edges() {
        b.add_edge(2 * delta + rec.u.index(), 2 * delta + rec.v.index(), 1)?;
    }
    // Expander node 0 is connected to every left-side gadget node.
    for i in 0..delta {
        b.add_edge(2 * delta, i, 1)?;
    }
    let graph = b.build_connected()?;
    Ok(GadgetNetwork {
        graph,
        m: delta,
        left: gadget.left,
        right: gadget.right,
        target: gadget.target,
        lo: 1,
        hi: hi.max(2),
    })
}

/// The Theorem 10 network: `G(2n, ℓ, n², Random_φ)` — a bipartite gadget on
/// `2n` nodes where every cross edge is fast (latency `ℓ`) independently with
/// probability `φ` and otherwise very slow (latency `n²`).  W.h.p. it has
/// weighted diameter `O(ℓ)` and critical weighted conductance `Θ(φ)`, yet
/// local broadcast needs `Ω(1/φ + ℓ)` rounds (and `Ω(log n/φ + ℓ)` for push–pull).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 2`, `phi` is outside
/// `(0, 1]`, or `ell >= n²`.
pub fn theorem10_network<R: Rng + ?Sized>(
    n: usize,
    phi: f64,
    ell: Latency,
    rng: &mut R,
) -> Result<GadgetNetwork, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "theorem 10 network needs n >= 2".into(),
        });
    }
    if !(0.0..=1.0).contains(&phi) || phi == 0.0 {
        return Err(GraphError::InvalidParameters {
            reason: format!("phi must lie in (0, 1], got {phi}"),
        });
    }
    let hi = (n as Latency).saturating_mul(n as Latency).max(ell + 1);
    if ell == 0 || ell >= hi {
        return Err(GraphError::InvalidParameters {
            reason: format!("ell must satisfy 0 < ell < n^2, got {ell}"),
        });
    }
    gadget(n, ell, hi, TargetPredicate::Random { p: phi }, false, rng)
}

/// One layer pair of the Theorem 13 ring and its hidden fast edge.
#[derive(Debug, Clone)]
pub struct RingLayerTarget {
    /// Index of the layer (the pair is `(layer, (layer + 1) mod k)`).
    pub layer: usize,
    /// The fast cross edge, as node ids.
    pub fast_edge: (NodeId, NodeId),
}

/// The Theorem 13 / Figure 2 network and its bookkeeping.
#[derive(Debug, Clone)]
pub struct RingNetwork {
    /// The constructed graph.
    pub graph: Graph,
    /// Number of layers `k`.
    pub layers: usize,
    /// Nodes per layer `s`.
    pub layer_size: usize,
    /// Latency of the slow cross edges.
    pub ell: Latency,
    /// The hidden fast edge of every consecutive layer pair.
    pub targets: Vec<RingLayerTarget>,
}

impl RingNetwork {
    /// Node id of member `i` of layer `layer`.
    pub fn node(&self, layer: usize, i: usize) -> NodeId {
        NodeId::new(layer * self.layer_size + i)
    }
}

/// Layer count and layer size for the Theorem 13 construction with a given
/// `n` (half the node count) and conductance target `α`.
///
/// The paper sets `s = c·n·α` and `k = 2/(c·α)` with `c ∈ [1, 3/2)`; we round
/// to integers and clamp so that `k ≥ 3` and `s ≥ 2`.
pub fn theorem13_parameters(n: usize, alpha: f64) -> (usize, usize) {
    let c = (3.0 + (9.0 - 8.0 * alpha).max(0.0).sqrt()) / 4.0;
    let s = ((c * n as f64 * alpha).round() as usize).max(2);
    let k = ((2.0 * n as f64 / s as f64).round() as usize).max(3);
    (k, s)
}

/// Builds the Theorem 13 ring of guessing-game gadgets (Figure 2): `k` layers
/// of `s` nodes; each layer is a latency-1 clique; consecutive layers are
/// joined by a complete bipartite graph whose edges all have latency `ell`
/// except one uniformly random fast edge of latency 1 per layer pair.
///
/// The resulting graph is `(3s−1)`-regular (Observation 14), has
/// `φ_ℓ = Θ(s/n)` (Lemmas 15–16) and weighted diameter `Θ(k)`, and any
/// broadcast algorithm needs `Ω(min(Δ + D, ℓ/φ_ℓ))` rounds on it.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `layers < 3`, `layer_size < 2`,
/// or `ell < 2`.
pub fn theorem13_ring<R: Rng + ?Sized>(
    layers: usize,
    layer_size: usize,
    ell: Latency,
    rng: &mut R,
) -> Result<RingNetwork, GraphError> {
    if layers < 3 {
        return Err(GraphError::InvalidParameters {
            reason: "ring needs at least 3 layers".into(),
        });
    }
    if layer_size < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "ring needs at least 2 nodes per layer".into(),
        });
    }
    if ell < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "the slow latency ell must be at least 2".into(),
        });
    }
    let s = layer_size;
    let mut b = GraphBuilder::new(layers * s);
    let node = |layer: usize, i: usize| layer * s + i;

    // Latency-1 cliques inside every layer.
    for layer in 0..layers {
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge(node(layer, i), node(layer, j), 1)?;
            }
        }
    }

    // Complete bipartite cross edges between consecutive layers; one random
    // fast edge per layer pair, all others slow.
    let mut targets = Vec::with_capacity(layers);
    for layer in 0..layers {
        let next = (layer + 1) % layers;
        let fast_i = rng.gen_range(0..s);
        let fast_j = rng.gen_range(0..s);
        for i in 0..s {
            for j in 0..s {
                let latency = if i == fast_i && j == fast_j { 1 } else { ell };
                b.add_edge(node(layer, i), node(next, j), latency)?;
            }
        }
        targets.push(RingLayerTarget {
            layer,
            fast_edge: (
                NodeId::new(node(layer, fast_i)),
                NodeId::new(node(next, fast_j)),
            ),
        });
    }

    let graph = b.build_connected()?;
    Ok(RingNetwork {
        graph,
        layers,
        layer_size: s,
        ell,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::metrics;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gadget_structure_matches_figure_1a() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gadget(5, 1, 50, TargetPredicate::Singleton, false, &mut rng).unwrap();
        // L-clique: C(5,2) = 10 edges; cross: 25 edges.
        assert_eq!(g.graph.node_count(), 10);
        assert_eq!(g.graph.edge_count(), 35);
        assert_eq!(g.target.len(), 1);
        // Exactly one cross edge has latency 1 besides... L-clique edges also
        // have latency 1; count fast cross edges explicitly.
        let fast_cross = g
            .graph
            .edges()
            .filter(|rec| {
                let cross = (rec.u.index() < 5) != (rec.v.index() < 5);
                cross && rec.latency == 1
            })
            .count();
        assert_eq!(fast_cross, 1);
    }

    #[test]
    fn symmetric_gadget_adds_right_clique() {
        let mut rng = SmallRng::seed_from_u64(2);
        let asym = gadget(4, 1, 9, TargetPredicate::Singleton, false, &mut rng).unwrap();
        let sym = gadget(4, 1, 9, TargetPredicate::Singleton, true, &mut rng).unwrap();
        assert_eq!(sym.graph.edge_count(), asym.graph.edge_count() + 6);
    }

    #[test]
    fn cross_pair_mapping_is_symmetric() {
        let target: BTreeSet<Pair> = [(1, 2)].into_iter().collect();
        let g = gadget_with_target(4, 1, 9, target, false).unwrap();
        assert_eq!(
            g.cross_pair(NodeId::new(1), NodeId::new(4 + 2)),
            Some((1, 2))
        );
        assert_eq!(
            g.cross_pair(NodeId::new(4 + 2), NodeId::new(1)),
            Some((1, 2))
        );
        assert_eq!(g.cross_pair(NodeId::new(0), NodeId::new(1)), None);
        assert!(g.is_fast(1, 2));
        assert!(!g.is_fast(0, 0));
    }

    #[test]
    fn gadget_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(gadget(1, 1, 5, TargetPredicate::Singleton, false, &mut rng).is_err());
        assert!(gadget(4, 5, 5, TargetPredicate::Singleton, false, &mut rng).is_err());
        assert!(gadget(4, 0, 5, TargetPredicate::Singleton, false, &mut rng).is_err());
        assert!(gadget_with_target(4, 1, 5, [(9, 0)].into_iter().collect(), false).is_err());
    }

    #[test]
    fn theorem9_network_has_small_diameter_and_large_degree() {
        let mut rng = SmallRng::seed_from_u64(4);
        let delta = 8;
        let net = theorem9_network(64, delta, &mut rng).unwrap();
        assert_eq!(net.graph.node_count(), 64);
        assert!(net.graph.is_connected());
        // Max degree is Θ(Δ): a gadget node sees Δ-1 clique + Δ cross + possibly the expander hub.
        assert!(net.graph.max_degree() >= 2 * delta - 2);
        // Weighted diameter is small (O(log n)); the slow cross edges never
        // need to be used because the fast path goes through the expander...
        // but R-side nodes may only connect via cross edges, so allow O(Δ).
        let d = metrics::weighted_diameter(&net.graph).unwrap();
        assert!(
            d <= 2 * delta as u64 + 10,
            "diameter {d} unexpectedly large"
        );
        assert_eq!(net.target.len(), 1);
    }

    #[test]
    fn theorem9_rejects_small_networks() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(theorem9_network(10, 8, &mut rng).is_err());
        assert!(theorem9_network(64, 1, &mut rng).is_err());
    }

    #[test]
    fn theorem10_network_diameter_tracks_ell() {
        let mut rng = SmallRng::seed_from_u64(6);
        let net = theorem10_network(24, 0.3, 4, &mut rng).unwrap();
        assert_eq!(net.graph.node_count(), 48);
        // With φ = 0.3 every right node has a fast edge w.h.p., so the
        // weighted diameter is O(ℓ).
        let d = metrics::weighted_diameter(&net.graph).unwrap();
        assert!(d <= 3 * 4 + 2, "diameter {d} should be O(ell)");
        // The number of fast cross edges concentrates around φ·n².
        let fast = net.target.len() as f64;
        assert!(fast > 0.15 * 576.0 && fast < 0.45 * 576.0);
    }

    #[test]
    fn theorem13_ring_is_3s_minus_1_regular() {
        let mut rng = SmallRng::seed_from_u64(7);
        let ring = theorem13_ring(6, 4, 16, &mut rng).unwrap();
        assert_eq!(ring.graph.node_count(), 24);
        // Observation 14: every node has degree 3s - 1.
        for v in ring.graph.nodes() {
            assert_eq!(ring.graph.degree(v), 3 * 4 - 1);
        }
        assert_eq!(ring.targets.len(), 6);
        // Exactly one fast cross edge per layer pair.
        for t in &ring.targets {
            let e = ring.graph.find_edge(t.fast_edge.0, t.fast_edge.1).unwrap();
            assert_eq!(ring.graph.latency(e), 1);
        }
    }

    #[test]
    fn theorem13_diameter_scales_with_layer_count() {
        let mut rng = SmallRng::seed_from_u64(8);
        let small = theorem13_ring(4, 4, 8, &mut rng).unwrap();
        let large = theorem13_ring(12, 4, 8, &mut rng).unwrap();
        let d_small = metrics::weighted_diameter(&small.graph).unwrap();
        let d_large = metrics::weighted_diameter(&large.graph).unwrap();
        assert!(d_large > d_small, "more layers must mean a larger diameter");
        // D = Θ(k/2): crossing half the ring over fast edges costs ~k/2.
        assert!(d_large >= 5);
    }

    #[test]
    fn theorem13_parameters_are_consistent() {
        let (k, s) = theorem13_parameters(64, 0.125);
        // k·s ≈ 2n = 128.
        let total = k * s;
        assert!(
            (96..=160).contains(&total),
            "k*s = {total} should be near 128"
        );
        assert!(k >= 3 && s >= 2);
    }

    #[test]
    fn ring_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(theorem13_ring(2, 4, 8, &mut rng).is_err());
        assert!(theorem13_ring(4, 1, 8, &mut rng).is_err());
        assert!(theorem13_ring(4, 4, 1, &mut rng).is_err());
    }

    #[test]
    fn ring_node_helper_indexes_layers() {
        let mut rng = SmallRng::seed_from_u64(10);
        let ring = theorem13_ring(3, 5, 4, &mut rng).unwrap();
        assert_eq!(ring.node(0, 0), NodeId::new(0));
        assert_eq!(ring.node(2, 3), NodeId::new(13));
    }
}
