//! The Lemma 6 reduction: simulating a gossip protocol as a guessing-game
//! strategy.
//!
//! Lemma 6 of the paper: if a gossip algorithm solves local broadcast on a
//! network containing a gadget `G(2m, 1, h, P)` whose cross edges form a cut,
//! then Alice can solve `Guessing(2m, P)` in at most as many rounds — she
//! simulates the algorithm and submits the cross edges it activates as
//! guesses.  This module performs that simulation literally: it runs a gossip
//! protocol on a [`GadgetNetwork`](crate::gadgets::GadgetNetwork), records the
//! cross edges activated in every round, replays them as guesses against the
//! actual guessing game, and reports both round counts so tests and
//! experiments can check `game rounds ≤ gossip rounds`.

use gossip_graph::NodeId;
use gossip_sim::protocols::RandomPushPull;
use gossip_sim::{NodeView, Protocol, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;

use crate::gadgets::GadgetNetwork;
use crate::game::{GuessingGame, Pair};

/// Wraps a protocol and records every cross-edge activation of the gadget.
struct CrossEdgeRecorder<'a, P> {
    inner: P,
    network: &'a GadgetNetwork,
    /// `(round, pair)` for every activated cross edge.
    activations: Vec<(u64, Pair)>,
}

impl<P: Protocol> Protocol for CrossEdgeRecorder<'_, P> {
    fn name(&self) -> &'static str {
        "cross-edge-recorder"
    }

    fn on_round(&mut self, view: &NodeView<'_>, rng: &mut SmallRng) -> Option<NodeId> {
        let choice = self.inner.on_round(view, rng);
        if let Some(target) = choice {
            if let Some(pair) = self.network.cross_pair(view.node, target) {
                self.activations.push((view.round, pair));
            }
        }
        choice
    }

    fn on_exchange(&mut self, node: NodeId, event: &gossip_sim::ExchangeEvent) {
        self.inner.on_exchange(node, event);
    }

    fn is_idle(&self, node: NodeId) -> bool {
        self.inner.is_idle(node)
    }
}

/// Outcome of one reduction experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionOutcome {
    /// Rounds the gossip protocol needed to solve local broadcast on the gadget.
    pub gossip_rounds: u64,
    /// Rounds after which Alice's derived guesses empty the target set
    /// (`None` if the target was never emptied — which Lemma 6 rules out
    /// whenever local broadcast completed).
    pub game_rounds: Option<u64>,
    /// Whether local broadcast completed within the round budget.
    pub gossip_completed: bool,
    /// Number of cross-edge activations the protocol made.
    pub cross_activations: u64,
}

/// Runs push–pull for local broadcast on the gadget network and derives the
/// guessing-game solution from its cross-edge activations (Lemma 6 with the
/// push–pull protocol, which is exactly the "random guessing" strategy of
/// Lemma 8(b)).
pub fn push_pull_reduction(network: &GadgetNetwork, seed: u64) -> ReductionOutcome {
    let g = &network.graph;
    let cap = (g.node_count() as u64)
        .saturating_mul(g.max_latency().max(1))
        .saturating_mul(4)
        .max(10_000);
    let config = SimConfig::new(seed)
        .termination(Termination::LocalBroadcast(g.max_latency()))
        .max_rounds(cap);
    let mut protocol = CrossEdgeRecorder {
        inner: RandomPushPull::new(g),
        network,
        activations: Vec::new(),
    };
    let report = Simulation::new(g, config).run(&mut protocol);

    // Replay the recorded activations round by round as Alice's guesses.
    let mut game = GuessingGame::with_target(network.m, network.target.clone());
    let mut game_rounds = None;
    let mut idx = 0usize;
    let activations = &protocol.activations;
    if game.is_solved() {
        game_rounds = Some(0);
    } else {
        for round in 0..=report.rounds {
            let mut guesses: Vec<Pair> = Vec::new();
            while idx < activations.len() && activations[idx].0 == round {
                guesses.push(activations[idx].1);
                idx += 1;
            }
            // The game allows at most 2m guesses per round; push–pull activates
            // at most one edge per node per round, i.e. at most 2m cross edges.
            game.submit(&guesses);
            if game.is_solved() {
                game_rounds = Some(round + 1);
                break;
            }
        }
    }

    ReductionOutcome {
        gossip_rounds: report.rounds,
        game_rounds,
        gossip_completed: report.completed,
        cross_activations: activations.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::predicates::TargetPredicate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reduction_solves_the_game_when_local_broadcast_completes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = gadgets::gadget(
            8,
            1,
            200,
            TargetPredicate::Random { p: 0.3 },
            false,
            &mut rng,
        )
        .unwrap();
        let out = push_pull_reduction(&net, 42);
        assert!(out.gossip_completed);
        let game_rounds = out.game_rounds.expect("Lemma 6: the game must be solved");
        // Alice's simulation never needs more rounds than the gossip run.
        assert!(game_rounds <= out.gossip_rounds + 1);
        assert!(out.cross_activations > 0);
    }

    #[test]
    fn reduction_on_singleton_target_needs_many_rounds() {
        // Lemma 7 / Theorem 9 shape: finding the single hidden fast edge among
        // m² candidates takes Ω(m) rounds of random guessing.
        let mut rng = SmallRng::seed_from_u64(2);
        let small =
            gadgets::gadget(4, 1, 1_000, TargetPredicate::Singleton, true, &mut rng).unwrap();
        let large =
            gadgets::gadget(16, 1, 1_000, TargetPredicate::Singleton, true, &mut rng).unwrap();
        let avg = |net: &gadgets::GadgetNetwork, seeds: std::ops::Range<u64>| {
            let mut total = 0u64;
            let count = seeds.end - seeds.start;
            for s in seeds {
                let out = push_pull_reduction(net, s);
                total += out.game_rounds.unwrap_or(out.gossip_rounds);
            }
            total as f64 / count as f64
        };
        let small_rounds = avg(&small, 0..6);
        let large_rounds = avg(&large, 0..6);
        assert!(
            large_rounds > 1.5 * small_rounds,
            "game rounds should grow with m: m=4 -> {small_rounds:.1}, m=16 -> {large_rounds:.1}"
        );
    }

    #[test]
    fn denser_targets_are_found_faster() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dense = gadgets::gadget(
            12,
            1,
            500,
            TargetPredicate::Random { p: 0.5 },
            false,
            &mut rng,
        )
        .unwrap();
        let sparse = gadgets::gadget(
            12,
            1,
            500,
            TargetPredicate::Random { p: 0.05 },
            false,
            &mut rng,
        )
        .unwrap();
        let d = push_pull_reduction(&dense, 9);
        let s = push_pull_reduction(&sparse, 9);
        assert!(d.gossip_completed && s.gossip_completed);
        assert!(
            s.gossip_rounds >= d.gossip_rounds,
            "sparse fast edges ({}) should not be easier than dense ({})",
            s.gossip_rounds,
            d.gossip_rounds
        );
    }
}
