//! # gossip-lowerbound
//!
//! The lower-bound machinery of *Slow Links, Fast Links, and the Cost of
//! Gossip* (Section 3): the combinatorial guessing game, the predicates and
//! strategies analysed in Lemmas 7–8, the guessing-game gadgets of Figure 1,
//! and the worst-case networks of Theorems 9, 10 and 13 (Figure 2).
//!
//! The paper proves its `Ω(min(D + Δ, ℓ*/φ*))` lower bound by
//!
//! 1. defining `Guessing(2m, P)`: an oracle hides a target set of bipartite
//!    edges chosen by a predicate `P`; Alice submits up to `2m` guesses per
//!    round; a hit removes every target pair sharing its right endpoint
//!    (Equation 3); the game ends when the target set is empty;
//! 2. showing the game is hard — `Ω(m)` rounds for a singleton target
//!    (Lemma 7), `Ω(1/p)` rounds for `Random_p` targets and `Ω(log m / p)` for
//!    the "random guessing" strategy that models push–pull (Lemma 8);
//! 3. embedding the game into networks in which the hidden fast edges are
//!    exactly the target set, so that any gossip algorithm solving (local)
//!    broadcast would solve the game (Lemma 6).
//!
//! This crate implements all three steps so the experiments can measure the
//! game directly *and* measure gossip algorithms on the constructed networks.
//!
//! ```rust
//! use gossip_lowerbound::game::GuessingGame;
//! use gossip_lowerbound::predicates::TargetPredicate;
//! use gossip_lowerbound::strategies::{play, RandomGuessing};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let game = GuessingGame::new(32, TargetPredicate::Random { p: 0.25 }, &mut rng);
//! let outcome = play(game, &mut RandomGuessing, 10_000, &mut rng);
//! assert!(outcome.solved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gadgets;
pub mod game;
pub mod predicates;
pub mod reduction;
pub mod strategies;
