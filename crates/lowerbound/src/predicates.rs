//! Target-set predicates for the guessing game.

use std::collections::BTreeSet;

use rand::Rng;

use crate::game::Pair;

/// How the oracle draws the target set `T₁ ⊆ A × B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetPredicate {
    /// A single pair chosen uniformly at random (the predicate of Lemma 7 and
    /// the Theorem 9 / Theorem 13 constructions).
    Singleton,
    /// Every pair joins the target independently with probability `p`
    /// (`Random_p`, the predicate of Lemma 8 and the Theorem 10 construction).
    Random {
        /// Per-pair inclusion probability.
        p: f64,
    },
}

impl TargetPredicate {
    /// Samples a target set over `A × B` with `|A| = |B| = m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or, for [`TargetPredicate::Random`], if `p` is not in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> BTreeSet<Pair> {
        assert!(m > 0, "the guessing game needs m >= 1");
        match *self {
            TargetPredicate::Singleton => {
                let a = rng.gen_range(0..m);
                let b = rng.gen_range(0..m);
                [(a, b)].into_iter().collect()
            }
            TargetPredicate::Random { p } => {
                assert!((0.0..=1.0).contains(&p), "probability p must lie in [0, 1]");
                let mut set = BTreeSet::new();
                for a in 0..m {
                    for b in 0..m {
                        if rng.gen_bool(p) {
                            set.insert((a, b));
                        }
                    }
                }
                set
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn singleton_is_always_one_pair_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = TargetPredicate::Singleton.sample(9, &mut rng);
            assert_eq!(t.len(), 1);
            let &(a, b) = t.iter().next().unwrap();
            assert!(a < 9 && b < 9);
        }
    }

    #[test]
    fn random_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(TargetPredicate::Random { p: 0.0 }
            .sample(6, &mut rng)
            .is_empty());
        assert_eq!(
            TargetPredicate::Random { p: 1.0 }.sample(6, &mut rng).len(),
            36
        );
    }

    #[test]
    fn random_respects_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = TargetPredicate::Random { p: 0.1 }.sample(50, &mut rng);
        let expected = 2500.0 * 0.1;
        assert!((t.len() as f64) > expected * 0.5);
        assert!((t.len() as f64) < expected * 1.5);
    }

    #[test]
    #[should_panic(expected = "m >= 1")]
    fn zero_m_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = TargetPredicate::Singleton.sample(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "probability p")]
    fn bad_probability_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = TargetPredicate::Random { p: 1.5 }.sample(3, &mut rng);
    }
}
