//! Error type for the conductance computations.

use std::error::Error;
use std::fmt;

/// Errors produced by the conductance analysis entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConductanceError {
    /// The graph has no edges, so conductance is undefined.
    NoEdges,
    /// The graph has fewer than two nodes, so there is no proper cut.
    TooFewNodes,
    /// Exact enumeration was requested for a graph that is too large
    /// (more than [`exact::MAX_EXACT_NODES`](crate::exact::MAX_EXACT_NODES) nodes).
    TooLargeForExact {
        /// Number of nodes in the offending graph.
        nodes: usize,
        /// Largest supported node count for exact enumeration.
        limit: usize,
    },
}

impl fmt::Display for ConductanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConductanceError::NoEdges => write!(f, "conductance is undefined for an edgeless graph"),
            ConductanceError::TooFewNodes => {
                write!(f, "conductance needs at least two nodes to form a cut")
            }
            ConductanceError::TooLargeForExact { nodes, limit } => write!(
                f,
                "exact cut enumeration supports at most {limit} nodes, got {nodes}; use Method::SweepCut or Method::Auto"
            ),
        }
    }
}

impl Error for ConductanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ConductanceError::NoEdges.to_string().contains("edgeless"));
        assert!(ConductanceError::TooFewNodes
            .to_string()
            .contains("two nodes"));
        let e = ConductanceError::TooLargeForExact {
            nodes: 50,
            limit: 22,
        };
        assert!(e.to_string().contains("50"));
        assert!(e.to_string().contains("22"));
    }
}
