//! Per-cut conductance quantities (Definitions 1 and 3 of the paper).

use gossip_graph::cut::{latency_class_count, Cut};
use gossip_graph::{Graph, Latency};

/// Weight-ℓ conductance of a single cut (Definition 1):
/// `φ_ℓ(C) = |E_ℓ(C)| / min(Vol(U), Vol(V∖U))`.
///
/// Returns `None` for improper cuts (one side empty) or cuts whose smaller
/// side has zero volume (isolated nodes), for which the ratio is undefined.
pub fn phi_ell_of_cut(g: &Graph, cut: &Cut, ell: Latency) -> Option<f64> {
    if !cut.is_proper() {
        return None;
    }
    let min_vol = cut.min_volume(g);
    if min_vol == 0 {
        return None;
    }
    Some(cut.cut_edges_within(g, ell) as f64 / min_vol as f64)
}

/// Average cut conductance of a single cut (Definition 3):
/// `φ_avg(C) = (1/S) Σ_i |k_i(C)| / 2^i` where `k_i(C)` are the cut edges in
/// latency class `i` and `S = min(Vol(U), Vol(V∖U))`.
///
/// Returns `None` for improper cuts or cuts whose smaller side has zero volume.
pub fn phi_avg_of_cut(g: &Graph, cut: &Cut) -> Option<f64> {
    if !cut.is_proper() {
        return None;
    }
    let min_vol = cut.min_volume(g);
    if min_vol == 0 {
        return None;
    }
    let counts = cut.latency_class_counts(g);
    let mut sum = 0.0;
    for (i, &count) in counts.iter().enumerate() {
        let class = i + 1;
        sum += count as f64 / f64::powi(2.0, class as i32);
    }
    Some(sum / min_vol as f64)
}

/// Number of *non-empty* latency classes `L` in the graph: class `i` is
/// non-empty if some edge has latency in `(2^{i-1}, 2^i]` (class 1 covers
/// latencies 1 and 2).  Theorem 5's upper bound uses this quantity.
pub fn nonempty_latency_classes(g: &Graph) -> usize {
    let classes = latency_class_count(g.max_latency());
    let mut nonempty = vec![false; classes];
    for rec in g.edges() {
        nonempty[gossip_graph::cut::latency_class(rec.latency) - 1] = true;
    }
    nonempty.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::{GraphBuilder, NodeId};

    /// 4-cycle with latencies 1, 1, 3, 8.
    fn cycle4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 3, 3).unwrap();
        b.add_edge(3, 0, 8).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn phi_ell_counts_only_fast_cut_edges() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        // Crossing edges: (1,2) latency 1 and (3,0) latency 8; min volume 4.
        assert_eq!(phi_ell_of_cut(&g, &cut, 1), Some(0.25));
        assert_eq!(phi_ell_of_cut(&g, &cut, 7), Some(0.25));
        assert_eq!(phi_ell_of_cut(&g, &cut, 8), Some(0.5));
    }

    #[test]
    fn phi_avg_discounts_by_class() {
        let g = cycle4();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        // classes of crossing edges: latency 1 -> class 1 (weight 1/2),
        // latency 8 -> class 3 (weight 1/8); min volume 4.
        let expected = (0.5 + 0.125) / 4.0;
        let got = phi_avg_of_cut(&g, &cut).unwrap();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn improper_cuts_are_rejected() {
        let g = cycle4();
        let empty = Cut::from_side(&g, []);
        let full = Cut::from_side(&g, g.nodes().collect::<Vec<_>>());
        assert_eq!(phi_ell_of_cut(&g, &empty, 10), None);
        assert_eq!(phi_avg_of_cut(&g, &full), None);
    }

    #[test]
    fn unweighted_phi_avg_is_half_phi() {
        // The paper notes: for unit latencies, φ_avg is exactly half the
        // classical conductance (all edges are class 1, discount 1/2).
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v, 1).unwrap();
        }
        let g = b.build().unwrap();
        let cut = Cut::from_side(&g, [NodeId::new(0), NodeId::new(1)]);
        let phi = phi_ell_of_cut(&g, &cut, 1).unwrap();
        let avg = phi_avg_of_cut(&g, &cut).unwrap();
        assert!((avg - phi / 2.0).abs() < 1e-12);
    }

    #[test]
    fn nonempty_classes_counts_distinct_classes() {
        let g = cycle4();
        // latencies 1,1 (class 1), 3 (class 2), 8 (class 3) -> 3 non-empty classes
        assert_eq!(nonempty_latency_classes(&g), 3);

        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(nonempty_latency_classes(&g), 1);
    }

    #[test]
    fn isolated_node_side_has_undefined_conductance() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        let g = b.build().unwrap();
        // Node 2 is isolated: a cut whose small side is {2} has zero volume.
        let cut = Cut::from_side(&g, [NodeId::new(2)]);
        assert_eq!(phi_ell_of_cut(&g, &cut, 1), None);
        assert_eq!(phi_avg_of_cut(&g, &cut), None);
    }
}
