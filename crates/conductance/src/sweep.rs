//! Spectral sweep-cut estimation of conductance for larger graphs.
//!
//! Exactly minimising conductance over all cuts is NP-hard in general and the
//! exhaustive enumeration in [`crate::exact`] only scales to ~22 nodes.  For
//! larger graphs we fall back to the standard spectral heuristic: order nodes
//! by the Fiedler vector (the second eigenvector of the normalized adjacency
//! operator) and consider only the `n - 1` prefix cuts of that ordering.
//! Cheeger's inequality guarantees that the best sweep cut is within a
//! quadratic factor of the true conductance, and in practice it is very close;
//! the test-suite cross-checks the sweep estimates against exact values on
//! small graphs.

use gossip_graph::cut::Cut;
use gossip_graph::{Graph, Latency, NodeId};

/// Number of power-iteration steps used to approximate the Fiedler vector.
const POWER_ITERATIONS: usize = 200;

/// Computes an approximate Fiedler ordering of the nodes of `g`: nodes sorted
/// by their coordinate in the (approximate) second eigenvector of the
/// normalized adjacency operator `D^{-1/2} A D^{-1/2}`.
///
/// Edges with latency above `ell` are ignored when building the operator, so
/// the ordering reflects the connectivity structure of the subgraph `G_ℓ`
/// whose conductance we are trying to estimate.  Isolated nodes (in `G_ℓ`)
/// are placed at the end of the ordering.
pub fn fiedler_ordering(g: &Graph, ell: Latency) -> Vec<NodeId> {
    let n = g.node_count();
    // Degrees within G_ℓ.
    let mut deg = vec![0f64; n];
    for rec in g.edges() {
        if rec.latency <= ell {
            deg[rec.u.index()] += 1.0;
            deg[rec.v.index()] += 1.0;
        }
    }

    // Power iteration on M = D^{-1/2} A D^{-1/2}, deflating the top
    // eigenvector v1 ∝ D^{1/2}·1 (eigenvalue 1).
    let sqrt_deg: Vec<f64> = deg.iter().map(|&d| d.sqrt()).collect();
    let norm1: f64 = sqrt_deg.iter().map(|x| x * x).sum::<f64>().sqrt();
    let v1: Vec<f64> = sqrt_deg
        .iter()
        .map(|&x| if norm1 > 0.0 { x / norm1 } else { 0.0 })
        .collect();

    // Deterministic pseudo-random start vector (no RNG needed: a fixed
    // quasi-random sequence keeps the whole analysis reproducible).
    let mut x: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.754_877_666 + 0.1).sin())
        .collect();

    for _ in 0..POWER_ITERATIONS {
        // Deflate: x <- x - (x·v1) v1
        let dot: f64 = x.iter().zip(&v1).map(|(a, b)| a * b).sum();
        for i in 0..n {
            x[i] -= dot * v1[i];
        }
        // y = M x
        let mut y = vec![0f64; n];
        for rec in g.edges() {
            if rec.latency > ell {
                continue;
            }
            let (ui, vi) = (rec.u.index(), rec.v.index());
            if sqrt_deg[ui] > 0.0 && sqrt_deg[vi] > 0.0 {
                y[ui] += x[vi] / (sqrt_deg[ui] * sqrt_deg[vi]);
                y[vi] += x[ui] / (sqrt_deg[ui] * sqrt_deg[vi]);
            }
        }
        // Shift by +I to make the dominant (in magnitude) eigenvalue the largest
        // algebraic one: y <- y + x.  This keeps the iteration from locking onto
        // the most negative eigenvalue of M.
        for i in 0..n {
            y[i] += x[i];
        }
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-15 {
            break;
        }
        for i in 0..n {
            x[i] = y[i] / norm;
        }
    }

    // Sweep coordinate: the Fiedler value is D^{-1/2} x.
    let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    order.sort_by(|a, b| {
        let fa = if sqrt_deg[a.index()] > 0.0 {
            x[a.index()] / sqrt_deg[a.index()]
        } else {
            f64::INFINITY
        };
        let fb = if sqrt_deg[b.index()] > 0.0 {
            x[b.index()] / sqrt_deg[b.index()]
        } else {
            f64::INFINITY
        };
        fa.partial_cmp(&fb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });
    order
}

/// Generates the candidate cuts evaluated by the sweep heuristic:
///
/// * all prefix cuts of the Fiedler ordering of `G_ℓ` for each distinct
///   latency threshold `ℓ` in the graph (capped at 16 thresholds),
/// * every singleton cut `({v}, rest)`,
/// * the balanced "first half / second half" node-id cut (useful for the
///   planted-cut families where node ids encode the partition).
pub fn candidate_cuts(g: &Graph) -> Vec<Cut> {
    let n = g.node_count();
    let mut cuts = Vec::new();

    let mut thresholds = g.distinct_latencies();
    if thresholds.len() > 16 {
        // Keep a spread of thresholds (always including the extremes).
        let step = thresholds.len() / 16 + 1;
        let mut kept: Vec<Latency> = thresholds.iter().copied().step_by(step).collect();
        if let Some(&last) = thresholds.last() {
            if kept.last() != Some(&last) {
                kept.push(last);
            }
        }
        thresholds = kept;
    }

    for ell in thresholds {
        let order = fiedler_ordering(g, ell);
        let mut membership = vec![false; n];
        for prefix in 0..n.saturating_sub(1) {
            membership[order[prefix].index()] = true;
            cuts.push(Cut::from_membership(g, membership.clone()));
        }
    }

    for v in g.nodes() {
        cuts.push(Cut::from_side(g, [v]));
    }

    if n >= 2 {
        cuts.push(Cut::from_side(g, (0..n / 2).map(NodeId::new)));
    }
    cuts
}

/// Minimises a per-cut score over the sweep candidate cuts.
///
/// Returns `None` if the score is undefined on every candidate (e.g. an
/// edgeless graph).
pub fn sweep_minimum<F>(g: &Graph, mut score: F) -> Option<(Cut, f64)>
where
    F: FnMut(&Graph, &Cut) -> Option<f64>,
{
    let mut best: Option<(Cut, f64)> = None;
    for cut in candidate_cuts(g) {
        if let Some(s) = score(g, &cut) {
            match &best {
                Some((_, b)) if *b <= s => {}
                _ => best = Some((cut, s)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut_eval::phi_ell_of_cut;
    use crate::exact::exact_minimum;
    use gossip_graph::generators;

    #[test]
    fn fiedler_ordering_separates_dumbbell_sides() {
        let g = generators::dumbbell(6, 1).unwrap();
        let order = fiedler_ordering(&g, 1);
        // The first 6 nodes of the ordering should be exactly one clique.
        let first_half: Vec<usize> = order[..6].iter().map(|v| v.index()).collect();
        let all_left = first_half.iter().all(|&v| v < 6);
        let all_right = first_half.iter().all(|&v| v >= 6);
        assert!(
            all_left || all_right,
            "fiedler ordering mixed the two cliques: {first_half:?}"
        );
    }

    #[test]
    fn sweep_matches_exact_on_dumbbell() {
        let g = generators::dumbbell(5, 4).unwrap();
        let (_, exact) = exact_minimum(&g, |g, c| phi_ell_of_cut(g, c, 4)).unwrap();
        let (_, sweep) = sweep_minimum(&g, |g, c| phi_ell_of_cut(g, c, 4)).unwrap();
        assert!((exact - sweep).abs() < 1e-9, "exact={exact} sweep={sweep}");
    }

    #[test]
    fn sweep_matches_exact_on_cycle_and_clique() {
        for g in [
            generators::cycle(10, 1).unwrap(),
            generators::clique(8, 1).unwrap(),
        ] {
            let (_, exact) = exact_minimum(&g, |g, c| phi_ell_of_cut(g, c, 1)).unwrap();
            let (_, sweep) = sweep_minimum(&g, |g, c| phi_ell_of_cut(g, c, 1)).unwrap();
            // Sweep is an upper bound; on these symmetric families it should be exact.
            assert!(sweep >= exact - 1e-9);
            assert!(
                sweep <= exact * 1.5 + 1e-9,
                "sweep estimate {sweep} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn candidate_cuts_are_proper() {
        let g = generators::ring_of_cliques(4, 4, 8).unwrap();
        let cuts = candidate_cuts(&g);
        assert!(!cuts.is_empty());
        assert!(cuts.iter().all(|c| c.is_proper()));
    }

    #[test]
    fn sweep_handles_star_with_slow_spokes() {
        let g = generators::star(20, 16).unwrap();
        let (_, value) = sweep_minimum(&g, |g, c| phi_ell_of_cut(g, c, 16)).unwrap();
        // Every proper cut of a star has at least one cut edge and the smaller
        // side has volume >= 1, so the minimum is 1/side-volume; the best cut
        // puts half the leaves on one side: value = ~ (n/2)/(n/2) but volumes:
        // leaves have degree 1 so min volume = number of leaves on small side
        // and cut edges = same number -> 1.0; singleton leaf cut also gives 1.
        assert!((value - 1.0).abs() < 1e-9);
    }
}
