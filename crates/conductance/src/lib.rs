//! # gossip-conductance
//!
//! Weighted-conductance machinery from *Slow Links, Fast Links, and the Cost
//! of Gossip* (Sourav, Robinson, Gilbert — ICDCS 2018), Section 2.
//!
//! The paper generalises graph conductance to graphs whose edges carry
//! latencies, in two (nearly) equivalent ways:
//!
//! * the **weight-ℓ conductance** `φ_ℓ(G)` (Definition 1): for a cut `C`,
//!   `φ_ℓ(C) = |E_ℓ(C)| / min(Vol(U), Vol(V∖U))` where `E_ℓ(C)` is the set of
//!   cut edges with latency at most `ℓ`, and `φ_ℓ(G)` is the minimum over all
//!   cuts;
//! * the **critical weighted conductance** `φ*` with **critical latency** `ℓ*`
//!   (Definition 2): the `φ_ℓ` whose ratio `φ_ℓ / ℓ` is maximal;
//! * the **average weighted conductance** `φ_avg` (Definitions 3–4): cut
//!   edges are grouped into latency classes `(2^{i-1}, 2^i]` and each class is
//!   discounted by `2^i`.
//!
//! Theorem 5 relates the two: `φ*/(2ℓ*) ≤ φ_avg ≤ L·φ*/ℓ*` where `L` is the
//! number of non-empty latency classes.  The test-suite and the E1 experiment
//! check this relation on every graph family.
//!
//! Exact values require minimising over all `2^{n-1}` cuts, which this crate
//! does for small graphs ([`Method::Exact`]); for larger graphs it uses
//! spectral sweep cuts plus targeted candidate cuts ([`Method::SweepCut`]),
//! which give an upper bound on each `φ_ℓ` (and therefore estimates that are
//! validated against the exact values in the test-suite).
//!
//! ```rust
//! use gossip_graph::generators;
//! use gossip_conductance::{analyze, Method};
//!
//! // A dumbbell: two 4-cliques joined by one slow bridge.
//! let g = generators::dumbbell(4, 16).unwrap();
//! let report = analyze(&g, Method::Exact).unwrap();
//! // The bottleneck cut is the bridge; the bridge is the only cut edge, so
//! // the critical latency is the bridge latency.
//! assert_eq!(report.ell_star, 16);
//! assert!(report.phi_star > 0.0);
//! assert!(report.theorem5_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cut_eval;
mod error;
mod exact;
mod sweep;

pub use analysis::{
    analyze, average_conductance, classical_conductance, critical_conductance,
    weight_ell_conductance, ConductanceReport, CriticalConductance, Method,
};
pub use cut_eval::{nonempty_latency_classes, phi_avg_of_cut, phi_ell_of_cut};
pub use error::ConductanceError;
pub use exact::{enumerate_cuts, exact_minimum};
pub use sweep::{candidate_cuts, fiedler_ordering, sweep_minimum};
