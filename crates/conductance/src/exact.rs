//! Exact conductance by exhaustive cut enumeration (small graphs).

use gossip_graph::cut::Cut;
use gossip_graph::Graph;

use crate::ConductanceError;

/// Largest node count for which exact enumeration (`2^{n-1}` cuts) is allowed.
pub const MAX_EXACT_NODES: usize = 22;

/// Enumerates every proper cut of `g` exactly once (each unordered bipartition
/// appears a single time, with node 0 always on the `V∖U` side).
///
/// # Errors
///
/// Returns [`ConductanceError::TooLargeForExact`] when the graph exceeds
/// [`MAX_EXACT_NODES`] nodes and [`ConductanceError::TooFewNodes`] when no
/// proper cut exists.
pub fn enumerate_cuts(g: &Graph) -> Result<Vec<Cut>, ConductanceError> {
    let n = g.node_count();
    if n < 2 {
        return Err(ConductanceError::TooFewNodes);
    }
    if n > MAX_EXACT_NODES {
        return Err(ConductanceError::TooLargeForExact {
            nodes: n,
            limit: MAX_EXACT_NODES,
        });
    }
    // Fix node 0 outside U so each bipartition is generated exactly once.
    let count = 1u64 << (n - 1);
    let mut cuts = Vec::with_capacity((count - 1) as usize);
    for mask in 1..count {
        cuts.push(Cut::from_bitmask(g, mask << 1));
    }
    Ok(cuts)
}

/// Computes the exact minimum of a per-cut score over all proper cuts.
///
/// `score` returns `None` when the quantity is undefined for that cut (e.g. a
/// zero-volume side); such cuts are skipped.  Returns the minimising cut and
/// its score, or an error if the graph is too large or no cut has a defined
/// score.
///
/// # Errors
///
/// Propagates [`enumerate_cuts`] errors and returns
/// [`ConductanceError::NoEdges`] when every cut score is undefined.
pub fn exact_minimum<F>(g: &Graph, mut score: F) -> Result<(Cut, f64), ConductanceError>
where
    F: FnMut(&Graph, &Cut) -> Option<f64>,
{
    let cuts = enumerate_cuts(g)?;
    let mut best: Option<(Cut, f64)> = None;
    for cut in cuts {
        if let Some(s) = score(g, &cut) {
            match &best {
                Some((_, b)) if *b <= s => {}
                _ => best = Some((cut, s)),
            }
        }
    }
    best.ok_or(ConductanceError::NoEdges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut_eval::phi_ell_of_cut;
    use gossip_graph::generators;
    use gossip_graph::GraphBuilder;

    #[test]
    fn enumeration_counts_all_bipartitions() {
        let g = generators::cycle(4, 1).unwrap();
        let cuts = enumerate_cuts(&g).unwrap();
        // 2^{4-1} - 1 = 7 proper bipartitions.
        assert_eq!(cuts.len(), 7);
        assert!(cuts.iter().all(|c| c.is_proper()));
    }

    #[test]
    fn enumeration_rejects_large_and_tiny_graphs() {
        let g = generators::clique(MAX_EXACT_NODES + 1, 1).unwrap();
        assert!(matches!(
            enumerate_cuts(&g),
            Err(ConductanceError::TooLargeForExact { .. })
        ));
        let single = GraphBuilder::new(1).build().unwrap();
        assert_eq!(enumerate_cuts(&single), Err(ConductanceError::TooFewNodes));
    }

    #[test]
    fn exact_minimum_finds_the_bridge_cut_of_a_dumbbell() {
        let g = generators::dumbbell(4, 8).unwrap();
        let (cut, value) = exact_minimum(&g, |g, c| phi_ell_of_cut(g, c, 8)).unwrap();
        // The bottleneck is the bridge: 1 cut edge over min volume (4 clique
        // nodes: 3+3+3+4 = 13).
        assert!((value - 1.0 / 13.0).abs() < 1e-12);
        assert_eq!(cut.size_u(), 4);
    }

    #[test]
    fn exact_minimum_on_clique_matches_known_conductance() {
        // For K_4 with unit latencies the conductance is minimised by the
        // balanced cut: 4 cut edges / volume 6 = 2/3.
        let g = generators::clique(4, 1).unwrap();
        let (_, value) = exact_minimum(&g, |g, c| phi_ell_of_cut(g, c, 1)).unwrap();
        assert!((value - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_minimum_reports_no_edges() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(
            exact_minimum(&g, |g, c| phi_ell_of_cut(g, c, 1)).unwrap_err(),
            ConductanceError::NoEdges
        );
    }
}
