//! Top-level conductance analysis API: `φ_ℓ`, `φ*`, `ℓ*`, `φ_avg`.

use gossip_graph::cut::Cut;
use gossip_graph::{Graph, Latency};

use crate::cut_eval::{nonempty_latency_classes, phi_avg_of_cut, phi_ell_of_cut};
use crate::exact::{enumerate_cuts, MAX_EXACT_NODES};
use crate::sweep::candidate_cuts;
use crate::ConductanceError;

/// How the minimisation over cuts is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Enumerate every cut (exact); only graphs up to
    /// [`MAX_EXACT_NODES`](crate::exact::MAX_EXACT_NODES) nodes are accepted.
    Exact,
    /// Spectral sweep cuts plus targeted candidates (upper-bound estimate).
    SweepCut,
    /// Exact for graphs with at most 14 nodes, sweep cuts otherwise.
    #[default]
    Auto,
}

impl Method {
    fn resolve(self, g: &Graph) -> Method {
        match self {
            Method::Auto => {
                if g.node_count() <= 14 {
                    Method::Exact
                } else {
                    Method::SweepCut
                }
            }
            other => other,
        }
    }
}

/// The critical weighted conductance `φ*` and critical latency `ℓ*`
/// (Definition 2), together with the per-threshold profile used to find them.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalConductance {
    /// Critical weighted conductance `φ*`.
    pub phi_star: f64,
    /// Critical latency `ℓ*` (the threshold achieving the maximal `φ_ℓ/ℓ`).
    pub ell_star: Latency,
    /// `(ℓ, φ_ℓ)` for every candidate threshold considered, ascending in `ℓ`.
    pub profile: Vec<(Latency, f64)>,
}

/// Everything Section 2 of the paper defines, for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ConductanceReport {
    /// Critical weighted conductance `φ*`.
    pub phi_star: f64,
    /// Critical latency `ℓ*`.
    pub ell_star: Latency,
    /// Average weighted conductance `φ_avg`.
    pub phi_avg: f64,
    /// Classical (latency-blind) conductance, i.e. `φ_ℓ` with `ℓ = ℓ_max`.
    pub phi_classical: f64,
    /// Number of non-empty latency classes `L`.
    pub nonempty_classes: usize,
    /// `(ℓ, φ_ℓ)` profile over candidate thresholds.
    pub profile: Vec<(Latency, f64)>,
}

impl ConductanceReport {
    /// Lower bound of Theorem 5: `φ*/(2ℓ*)`.
    pub fn theorem5_lower(&self) -> f64 {
        self.phi_star / (2.0 * self.ell_star as f64)
    }

    /// Upper bound of Theorem 5: `L · φ*/ℓ*`.
    pub fn theorem5_upper(&self) -> f64 {
        self.nonempty_classes as f64 * self.phi_star / self.ell_star as f64
    }

    /// Checks the Theorem 5 sandwich `φ*/(2ℓ*) ≤ φ_avg ≤ L·φ*/ℓ*`
    /// (with a small floating-point tolerance).
    pub fn theorem5_holds(&self) -> bool {
        self.theorem5_holds_with_tolerance(0.0)
    }

    /// Checks the Theorem 5 sandwich allowing a relative tolerance on both
    /// sides.  The sandwich is a theorem about the *exact* quantities; when
    /// `φ*` and `φ_avg` are estimated with sweep cuts each estimate is an
    /// upper bound on its own minimum, so the inequality can be violated by
    /// the estimation error — a relative tolerance of 10–20% absorbs that on
    /// the graph families used in the experiments.
    pub fn theorem5_holds_with_tolerance(&self, relative: f64) -> bool {
        let eps = 1e-9;
        let slack = 1.0 + relative;
        self.theorem5_lower() <= self.phi_avg * slack + eps
            && self.phi_avg <= self.theorem5_upper() * slack + eps
    }
}

fn validate(g: &Graph) -> Result<(), ConductanceError> {
    if g.node_count() < 2 {
        return Err(ConductanceError::TooFewNodes);
    }
    if g.edge_count() == 0 {
        return Err(ConductanceError::NoEdges);
    }
    Ok(())
}

fn cuts_for(g: &Graph, method: Method) -> Result<Vec<Cut>, ConductanceError> {
    match method.resolve(g) {
        Method::Exact => {
            if g.node_count() > MAX_EXACT_NODES {
                return Err(ConductanceError::TooLargeForExact {
                    nodes: g.node_count(),
                    limit: MAX_EXACT_NODES,
                });
            }
            enumerate_cuts(g)
        }
        Method::SweepCut => Ok(candidate_cuts(g)),
        Method::Auto => unreachable!("resolve() never returns Auto"),
    }
}

/// Weight-ℓ conductance `φ_ℓ(G)` (Definition 1): minimum over cuts of `φ_ℓ(C)`.
///
/// # Errors
///
/// Returns an error for graphs with fewer than two nodes, no edges, or when
/// exact enumeration is requested on a graph that is too large.
pub fn weight_ell_conductance(
    g: &Graph,
    ell: Latency,
    method: Method,
) -> Result<f64, ConductanceError> {
    validate(g)?;
    let cuts = cuts_for(g, method)?;
    let mut best = f64::INFINITY;
    for cut in &cuts {
        if let Some(v) = phi_ell_of_cut(g, cut, ell) {
            best = best.min(v);
        }
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err(ConductanceError::NoEdges)
    }
}

/// Classical conductance: `φ_ℓ` with `ℓ = ℓ_max` (i.e. ignoring latencies).
///
/// # Errors
///
/// Same conditions as [`weight_ell_conductance`].
pub fn classical_conductance(g: &Graph, method: Method) -> Result<f64, ConductanceError> {
    weight_ell_conductance(g, g.max_latency().max(1), method)
}

/// Critical weighted conductance `φ*` and critical latency `ℓ*` (Definition 2):
/// over all candidate thresholds `ℓ` (the distinct latencies of the graph),
/// pick the one maximising `φ_ℓ / ℓ`.  Ties are broken towards the smaller
/// latency, which matches the paper's use of `ℓ*` as the cheapest threshold
/// achieving the critical ratio.
///
/// # Errors
///
/// Same conditions as [`weight_ell_conductance`].
pub fn critical_conductance(
    g: &Graph,
    method: Method,
) -> Result<CriticalConductance, ConductanceError> {
    validate(g)?;
    let cuts = cuts_for(g, method)?;
    let thresholds = g.distinct_latencies();

    // For every cut, a sorted list of its cut-edge latencies lets us evaluate
    // all thresholds with a single pass per cut.
    let mut profile: Vec<(Latency, f64)> = Vec::with_capacity(thresholds.len());
    let mut minima = vec![f64::INFINITY; thresholds.len()];
    for cut in &cuts {
        if !cut.is_proper() {
            continue;
        }
        let min_vol = cut.min_volume(g);
        if min_vol == 0 {
            continue;
        }
        let mut latencies: Vec<Latency> = g
            .edges()
            .filter(|rec| cut.contains(rec.u) != cut.contains(rec.v))
            .map(|rec| rec.latency)
            .collect();
        latencies.sort_unstable();
        for (i, &ell) in thresholds.iter().enumerate() {
            let count = latencies.partition_point(|&l| l <= ell);
            let value = count as f64 / min_vol as f64;
            minima[i] = minima[i].min(value);
        }
    }
    for (i, &ell) in thresholds.iter().enumerate() {
        if minima[i].is_finite() {
            profile.push((ell, minima[i]));
        }
    }
    if profile.is_empty() {
        return Err(ConductanceError::NoEdges);
    }

    let mut best = profile[0];
    for &(ell, phi) in &profile[1..] {
        let ratio = phi / ell as f64;
        let best_ratio = best.1 / best.0 as f64;
        if ratio > best_ratio + 1e-15 {
            best = (ell, phi);
        }
    }
    Ok(CriticalConductance {
        phi_star: best.1,
        ell_star: best.0,
        profile,
    })
}

/// Average weighted conductance `φ_avg(G)` (Definition 4): minimum over cuts
/// of the average cut conductance.
///
/// # Errors
///
/// Same conditions as [`weight_ell_conductance`].
pub fn average_conductance(g: &Graph, method: Method) -> Result<f64, ConductanceError> {
    validate(g)?;
    let cuts = cuts_for(g, method)?;
    let mut best = f64::INFINITY;
    for cut in &cuts {
        if let Some(v) = phi_avg_of_cut(g, cut) {
            best = best.min(v);
        }
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err(ConductanceError::NoEdges)
    }
}

/// Computes the full [`ConductanceReport`]: `φ*`, `ℓ*`, `φ_avg`, the classical
/// conductance, and the number of non-empty latency classes.
///
/// # Errors
///
/// Same conditions as [`weight_ell_conductance`].
pub fn analyze(g: &Graph, method: Method) -> Result<ConductanceReport, ConductanceError> {
    let critical = critical_conductance(g, method)?;
    let phi_avg = average_conductance(g, method)?;
    let phi_classical = classical_conductance(g, method)?;
    Ok(ConductanceReport {
        phi_star: critical.phi_star,
        ell_star: critical.ell_star,
        phi_avg,
        phi_classical,
        nonempty_classes: nonempty_latency_classes(g),
        profile: critical.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;
    use gossip_graph::GraphBuilder;

    #[test]
    fn unit_latency_clique_matches_classical_conductance() {
        // For unit latencies φ* equals the classical conductance (the paper's
        // remark after Definition 2).
        let g = generators::clique(6, 1).unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        assert_eq!(report.ell_star, 1);
        assert!((report.phi_star - report.phi_classical).abs() < 1e-12);
        // K_6 balanced cut: 9 cut edges / min volume 15 = 0.6.
        assert!((report.phi_star - 0.6).abs() < 1e-12);
        // Unit latencies: φ_avg is half of φ.
        assert!((report.phi_avg - 0.3).abs() < 1e-12);
        assert!(report.theorem5_holds());
    }

    #[test]
    fn dumbbell_critical_latency_is_bridge_latency() {
        let g = generators::dumbbell(4, 16).unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        // φ_1 = 0 (the only fast edges are inside the cliques; the bridge cut
        // has no fast cut edge), so the max of φ_ℓ/ℓ is reached at ℓ = 16.
        assert_eq!(report.ell_star, 16);
        assert!(report.phi_star > 0.0);
        assert!(report.theorem5_holds());
    }

    #[test]
    fn fast_bridge_dumbbell_prefers_latency_one() {
        let g = generators::dumbbell(4, 1).unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        assert_eq!(report.ell_star, 1);
        assert!(report.theorem5_holds());
    }

    #[test]
    fn two_level_cycle_profile_is_monotone() {
        // 8-cycle alternating fast (1) / slow (8) edges.
        let mut b = GraphBuilder::new(8);
        for u in 0..8 {
            let latency = if u % 2 == 0 { 1 } else { 8 };
            b.add_edge(u, (u + 1) % 8, latency).unwrap();
        }
        let g = b.build().unwrap();
        let critical = critical_conductance(&g, Method::Exact).unwrap();
        // φ_ℓ is non-decreasing in ℓ.
        for w in critical.profile.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let report = analyze(&g, Method::Exact).unwrap();
        assert!(report.theorem5_holds());
    }

    #[test]
    fn weight_ell_is_monotone_in_ell() {
        let g = generators::dumbbell(4, 10).unwrap();
        let phi_1 = weight_ell_conductance(&g, 1, Method::Exact).unwrap();
        let phi_5 = weight_ell_conductance(&g, 5, Method::Exact).unwrap();
        let phi_10 = weight_ell_conductance(&g, 10, Method::Exact).unwrap();
        assert!(phi_1 <= phi_5 + 1e-12);
        assert!(phi_5 <= phi_10 + 1e-12);
        assert_eq!(phi_1, 0.0); // bridge cut has no fast cut edge
        assert!(phi_10 > 0.0);
    }

    #[test]
    fn sweep_method_agrees_with_exact_on_small_graphs() {
        for g in [
            generators::dumbbell(5, 8).unwrap(),
            generators::cycle(10, 1).unwrap(),
            generators::ring_of_cliques(3, 4, 6).unwrap(),
        ] {
            let exact = analyze(&g, Method::Exact).unwrap();
            let sweep = analyze(&g, Method::SweepCut).unwrap();
            // Sweep minimises over a subset of cuts, so it can only over-estimate.
            assert!(sweep.phi_star >= exact.phi_star - 1e-9);
            assert!(sweep.phi_avg >= exact.phi_avg - 1e-9);
            // And it should be close on these structured families.
            assert!(sweep.phi_star <= exact.phi_star * 2.0 + 1e-9);
        }
    }

    #[test]
    fn auto_method_picks_something_reasonable_for_large_graphs() {
        let g = generators::ring_of_cliques(8, 8, 32).unwrap(); // 64 nodes
        let report = analyze(&g, Method::Auto).unwrap();
        assert!(report.phi_star > 0.0);
        assert!(report.phi_avg > 0.0);
        assert_eq!(report.nonempty_classes, 2);
    }

    #[test]
    fn errors_for_degenerate_graphs() {
        let single = GraphBuilder::new(1).build().unwrap();
        assert_eq!(
            analyze(&single, Method::Exact).unwrap_err(),
            ConductanceError::TooFewNodes
        );
        let edgeless = GraphBuilder::new(3).build().unwrap();
        assert_eq!(
            analyze(&edgeless, Method::Exact).unwrap_err(),
            ConductanceError::NoEdges
        );
        let big = generators::clique(30, 1).unwrap();
        assert!(matches!(
            analyze(&big, Method::Exact).unwrap_err(),
            ConductanceError::TooLargeForExact { .. }
        ));
    }

    #[test]
    fn disconnected_graph_has_zero_phi_star() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        assert_eq!(report.phi_star, 0.0);
        assert_eq!(report.phi_avg, 0.0);
    }

    #[test]
    fn theorem5_bounds_are_ordered() {
        let g = generators::ring_of_cliques(3, 4, 9).unwrap();
        let report = analyze(&g, Method::Exact).unwrap();
        assert!(report.theorem5_lower() <= report.theorem5_upper());
        assert!(report.theorem5_holds());
    }
}
