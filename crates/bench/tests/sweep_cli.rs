//! End-to-end test of the `experiments sweep` subcommand: it must write a
//! JSON report, and two runs with the same `--seed` must produce
//! byte-identical files even across separate processes.
//!
//! Lives in `gossip-bench` (the package that owns the binary) so Cargo
//! guarantees via `CARGO_BIN_EXE_experiments` that the invoked binary is
//! freshly built.

use gossip_bench::json::Json;

#[test]
fn sweep_subcommand_writes_reproducible_reports() {
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |out: &std::path::Path| {
        let output = std::process::Command::new(experiments)
            .args(["sweep", "--quick", "--trials", "2", "--seed", "7"])
            .arg("--out")
            .arg(out)
            .output()
            .expect("experiments sweep runs");
        assert!(
            output.status.success(),
            "experiments sweep failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(out).expect("report file written")
    };
    let first = run(&dir.join("a.json"));
    let second = run(&dir.join("b.json"));
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same --seed must produce byte-identical reports"
    );

    let parsed = Json::parse(std::str::from_utf8(&first).unwrap().trim()).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("gossip-sweep/v1")
    );
    let scenarios = parsed.get("scenarios").and_then(Json::as_array).unwrap();
    assert!(scenarios.len() >= 4, "sweep must cover the standard grid");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_bad_flags() {
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let output = std::process::Command::new(experiments)
        .args(["sweep", "--trials", "0"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let output = std::process::Command::new(experiments)
        .args(["sweep", "--bogus"])
        .output()
        .unwrap();
    assert!(!output.status.success());
}
