//! End-to-end test of the `experiments sweep` subcommand: it must write a
//! JSON report, and two runs with the same `--seed` must produce
//! byte-identical files even across separate processes.
//!
//! Lives in `gossip-bench` (the package that owns the binary) so Cargo
//! guarantees via `CARGO_BIN_EXE_experiments` that the invoked binary is
//! freshly built.

use gossip_bench::json::Json;

#[test]
fn sweep_subcommand_writes_reproducible_reports_and_timing_artifact() {
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |out: &std::path::Path, timing: &std::path::Path| {
        let output = std::process::Command::new(experiments)
            .args(["sweep", "--quick", "--trials", "2", "--seed", "7"])
            .arg("--out")
            .arg(out)
            .arg("--timing-out")
            .arg(timing)
            .output()
            .expect("experiments sweep runs");
        assert!(
            output.status.success(),
            "experiments sweep failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(out).expect("report file written")
    };
    let timing_path = dir.join("BENCH_sweep.json");
    let first = run(&dir.join("a.json"), &timing_path);
    let second = run(&dir.join("b.json"), &dir.join("BENCH_sweep2.json"));
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same --seed must produce byte-identical reports"
    );

    let parsed = Json::parse(std::str::from_utf8(&first).unwrap().trim()).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("gossip-sweep/v5")
    );
    let scenarios = parsed.get("scenarios").and_then(Json::as_array).unwrap();
    assert!(scenarios.len() >= 4, "sweep must cover the standard grid");

    // The wall-clock timing artifact rides along with every sweep.
    let timing = std::fs::read_to_string(&timing_path).expect("timing artifact written");
    let timing = Json::parse(timing.trim()).expect("timing artifact is valid JSON");
    assert_eq!(
        timing.get("schema").and_then(Json::as_str),
        Some("gossip-bench-timing/v2")
    );
    assert_eq!(timing.get("scale").and_then(Json::as_str), Some("quick"));
    assert!(timing.get("threads").and_then(Json::as_i64).unwrap() >= 1);
    assert!(timing.get("total_runs").and_then(Json::as_i64).unwrap() > 0);
    assert!(timing.get("elapsed_seconds").is_some());
    // Without --mem-stats the memory section is present but empty.
    assert_eq!(timing.get("mem_stats"), Some(&Json::Bool(false)));
    assert_eq!(timing.get("peak_mem_bytes").and_then(Json::as_i64), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn large_sweep_json_is_byte_identical_across_thread_counts() {
    // The Scale::Large grid, budget-capped to its smallest tier so the test
    // stays fast, run once on 1 worker thread and once on 4: the report files
    // must match byte for byte.  (The full-size large sweep runs in CI via
    // `experiments sweep --large`.)
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-threads-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |threads: &str, out: &std::path::Path| {
        let output = std::process::Command::new(experiments)
            .args([
                "sweep",
                "--large",
                "--max-size",
                "256",
                "--trials",
                "1",
                "--seed",
                "11",
            ])
            .arg("--out")
            .arg(out)
            .arg("--timing-out")
            .arg(dir.join(format!("timing-{threads}.json")))
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("experiments sweep runs");
        assert!(
            output.status.success(),
            "experiments sweep --large failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(out).expect("report file written")
    };
    let single = run("1", &dir.join("t1.json"));
    let parallel = run("4", &dir.join("t4.json"));
    assert_eq!(
        single, parallel,
        "thread count must not leak into the sweep report"
    );
    let parsed = Json::parse(std::str::from_utf8(&single).unwrap().trim()).unwrap();
    let scenarios = parsed.get("scenarios").and_then(Json::as_array).unwrap();
    // 7 families x 1 size x 2 profiles x 4 protocols (the 32768-star extras
    // are above the budget cap).
    assert_eq!(scenarios.len(), 7 * 2 * 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faults_flag_appends_the_fault_tier_and_stays_thread_deterministic() {
    // `--faults` appends the churn/blackout cells to the grid.  The faulted
    // report must be byte-identical across worker-thread counts, the fault
    // cells must carry a non-"none" profile, and the fault-free cells must
    // be untouched relative to a run without the flag.
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |faults: bool, threads: &str, out: &std::path::Path| {
        let mut args = vec!["sweep", "--quick", "--trials", "2", "--seed", "7"];
        if faults {
            args.push("--faults");
        }
        let output = std::process::Command::new(experiments)
            .args(&args)
            .arg("--out")
            .arg(out)
            .arg("--timing-out")
            .arg(dir.join(format!("timing-{faults}-{threads}.json")))
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("experiments sweep runs");
        assert!(
            output.status.success(),
            "experiments sweep --faults failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(out).expect("report file written")
    };
    let single = run(true, "1", &dir.join("f1.json"));
    let parallel = run(true, "4", &dir.join("f4.json"));
    assert_eq!(
        single, parallel,
        "thread count must not leak into the faulted sweep report"
    );
    let plain = run(false, "1", &dir.join("p1.json"));

    let faulted = Json::parse(std::str::from_utf8(&single).unwrap().trim()).unwrap();
    let plain = Json::parse(std::str::from_utf8(&plain).unwrap().trim()).unwrap();
    let faulted_cells = faulted.get("scenarios").and_then(Json::as_array).unwrap();
    let plain_cells = plain.get("scenarios").and_then(Json::as_array).unwrap();
    assert!(
        faulted_cells.len() > plain_cells.len(),
        "--faults must append cells to the grid"
    );
    // The shared prefix (the fault-free grid) is unchanged by the flag.
    for (with, without) in faulted_cells.iter().zip(plain_cells.iter()) {
        assert_eq!(
            with, without,
            "fault tier must not perturb fault-free cells"
        );
    }
    let profiles: Vec<&str> = faulted_cells
        .iter()
        .filter_map(|s| s.get("fault_profile").and_then(Json::as_str))
        .collect();
    assert_eq!(profiles.len(), faulted_cells.len());
    assert!(profiles.iter().any(|p| p.starts_with("churn(")));
    assert!(profiles[..plain_cells.len()].iter().all(|p| *p == "none"));
    let crashed: i64 = faulted_cells
        .iter()
        .filter_map(|s| s.get("crashes").and_then(Json::as_i64))
        .sum();
    assert!(crashed > 0, "fault tier must actually crash nodes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_flag_pins_the_pool_and_min_size_narrows_the_grid() {
    // `--threads N` must pin the rayon pool (recorded in the timing
    // artifact's `threads` field) without perturbing the report, and the
    // `--min-size`/`--max-size` window must narrow the grid to a single
    // tier — the shape the CI thread-scaling smoke relies on.
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |threads: &str, out: &std::path::Path, timing: &std::path::Path| {
        let output = std::process::Command::new(experiments)
            .args([
                "sweep",
                "--large",
                "--min-size",
                "256",
                "--max-size",
                "256",
                "--trials",
                "1",
                "--seed",
                "13",
                "--threads",
                threads,
            ])
            .arg("--out")
            .arg(out)
            .arg("--timing-out")
            .arg(timing)
            .output()
            .expect("experiments sweep runs");
        assert!(
            output.status.success(),
            "experiments sweep --threads failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(out).expect("report file written")
    };
    let t1_timing = dir.join("timing-1.json");
    let t3_timing = dir.join("timing-3.json");
    let single = run("1", &dir.join("t1.json"), &t1_timing);
    let pooled = run("3", &dir.join("t3.json"), &t3_timing);
    assert_eq!(
        single, pooled,
        "--threads must not leak into the sweep report"
    );
    let threads_of = |path: &std::path::Path| {
        let timing = std::fs::read_to_string(path).expect("timing artifact written");
        Json::parse(timing.trim())
            .expect("timing artifact is valid JSON")
            .get("threads")
            .and_then(Json::as_i64)
            .expect("timing artifact records the pool size")
    };
    assert_eq!(threads_of(&t1_timing), 1);
    assert_eq!(threads_of(&t3_timing), 3);

    // The window kept exactly the 256-node tier of the large grid.
    let parsed = Json::parse(std::str::from_utf8(&single).unwrap().trim()).unwrap();
    let scenarios = parsed.get("scenarios").and_then(Json::as_array).unwrap();
    assert_eq!(scenarios.len(), 7 * 2 * 4);

    // A window that excludes everything is a usage error, not an empty sweep.
    let output = std::process::Command::new(experiments)
        .args(["sweep", "--quick", "--min-size", "1000000"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mem_stats_flag_fills_the_timing_artifact_memory_section() {
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let dir = std::env::temp_dir().join(format!("gossip-sweep-mem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let timing_path = dir.join("timing.json");
    let output = std::process::Command::new(experiments)
        .args([
            "sweep",
            "--quick",
            "--trials",
            "1",
            "--seed",
            "3",
            "--mem-stats",
        ])
        .arg("--out")
        .arg(dir.join("report.json"))
        .arg("--timing-out")
        .arg(&timing_path)
        .output()
        .expect("experiments sweep runs");
    assert!(
        output.status.success(),
        "experiments sweep --mem-stats failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let timing = std::fs::read_to_string(&timing_path).unwrap();
    let timing = Json::parse(timing.trim()).unwrap();
    assert_eq!(
        timing.get("schema").and_then(Json::as_str),
        Some("gossip-bench-timing/v2")
    );
    assert_eq!(timing.get("mem_stats"), Some(&Json::Bool(true)));
    assert!(
        timing.get("peak_mem_bytes").and_then(Json::as_i64).unwrap() > 0,
        "peak memory must be aggregated from the sweep"
    );
    let scenario = timing
        .get("peak_mem_scenario")
        .and_then(Json::as_str)
        .unwrap();
    assert!(!scenario.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_rejects_bad_flags() {
    let experiments = env!("CARGO_BIN_EXE_experiments");
    let output = std::process::Command::new(experiments)
        .args(["sweep", "--trials", "0"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let output = std::process::Command::new(experiments)
        .args(["sweep", "--bogus"])
        .output()
        .unwrap();
    assert!(!output.status.success());
}
