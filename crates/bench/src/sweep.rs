//! The parallel scenario-sweep runner.
//!
//! A [`SweepSpec`] describes a grid of *scenarios* — every combination of
//! {graph family × size × latency profile × protocol} — and a number of
//! independent trials per scenario.  [`SweepSpec::run`] executes all trials
//! in parallel with `rayon`, seeding each trial's [`SmallRng`] from a stable
//! mix of the sweep's base seed and the trial's coordinates, so
//!
//! * a sweep is reproducible: the same spec and base seed produce the same
//!   [`SweepReport`] (and therefore byte-identical JSON) regardless of thread
//!   count or scheduling, and
//! * trials are independent: adding a scenario does not perturb the seeds of
//!   the others.
//!
//! Per-scenario round counts are aggregated into min/median/p95/max plus the
//! mean, which is how related empirical gossip studies (Haeupler's rumor
//! spreading experiments; Censor-Hillel et al.'s poorly-connected-world
//! simulations) summarise bound-shape curves across graph families.
//!
//! The opt-in [fault tier](SweepSpec::fault_tier) reruns the lightweight
//! protocols under seed-derived churn ([`ChurnSpec`] → [`FaultPlan`]): those
//! cells may legitimately not complete, and their report rows carry the
//! engine's graceful-degradation aggregates (crashes absorbed, residual
//! components, stranded rumors, re-dissemination latency) instead of
//! all-clean completions.  A fault cell hashes its churn spec into the trial
//! seeds, so adding the tier leaves every fault-free cell's results — and
//! the committed baseline — byte-identical.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use gossip_core::{flooding, pattern, push_pull, spanner_broadcast, unified};
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, Graph, Latency, NodeId};
use gossip_sim::protocols::{RandomPushPull, RoundRobinFlood};
use gossip_sim::{ChurnSpec, FaultPlan, FaultReport, RumorId, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::json::Json;
use crate::{Scale, Table};

/// A graph family of the sweep grid, parameterised only by the node budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// Complete graph on `n` nodes.
    Clique,
    /// Cycle on `n` nodes.
    Cycle,
    /// Near-square grid with about `n` nodes.
    Grid,
    /// Star with `n - 1` leaves.
    Star,
    /// Two cliques of `n / 2` nodes joined by a single bridge of latency
    /// [`BRIDGE_LATENCY`] (the paper's bottleneck-cut family).
    Dumbbell,
    /// Four cliques of `n / 4` nodes in a ring whose inter-clique bridges
    /// have latency [`BRIDGE_LATENCY`].
    RingOfCliques,
    /// Balanced binary tree on `n` nodes.
    BinaryTree,
    /// Two cliques joined by a *path* of `bridge_len` bridge edges (each of
    /// latency [`BRIDGE_LATENCY`]): a single-edge-wide cut that additionally
    /// costs `bridge_len` slow hops in series.
    Barbell {
        /// Number of bridge edges between the two cliques.
        bridge_len: usize,
    },
    /// Connected Erdős–Rényi graph with edge probability `p`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
}

impl GraphFamily {
    /// Stable identifier used in reports.
    pub fn name(&self) -> String {
        match self {
            GraphFamily::Clique => "clique".to_string(),
            GraphFamily::Cycle => "cycle".to_string(),
            GraphFamily::Grid => "grid".to_string(),
            GraphFamily::Star => "star".to_string(),
            GraphFamily::Dumbbell => "dumbbell".to_string(),
            GraphFamily::RingOfCliques => "ring-of-cliques".to_string(),
            GraphFamily::BinaryTree => "binary-tree".to_string(),
            GraphFamily::Barbell { bridge_len } => format!("barbell(bridge={bridge_len})"),
            GraphFamily::ErdosRenyi { p } => format!("erdos-renyi(p={p})"),
        }
    }

    /// `true` for the families whose edge count grows quadratically in `n`
    /// (cliques and clique compounds, dense random graphs) — the ones a
    /// [`SweepSpec::dense_size_cap`] protects against memory blow-up.
    pub fn is_dense(&self) -> bool {
        matches!(
            self,
            GraphFamily::Clique
                | GraphFamily::Dumbbell
                | GraphFamily::RingOfCliques
                | GraphFamily::Barbell { .. }
                | GraphFamily::ErdosRenyi { .. }
        )
    }

    /// `true` when [`build`](Self::build) ignores its RNG: the instance is a
    /// pure function of `(family, n)`, so the sweep builds it **once** and
    /// shares it across trials and latency profiles instead of re-running the
    /// generator per trial (clique construction at 4096 used to cost seconds
    /// per cell).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, GraphFamily::ErdosRenyi { .. })
    }

    /// Builds an instance with roughly `n` nodes: unit latencies everywhere
    /// except the dumbbell / ring-of-cliques bridges, which get
    /// [`BRIDGE_LATENCY`] so the [`LatencyProfile::AsBuilt`] profile
    /// preserves the slow-cut structure these families exist for.  Every
    /// other profile re-draws all edge latencies afterwards.
    pub fn build(&self, n: usize, rng: &mut SmallRng) -> Graph {
        let n = n.max(4);
        match self {
            GraphFamily::Clique => generators::clique(n, 1),
            GraphFamily::Cycle => generators::cycle(n, 1),
            GraphFamily::Grid => {
                let rows = (n as f64).sqrt().round().max(2.0) as usize;
                let cols = n.div_ceil(rows).max(2);
                generators::grid(rows, cols, 1)
            }
            GraphFamily::Star => generators::star(n, 1),
            GraphFamily::Dumbbell => generators::dumbbell((n / 2).max(2), BRIDGE_LATENCY),
            GraphFamily::RingOfCliques => {
                generators::ring_of_cliques(4, (n / 4).max(2), BRIDGE_LATENCY)
            }
            GraphFamily::BinaryTree => generators::binary_tree(n, 1),
            GraphFamily::Barbell { bridge_len } => {
                // An invalid bridge_len must fail loudly (via the expect
                // below), not silently build a graph the scenario name lies
                // about.
                let side = (n.saturating_sub(bridge_len.saturating_sub(1)) / 2).max(2);
                generators::barbell(side, *bridge_len, BRIDGE_LATENCY)
            }
            GraphFamily::ErdosRenyi { p } => generators::erdos_renyi(n, *p, 1, rng),
        }
        .expect("sweep families are valid for n >= 4")
    }
}

/// Latency of the dumbbell / ring-of-cliques bridges in freshly built
/// instances (the cut edges the paper's `ℓ*/φ*` regime hinges on).
pub const BRIDGE_LATENCY: u64 = 16;

/// A latency assignment of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyProfile {
    /// Keeps the latencies the family builds: unit everywhere except the
    /// dumbbell / ring-of-cliques bridges ([`BRIDGE_LATENCY`]), so the
    /// structured families keep their slow cuts.
    AsBuilt,
    /// Fast (1) with probability `fast_probability`, otherwise `slow`.
    TwoLevel {
        /// Latency of slow edges.
        slow: u64,
        /// Probability that an edge is fast.
        fast_probability: f64,
    },
    /// Independent uniform latency in `[1, max]`.
    UniformRandom {
        /// Largest possible latency.
        max: u64,
    },
    /// Heavy-tailed powers of two over `classes` latency classes.
    PowerLaw {
        /// Number of latency classes.
        classes: usize,
    },
    /// Exactly `round(slow_fraction · m)` edges (chosen uniformly without
    /// replacement) get latency `slow`; the rest are fast (latency 1).
    Bimodal {
        /// Latency of slow edges.
        slow: u64,
        /// Fraction of edges that is slow.
        slow_fraction: f64,
    },
}

impl LatencyProfile {
    /// Stable identifier used in reports.
    pub fn name(&self) -> String {
        match self {
            LatencyProfile::AsBuilt => "as-built".to_string(),
            LatencyProfile::TwoLevel {
                slow,
                fast_probability,
            } => {
                format!("two-level(slow={slow},fast_p={fast_probability})")
            }
            LatencyProfile::UniformRandom { max } => format!("uniform(1..={max})"),
            LatencyProfile::PowerLaw { classes } => format!("power-law(classes={classes})"),
            LatencyProfile::Bimodal {
                slow,
                slow_fraction,
            } => format!("bimodal(slow={slow},slow_frac={slow_fraction})"),
        }
    }

    /// The equivalent [`LatencyScheme`] (for [`LatencyProfile::AsBuilt`] the
    /// scheme is unused — [`apply`](Self::apply) keeps the built latencies).
    pub fn scheme(&self) -> LatencyScheme {
        match *self {
            LatencyProfile::AsBuilt => LatencyScheme::Uniform(1),
            LatencyProfile::TwoLevel {
                slow,
                fast_probability,
            } => LatencyScheme::TwoLevel {
                fast: 1,
                slow,
                fast_probability,
            },
            LatencyProfile::UniformRandom { max } => LatencyScheme::UniformRandom { min: 1, max },
            LatencyProfile::PowerLaw { classes } => LatencyScheme::PowerLawClasses { classes },
            LatencyProfile::Bimodal {
                slow,
                slow_fraction,
            } => LatencyScheme::BimodalFraction {
                slow,
                slow_fraction,
            },
        }
    }

    /// Applies the profile to a freshly built instance.
    pub fn apply(&self, g: &Graph, rng: &mut SmallRng) -> Graph {
        match self {
            LatencyProfile::AsBuilt => g.clone(),
            _ => self
                .scheme()
                .apply(g, rng)
                .expect("re-weighting preserves validity"),
        }
    }
}

/// A dissemination protocol of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Classical random push–pull (Theorem 29 regime), one-to-all from node 0.
    PushPull,
    /// Round-robin flooding baseline, one-to-all from node 0.
    Flooding,
    /// Random push–pull running to *all-to-all* completion: every node must
    /// learn every rumor.  The regime where per-node knowledge — and the
    /// engine's log memory — saturates; opened past 10⁴ nodes by the
    /// interval-log/shadow engine.
    PushPullAllToAll,
    /// Round-robin flooding to all-to-all completion.
    FloodingAllToAll,
    /// Spanner broadcast with known diameter (Theorem 20/25 regime).
    SpannerBroadcast,
    /// Pattern broadcast with known diameter (Lemmas 26–28).
    PatternBroadcast,
    /// The unified algorithm (Theorem 31): push–pull raced against the
    /// spanner route.
    Unified,
}

/// What one sweep trial measured.
#[derive(Debug, Clone, Copy)]
pub struct TrialMeasurement {
    /// Rounds until the dissemination goal (or the internal cap).
    pub rounds: u64,
    /// Exchanges initiated.
    pub activations: u64,
    /// Whether the goal was reached.
    pub completed: bool,
    /// The engine's full deterministic memory counters, when reported —
    /// the source of the `peak_mem_bytes` (via
    /// [`gossip_sim::MemStats::peak_engine_bytes`]), paged-set and
    /// saturation-collapse aggregates in the report.
    pub mem: Option<gossip_sim::MemStats>,
    /// Graceful-degradation accounting; present exactly for trials run with
    /// a [`ChurnSpec`] attached to the scenario.
    pub faults: Option<FaultReport>,
}

impl ProtocolKind {
    /// Stable identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::PushPull => "push-pull",
            ProtocolKind::Flooding => "flooding",
            ProtocolKind::PushPullAllToAll => "push-pull-all-to-all",
            ProtocolKind::FloodingAllToAll => "flooding-all-to-all",
            ProtocolKind::SpannerBroadcast => "spanner-broadcast",
            ProtocolKind::PatternBroadcast => "pattern-broadcast",
            ProtocolKind::Unified => "unified",
        }
    }

    /// `true` for the multi-phase algorithms (spanner / pattern / unified)
    /// whose setup phases dominate at large `n` — the ones a
    /// [`SweepSpec::heavy_size_cap`] restricts to moderate sizes.
    pub fn is_heavyweight(&self) -> bool {
        matches!(
            self,
            ProtocolKind::SpannerBroadcast | ProtocolKind::PatternBroadcast | ProtocolKind::Unified
        )
    }

    /// `true` for the protocols a fault-injected sweep cell may use: the
    /// single-phase engine protocols whose semantics under churn the
    /// `fault_equivalence` suite pins byte-identical across engines.  The
    /// multi-phase algorithms assume a static topology between phases, so
    /// the sweep never pairs them with a [`ChurnSpec`].
    pub fn supports_faults(&self) -> bool {
        matches!(
            self,
            ProtocolKind::PushPull
                | ProtocolKind::Flooding
                | ProtocolKind::PushPullAllToAll
                | ProtocolKind::FloodingAllToAll
        )
    }

    /// Runs one trial of this protocol (broadcasts start at node 0).
    pub fn run(&self, g: &Graph, seed: u64) -> TrialMeasurement {
        self.run_with_diameter_bound(g, None, seed)
    }

    /// Runs one fault-injected trial: derives a [`FaultPlan`] from the trial
    /// seed via [`FaultPlan::random_churn`] and drives the engine directly
    /// with the plan attached, so the measurement carries the engine's
    /// graceful-degradation section.  Faulted runs may legitimately *not*
    /// complete (the source can crash, rumors can strand on dead nodes);
    /// the round cap mirrors the plain protocol wrappers' generous budget.
    ///
    /// # Panics
    ///
    /// Panics when called on a protocol that does not
    /// [support faults](Self::supports_faults) — the sweep grid never
    /// constructs such a cell.
    pub fn run_faulted(&self, g: &Graph, spec: &ChurnSpec, seed: u64) -> TrialMeasurement {
        let plan = FaultPlan::random_churn(g, seed ^ 0x04, spec);
        let cap = (g.node_count() as u64)
            .saturating_mul(g.max_latency().max(1))
            .saturating_mul(4)
            .max(10_000);
        let source = NodeId::new(0);
        let config = SimConfig::new(seed ^ 0x03).max_rounds(cap).faults(plan);
        let config = match self {
            ProtocolKind::PushPull | ProtocolKind::Flooding => config
                .termination(Termination::AllKnowRumorOf(source))
                .track_rumor(RumorId::of_node(source)),
            ProtocolKind::PushPullAllToAll | ProtocolKind::FloodingAllToAll => {
                config.termination(Termination::AllKnowAll)
            }
            _ => panic!(
                "fault injection supports the single-phase protocols only, not {}",
                self.name()
            ),
        };
        let report = match self {
            ProtocolKind::PushPull | ProtocolKind::PushPullAllToAll => {
                Simulation::new(g, config).run(&mut RandomPushPull::new(g))
            }
            _ => Simulation::new(g, config).run(&mut RoundRobinFlood::new(g)),
        };
        TrialMeasurement {
            rounds: report.rounds,
            activations: report.activations,
            completed: report.completed,
            mem: report.mem,
            faults: report.faults,
        }
    }

    /// [`run`](Self::run) with the diameter bound the heavy protocols' "known
    /// D" oracle would compute supplied by the caller (`None` computes it on
    /// the spot).  The sweep computes the bound once per shared topology and
    /// feeds it to every trial over that topology, so the heavy protocols at
    /// 8192+ nodes don't each redo the Dijkstra sweeps.  The lightweight
    /// protocols ignore the bound entirely.
    pub fn run_with_diameter_bound(
        &self,
        g: &Graph,
        d: Option<Latency>,
        seed: u64,
    ) -> TrialMeasurement {
        let from_report = |r: gossip_core::DisseminationReport| TrialMeasurement {
            rounds: r.rounds,
            activations: r.activations,
            completed: r.completed,
            mem: r.mem,
            faults: None,
        };
        let bound = || d.unwrap_or_else(|| gossip_core::diameter_bound(g));
        match self {
            ProtocolKind::PushPull => from_report(push_pull::broadcast(g, NodeId::new(0), seed)),
            ProtocolKind::Flooding => from_report(flooding::broadcast(g, NodeId::new(0), seed)),
            ProtocolKind::PushPullAllToAll => from_report(push_pull::all_to_all(g, seed)),
            ProtocolKind::FloodingAllToAll => from_report(flooding::all_to_all(g, seed)),
            ProtocolKind::SpannerBroadcast => {
                from_report(spanner_broadcast::run_known_diameter_with(g, bound(), seed))
            }
            ProtocolKind::PatternBroadcast => {
                from_report(pattern::run_known_diameter_with(g, bound(), seed))
            }
            ProtocolKind::Unified => {
                let r = unified::run_known_latencies_with(g, NodeId::new(0), bound(), seed);
                TrialMeasurement {
                    rounds: r.rounds,
                    activations: r.push_pull.activations + r.spanner_route.activations,
                    completed: r.completed,
                    mem: None,
                    faults: None,
                }
            }
        }
    }
}

/// The full description of a sweep: the grid plus trial count and base seed.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Graph families to sweep over.
    pub families: Vec<GraphFamily>,
    /// Node budgets per family.
    pub sizes: Vec<usize>,
    /// Latency profiles to apply.
    pub profiles: Vec<LatencyProfile>,
    /// Protocols to measure.
    pub protocols: Vec<ProtocolKind>,
    /// Independent trials per scenario.
    pub trials: u64,
    /// Base seed every trial seed is derived from.
    pub base_seed: u64,
    /// If set, grid cells pairing a [dense](GraphFamily::is_dense) family
    /// with a size above the cap are skipped (quadratic edge counts exhaust
    /// memory long before sparse families do).
    pub dense_size_cap: Option<usize>,
    /// If set, grid cells pairing a
    /// [heavyweight](ProtocolKind::is_heavyweight) protocol with a size above
    /// the cap are skipped.
    pub heavy_size_cap: Option<usize>,
    /// Extra scenario cells appended after the cross product (e.g. the
    /// extra-large sparse instances of the cheap protocols).  Caps do not
    /// apply to these — they are opted in explicitly.
    pub extra: Vec<Scenario>,
}

impl SweepSpec {
    /// The default grid: seven families, sizes by scale, four latency
    /// profiles, four protocols.
    ///
    /// * `Scale::Quick` shrinks sizes and trials for tests and `cargo bench`.
    /// * `Scale::Full` is the grid recorded in `EXPERIMENTS.md`.
    /// * `Scale::Large` opens the `10³`–`10⁴`-node regime: sizes up to 4096
    ///   across every family (heavyweight protocols capped at 1024), plus
    ///   32768-node star cells for the cheap protocols — including
    ///   **all-to-all** runs, where every node's knowledge saturates and only
    ///   the interval-compressed, shadow-truncated acquisition logs keep the
    ///   engine inside a 1 GB budget (flat logs would need ~4 GB).
    /// * `Scale::Huge` adds the tier beyond: 65536- and 131072-node
    ///   all-to-all stars (opened by the paged, saturation-collapsing rumor
    ///   sets — dense bitsets would cost ~4.3 GB at the top size), a
    ///   131072-node one-to-all star, and a 16384-node Erdős–Rényi
    ///   broadcast.
    pub fn standard(scale: Scale) -> Self {
        let families = vec![
            GraphFamily::Clique,
            GraphFamily::Cycle,
            GraphFamily::Grid,
            GraphFamily::Dumbbell,
            GraphFamily::RingOfCliques,
            GraphFamily::Barbell { bridge_len: 4 },
            GraphFamily::ErdosRenyi { p: 0.2 },
        ];
        let protocols = vec![
            ProtocolKind::PushPull,
            ProtocolKind::Flooding,
            ProtocolKind::SpannerBroadcast,
            ProtocolKind::Unified,
        ];
        let bimodal = LatencyProfile::Bimodal {
            slow: 16,
            slow_fraction: 0.25,
        };
        let base_seed = 0xC057_0F60_5517;
        match scale {
            Scale::Quick | Scale::Full => SweepSpec {
                families,
                sizes: scale.pick(vec![12, 24], vec![16, 32, 48]),
                profiles: vec![
                    LatencyProfile::AsBuilt,
                    LatencyProfile::TwoLevel {
                        slow: 16,
                        fast_probability: 0.5,
                    },
                    LatencyProfile::UniformRandom { max: 12 },
                    bimodal,
                ],
                protocols,
                trials: scale.pick(3, 7),
                base_seed,
                dense_size_cap: None,
                heavy_size_cap: None,
                extra: Vec::new(),
            },
            Scale::Large | Scale::Huge => {
                // 32768-node star cells: one-to-all for both cheap protocols,
                // plus the all-to-all runs the interval-log/shadow engine
                // opened (every node ends up knowing all 32768 rumors).
                let mut extra: Vec<Scenario> = [
                    ProtocolKind::PushPull,
                    ProtocolKind::Flooding,
                    ProtocolKind::PushPullAllToAll,
                    ProtocolKind::FloodingAllToAll,
                ]
                .into_iter()
                .map(|protocol| Scenario {
                    family: GraphFamily::Star,
                    size: 32768,
                    profile: LatencyProfile::AsBuilt,
                    protocol,
                    faults: None,
                })
                .collect();
                // Heavy-protocol cells past the old 1024 wall: the
                // diameter-bound oracle replaces the all-pairs exact diameter
                // (the former `O(n·m·log n)` setup bottleneck), the phase
                // simulations run over the spanner subgraph, and ℓ-DTG no
                // longer snapshots rumor sets per exchange — together cheap
                // enough for 8192–16384-node multi-phase runs.
                extra.extend(
                    [
                        ProtocolKind::SpannerBroadcast,
                        ProtocolKind::PatternBroadcast,
                        ProtocolKind::Unified,
                    ]
                    .into_iter()
                    .map(|protocol| Scenario {
                        family: GraphFamily::Star,
                        size: 8192,
                        profile: LatencyProfile::AsBuilt,
                        protocol,
                        faults: None,
                    }),
                );
                extra.extend(
                    [ProtocolKind::SpannerBroadcast, ProtocolKind::Unified]
                        .into_iter()
                        .flat_map(|protocol| {
                            [
                                Scenario {
                                    family: GraphFamily::Star,
                                    size: 16384,
                                    profile: LatencyProfile::AsBuilt,
                                    protocol,
                                    faults: None,
                                },
                                Scenario {
                                    family: GraphFamily::Grid,
                                    size: 8192,
                                    profile: LatencyProfile::AsBuilt,
                                    protocol,
                                    faults: None,
                                },
                            ]
                        }),
                );
                if scale == Scale::Huge {
                    // All-to-all at 65536 *and* 131072 (paged rumor sets plus
                    // saturation collapse keep the dissemination state in the
                    // tens of MB — dense bitsets would need ~4.3 GB at the
                    // top size), one-to-all past 10^5, and a random-topology
                    // broadcast at 16384.
                    extra.extend(
                        [
                            ProtocolKind::PushPullAllToAll,
                            ProtocolKind::FloodingAllToAll,
                        ]
                        .into_iter()
                        .flat_map(|protocol| {
                            [65536, 131072].into_iter().map(move |size| Scenario {
                                family: GraphFamily::Star,
                                size,
                                profile: LatencyProfile::AsBuilt,
                                protocol,
                                faults: None,
                            })
                        }),
                    );
                    extra.extend(
                        [ProtocolKind::PushPull, ProtocolKind::Flooding]
                            .into_iter()
                            .map(|protocol| Scenario {
                                family: GraphFamily::Star,
                                size: 131072,
                                profile: LatencyProfile::AsBuilt,
                                protocol,
                                faults: None,
                            }),
                    );
                    extra.extend(
                        [ProtocolKind::PushPull, ProtocolKind::Flooding]
                            .into_iter()
                            .map(|protocol| Scenario {
                                family: GraphFamily::ErdosRenyi { p: 0.001 },
                                size: 16384,
                                profile: LatencyProfile::AsBuilt,
                                protocol,
                                faults: None,
                            }),
                    );
                }
                SweepSpec {
                    families,
                    sizes: vec![256, 1024, 4096],
                    profiles: vec![LatencyProfile::AsBuilt, bimodal],
                    protocols,
                    trials: 2,
                    base_seed,
                    // Dense families deliberately run at the full 4096 (the
                    // cap mechanism exists for user specs that push further).
                    dense_size_cap: None,
                    // The heavy protocols now clear the whole grid (max size
                    // 4096); the cap at 8192 matches the extra cells above
                    // and guards user specs that push the sizes further.
                    heavy_size_cap: Some(8192),
                    extra,
                }
            }
        }
    }

    /// Number of scenarios in the grid (after size caps, including extras).
    pub fn scenario_count(&self) -> usize {
        self.scenarios().len()
    }

    /// Number of individual trials the sweep will execute.
    pub fn trial_count(&self) -> u64 {
        self.scenario_count() as u64 * self.trials
    }

    /// Number of fault-injected cells in the grid (including extras).
    pub fn fault_cell_count(&self) -> usize {
        self.scenarios()
            .iter()
            .filter(|s| s.faults.is_some())
            .count()
    }

    /// The opt-in fault-injection tier: cells that rerun the lightweight
    /// protocols under seed-derived churn and report graceful degradation
    /// instead of clean dissemination.  Appended to
    /// [`extra`](Self::extra) by `experiments sweep --faults`; never part
    /// of the default grid, so the committed Large baseline (and every
    /// fault-free cell's trial seeds) are untouched.
    ///
    /// Two regimes per family, on the two topology extremes the fault model
    /// stresses most — the star (hub crash strands every leaf) and a sparse
    /// Erdős–Rényi instance (cuts fragment the residual graph):
    ///
    /// * **churn**: 10% of nodes crash and rejoin amnesiac 24 rounds later,
    ///   2% of edges cut, 5% message loss — the run should usually still
    ///   complete, and the report carries re-dissemination latency.
    /// * **blackout**: 20% of nodes crash for good, 5% of edges cut — the
    ///   run degrades; the report carries residual components and stranded
    ///   rumors.
    pub fn fault_tier(scale: Scale) -> Vec<Scenario> {
        let size = match scale {
            Scale::Quick => 24,
            Scale::Full => 48,
            Scale::Large | Scale::Huge => 1024,
        };
        let window = (1, (size as u64 / 2).clamp(16, 96));
        let churn = ChurnSpec {
            crash_permille: 100,
            rejoin_after: Some(24),
            cut_permille: 20,
            loss_ppm: 50_000,
            window,
        };
        let blackout = ChurnSpec {
            crash_permille: 200,
            rejoin_after: None,
            cut_permille: 50,
            loss_ppm: 0,
            window,
        };
        // Sparse at 1024 nodes (≈ 5 · n edges), denser for the tiny tiers so
        // the instance stays connected.
        let p = if size >= 1024 { 0.01 } else { 0.3 };
        let mut out = Vec::new();
        for family in [GraphFamily::Star, GraphFamily::ErdosRenyi { p }] {
            for faults in [churn, blackout] {
                for protocol in [ProtocolKind::PushPull, ProtocolKind::Flooding] {
                    out.push(Scenario {
                        family,
                        size,
                        profile: LatencyProfile::AsBuilt,
                        protocol,
                        faults: Some(faults),
                    });
                }
            }
        }
        // Knowledge saturation under churn: all-to-all on the star, where
        // every hub outage suspends the whole exchange fabric.
        out.push(Scenario {
            family: GraphFamily::Star,
            size,
            profile: LatencyProfile::AsBuilt,
            protocol: ProtocolKind::PushPullAllToAll,
            faults: Some(churn),
        });
        out
    }

    /// Expands the grid in deterministic (family, size, profile, protocol)
    /// nested order, skipping cells excluded by the size caps, then appends
    /// the [`extra`](Self::extra) cells.
    fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &size in &self.sizes {
                if self
                    .dense_size_cap
                    .is_some_and(|cap| family.is_dense() && size > cap)
                {
                    continue;
                }
                for &profile in &self.profiles {
                    for &protocol in &self.protocols {
                        if self
                            .heavy_size_cap
                            .is_some_and(|cap| protocol.is_heavyweight() && size > cap)
                        {
                            continue;
                        }
                        out.push(Scenario {
                            family,
                            size,
                            profile,
                            protocol,
                            faults: None,
                        });
                    }
                }
            }
        }
        out.extend(self.extra.iter().copied());
        out
    }

    /// Runs every trial of the sweep in parallel and aggregates per scenario.
    pub fn run(&self) -> SweepReport {
        let scenarios = self.scenarios();
        let cached = build_topology_cache(&scenarios);

        let tasks: Vec<(usize, Scenario, u64)> = scenarios
            .iter()
            .enumerate()
            .flat_map(|(index, &scenario)| {
                (0..self.trials).map(move |trial| (index, scenario, trial))
            })
            .collect();

        let base_seed = self.base_seed;
        let cached = &cached;
        let outcomes: Vec<TrialOutcome> = tasks
            .into_par_iter()
            .map(move |(index, scenario, trial)| {
                let entry = cached.get(&(scenario.family.name(), scenario.size));
                let base = entry.map(|(g, _)| Arc::as_ref(g));
                let bound = entry.and_then(|(_, b)| *b);
                run_trial(base_seed, index, scenario, trial, base, bound)
            })
            .collect();

        let mut per_scenario: Vec<Vec<TrialOutcome>> = vec![Vec::new(); scenarios.len()];
        for outcome in outcomes {
            per_scenario[outcome.scenario_index].push(outcome);
        }

        let summaries = scenarios
            .iter()
            .zip(per_scenario)
            .map(|(scenario, trials)| ScenarioSummary::aggregate(scenario, &trials))
            .collect();

        SweepReport {
            trials: self.trials,
            base_seed: self.base_seed,
            scenarios: summaries,
        }
    }
}

/// Shared-topology cache key: `(family name, size)`.
pub(crate) type TopologyKey = (String, usize);

/// Builds the shared topology cache for a scenario list.
///
/// Deterministic topologies are pure functions of (family, size): build each
/// one once, in parallel, and share it across every trial and latency
/// profile of every cell that uses it.  (Random families still build per
/// trial from the trial's own seed.)  Graph builds ignore the RNG for these
/// families, so cached instances are bit-identical to per-trial builds and
/// reports are unchanged.
///
/// Heavy protocols consult the diameter-bound oracle; when the cached
/// `AsBuilt` topology is the graph they'll actually run on, the bound is
/// computed once alongside the build and shared across trials.  (Other
/// profiles re-weight per trial, so their bound is per-trial.)
///
/// `BTreeMap`/`BTreeSet` keep every stage of the build — the distinct-key
/// walk, the parallel build order, and the resulting map — independent of
/// insertion order, so the cache (and anything that ever comes to iterate
/// it) is deterministic for *any* permutation of the scenario list, not
/// just the sorted one `scenarios()` happens to produce.
pub(crate) fn build_topology_cache(
    scenarios: &[Scenario],
) -> BTreeMap<TopologyKey, (Arc<Graph>, Option<Latency>)> {
    let mut distinct: BTreeMap<TopologyKey, GraphFamily> = BTreeMap::new();
    let mut needs_bound: BTreeSet<TopologyKey> = BTreeSet::new();
    for s in scenarios.iter().filter(|s| s.family.is_deterministic()) {
        distinct
            .entry((s.family.name(), s.size))
            .or_insert(s.family);
        if s.protocol.is_heavyweight() && matches!(s.profile, LatencyProfile::AsBuilt) {
            needs_bound.insert((s.family.name(), s.size));
        }
    }
    distinct
        .into_iter()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(key, family)| {
            // The RNG is unused for deterministic families; seed fixed.
            let mut rng = SmallRng::seed_from_u64(0);
            let graph = Arc::new(family.build(key.1, &mut rng));
            let bound = needs_bound
                .contains(&key)
                .then(|| gossip_core::diameter_bound(&graph));
            (key, (graph, bound))
        })
        .collect()
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Graph family of the cell.
    pub family: GraphFamily,
    /// Node budget of the cell.
    pub size: usize,
    /// Latency profile of the cell.
    pub profile: LatencyProfile,
    /// Protocol of the cell.
    pub protocol: ProtocolKind,
    /// Seed-derived churn to inject (`None` = the fault-free cell every
    /// sweep ran before the fault tier existed; such cells keep their exact
    /// pre-fault trial seeds).  Only [fault-capable
    /// protocols](ProtocolKind::supports_faults) may carry `Some`.
    pub faults: Option<ChurnSpec>,
}

/// Stable identifier of a churn spec, used in reports and trial-seed
/// derivation (`pm` = permille, `ppm` = parts per million).
pub fn churn_label(spec: &ChurnSpec) -> String {
    let rejoin = spec
        .rejoin_after
        .map_or("never".to_string(), |d| format!("+{d}"));
    format!(
        "churn(crash={}pm,rejoin={},cut={}pm,loss={}ppm,rounds={}..={})",
        spec.crash_permille, rejoin, spec.cut_permille, spec.loss_ppm, spec.window.0, spec.window.1
    )
}

/// The measured outcome of a single trial.
#[derive(Debug, Clone)]
struct TrialOutcome {
    scenario_index: usize,
    rounds: u64,
    activations: u64,
    completed: bool,
    nodes: usize,
    edges: usize,
    mem: Option<gossip_sim::MemStats>,
    faults: Option<FaultReport>,
}

/// Stable mix of the sweep seed with a trial's coordinates: FNV-1a over the
/// scenario's *content* (family, size, profile, protocol, and — for fault
/// cells only — the churn label), finished with a SplitMix64 avalanche.
///
/// Hashing the scenario's identity rather than its position in the grid means
/// inserting, removing or reordering other scenarios leaves this scenario's
/// trial seeds — and therefore its results — unchanged, so reports stay
/// comparable as the grid evolves.  Fault-free cells hash exactly the
/// pre-fault-tier content string, so their seeds (and the whole committed
/// baseline) survived the `faults` field unchanged.
fn trial_seed(base: u64, scenario: &Scenario, trial: u64) -> u64 {
    let mut key = format!(
        "{}|{}|{}|{}",
        scenario.family.name(),
        scenario.size,
        scenario.profile.name(),
        scenario.protocol.name()
    );
    if let Some(spec) = &scenario.faults {
        key.push_str("|faults=");
        key.push_str(&churn_label(spec));
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in key.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base
        .wrapping_add(hash.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(trial.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_trial(
    base_seed: u64,
    scenario_index: usize,
    scenario: Scenario,
    trial: u64,
    cached_base: Option<&Graph>,
    cached_bound: Option<Latency>,
) -> TrialOutcome {
    let seed = trial_seed(base_seed, &scenario, trial);
    // Split the trial seed into independent streams for graph topology,
    // latency assignment and protocol randomness.
    let built;
    let base: &Graph = match cached_base {
        Some(g) => g,
        None => {
            let mut graph_rng = SmallRng::seed_from_u64(seed ^ 0x01);
            built = scenario.family.build(scenario.size, &mut graph_rng);
            &built
        }
    };
    let mut latency_rng = SmallRng::seed_from_u64(seed ^ 0x02);
    // `AsBuilt` keeps the cached/built instance as-is — no per-trial clone;
    // every other profile re-weights through `LatencyProfile::apply`.
    let reweighted;
    // The cached diameter bound describes the cached `AsBuilt` instance only;
    // a re-weighted graph has different latencies, so its bound is computed
    // inside the protocol run.
    let (g, bound): (&Graph, Option<Latency>) = match scenario.profile {
        LatencyProfile::AsBuilt => (base, cached_bound),
        _ => {
            reweighted = scenario.profile.apply(base, &mut latency_rng);
            (&reweighted, None)
        }
    };
    let measured = match &scenario.faults {
        Some(spec) => scenario.protocol.run_faulted(g, spec, seed),
        None => scenario
            .protocol
            .run_with_diameter_bound(g, bound, seed ^ 0x03),
    };
    TrialOutcome {
        scenario_index,
        rounds: measured.rounds,
        activations: measured.activations,
        completed: measured.completed,
        nodes: g.node_count(),
        edges: g.edge_count(),
        mem: measured.mem,
        faults: measured.faults,
    }
}

/// Aggregated statistics of one scenario across its trials.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Family identifier.
    pub family: String,
    /// Requested node budget.
    pub size: usize,
    /// Latency profile identifier.
    pub profile: String,
    /// Protocol identifier.
    pub protocol: String,
    /// Actual node count of the generated instances (first trial).
    pub nodes: usize,
    /// Actual edge count of the generated instances (first trial).
    pub edges: usize,
    /// Trials whose dissemination goal was reached.
    pub completed: u64,
    /// Total trials.
    pub trials: u64,
    /// Minimum round count.
    pub rounds_min: u64,
    /// Lower median round count.
    pub rounds_median: u64,
    /// 95th-percentile round count (nearest-rank).
    pub rounds_p95: u64,
    /// Maximum round count.
    pub rounds_max: u64,
    /// Mean round count.
    pub rounds_mean: f64,
    /// Lower median of activations.
    pub activations_median: u64,
    /// Largest peak engine memory over the trials, in bytes (0 when the
    /// protocol does not report memory counters).  Deterministic — derived
    /// from the engine's [`gossip_sim::MemStats`] counters, not the
    /// allocator — so it participates in byte-identical reports.
    pub peak_mem_bytes: u64,
    /// Largest peak of dense rumor-set pages over the trials (0 when memory
    /// counters were not reported) — the paged-storage cost the dense
    /// `n²/8` layout used to pay unconditionally.
    pub pages_peak: u64,
    /// Largest end-of-run count of fully saturated nodes over the trials.
    pub saturated_nodes: u64,
    /// Largest end-of-run count of saturation-collapsed nodes (log + shadow
    /// freed, merges short-circuited) over the trials.
    pub collapsed_nodes: u64,
    /// Rounds the event-driven scheduler actually executed, summed over the
    /// trials (0 when memory counters were not reported).
    pub rounds_simulated: u64,
    /// Rounds the scheduler fast-forwarded over (empty active worklist, the
    /// clock jumped to the next calendar event), summed over the trials.
    pub rounds_skipped: u64,
    /// [`churn_label`] of the cell's fault spec; `"none"` for fault-free
    /// cells (every field below is then 0).
    pub fault_profile: String,
    /// Crash-stop failures injected, summed over the trials.
    pub crashes: u64,
    /// Amnesiac rejoins injected, summed over the trials.
    pub rejoins: u64,
    /// Fail-stop link cuts injected, summed over the trials.
    pub links_cut: u64,
    /// In-flight exchanges cancelled by a crash of an endpoint, summed over
    /// the trials.
    pub exchanges_cancelled: u64,
    /// Exchanges lost in transit, summed over the trials.
    pub exchanges_lost: u64,
    /// Fewest alive nodes at end of run over the trials (worst case).
    pub alive_nodes_min: u64,
    /// Smallest largest-residual-component over the trials (worst
    /// fragmentation of the alive topology).
    pub largest_component_min: u64,
    /// Most rumors stranded on dead nodes over the trials (worst case).
    pub stranded_rumors_max: u64,
    /// Worst re-dissemination latency over trials in which a rejoined node
    /// recovered the tracked rumor (0 when none did).
    pub recovery_latency_max: u64,
}

impl ScenarioSummary {
    fn aggregate(scenario: &Scenario, trials: &[TrialOutcome]) -> ScenarioSummary {
        let mut rounds: Vec<u64> = trials.iter().map(|t| t.rounds).collect();
        rounds.sort_unstable();
        let mut activations: Vec<u64> = trials.iter().map(|t| t.activations).collect();
        activations.sort_unstable();
        let n = rounds.len().max(1);
        let mean = rounds.iter().sum::<u64>() as f64 / n as f64;
        ScenarioSummary {
            family: scenario.family.name(),
            size: scenario.size,
            profile: scenario.profile.name(),
            protocol: scenario.protocol.name().to_string(),
            nodes: trials.first().map_or(0, |t| t.nodes),
            edges: trials.first().map_or(0, |t| t.edges),
            completed: trials.iter().filter(|t| t.completed).count() as u64,
            trials: trials.len() as u64,
            rounds_min: rounds.first().copied().unwrap_or(0),
            rounds_median: percentile(&rounds, 50),
            rounds_p95: percentile(&rounds, 95),
            rounds_max: rounds.last().copied().unwrap_or(0),
            rounds_mean: mean,
            activations_median: percentile(&activations, 50),
            peak_mem_bytes: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.peak_engine_bytes))
                .max()
                .unwrap_or(0),
            pages_peak: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.pages_peak))
                .max()
                .unwrap_or(0),
            saturated_nodes: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.saturated_nodes))
                .max()
                .unwrap_or(0),
            collapsed_nodes: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.collapsed_nodes))
                .max()
                .unwrap_or(0),
            rounds_simulated: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.rounds_simulated))
                .sum(),
            rounds_skipped: trials
                .iter()
                .filter_map(|t| t.mem.map(|m| m.rounds_skipped))
                .sum(),
            fault_profile: scenario
                .faults
                .as_ref()
                .map_or("none".to_string(), churn_label),
            crashes: fault_sum(trials, |f| f.crashes),
            rejoins: fault_sum(trials, |f| f.rejoins),
            links_cut: fault_sum(trials, |f| f.links_cut),
            exchanges_cancelled: fault_sum(trials, |f| f.exchanges_cancelled),
            exchanges_lost: fault_sum(trials, |f| f.exchanges_lost),
            alive_nodes_min: trials
                .iter()
                .filter_map(|t| t.faults.map(|f| f.alive_nodes))
                .min()
                .unwrap_or(0),
            largest_component_min: trials
                .iter()
                .filter_map(|t| t.faults.map(|f| f.largest_component))
                .min()
                .unwrap_or(0),
            stranded_rumors_max: trials
                .iter()
                .filter_map(|t| t.faults.map(|f| f.stranded_rumors))
                .max()
                .unwrap_or(0),
            recovery_latency_max: trials
                .iter()
                .filter_map(|t| t.faults.and_then(|f| f.recovery_latency))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Sum of one [`FaultReport`] counter over a scenario's faulted trials.
fn fault_sum(trials: &[TrialOutcome], field: impl Fn(&FaultReport) -> u64) -> u64 {
    trials
        .iter()
        .filter_map(|t| t.faults.as_ref().map(&field))
        .sum()
}

/// Nearest-rank percentile of an ascending-sorted slice (lower median for 50).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// The result of a sweep: one summary per scenario, in grid order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Trials per scenario.
    pub trials: u64,
    /// Base seed of the sweep.
    pub base_seed: u64,
    /// Per-scenario aggregates, in deterministic grid order.
    pub scenarios: Vec<ScenarioSummary>,
}

impl SweepReport {
    /// Serialises the report as deterministic pretty JSON.
    ///
    /// Running the same spec twice yields byte-identical output: the report
    /// contains no timestamps or machine-dependent fields, scenario order is
    /// the grid order, and the writer formats numbers deterministically.
    pub fn to_json(&self) -> String {
        Json::object(vec![
            ("schema", Json::Str("gossip-sweep/v5".to_string())),
            ("trials_per_scenario", Json::Int(self.trials as i64)),
            // A string, not an i64: u64 seeds above i64::MAX must survive
            // the round trip through the report.
            ("base_seed", Json::Str(self.base_seed.to_string())),
            (
                "scenarios",
                Json::Array(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::object(vec![
                                ("family", Json::Str(s.family.clone())),
                                ("size", Json::Int(s.size as i64)),
                                ("profile", Json::Str(s.profile.clone())),
                                ("protocol", Json::Str(s.protocol.clone())),
                                ("nodes", Json::Int(s.nodes as i64)),
                                ("edges", Json::Int(s.edges as i64)),
                                ("completed", Json::Int(s.completed as i64)),
                                ("trials", Json::Int(s.trials as i64)),
                                ("rounds_min", Json::Int(s.rounds_min as i64)),
                                ("rounds_median", Json::Int(s.rounds_median as i64)),
                                ("rounds_p95", Json::Int(s.rounds_p95 as i64)),
                                ("rounds_max", Json::Int(s.rounds_max as i64)),
                                ("rounds_mean", Json::Float(s.rounds_mean)),
                                ("activations_median", Json::Int(s.activations_median as i64)),
                                ("peak_mem_bytes", Json::Int(s.peak_mem_bytes as i64)),
                                ("pages_peak", Json::Int(s.pages_peak as i64)),
                                ("saturated_nodes", Json::Int(s.saturated_nodes as i64)),
                                ("collapsed_nodes", Json::Int(s.collapsed_nodes as i64)),
                                ("rounds_simulated", Json::Int(s.rounds_simulated as i64)),
                                ("rounds_skipped", Json::Int(s.rounds_skipped as i64)),
                                // v5: the graceful-degradation section.  All
                                // zeros (profile "none") for fault-free cells,
                                // so fault-aware consumers need no schema
                                // branching.
                                ("fault_profile", Json::Str(s.fault_profile.clone())),
                                ("crashes", Json::Int(s.crashes as i64)),
                                ("rejoins", Json::Int(s.rejoins as i64)),
                                ("links_cut", Json::Int(s.links_cut as i64)),
                                (
                                    "exchanges_cancelled",
                                    Json::Int(s.exchanges_cancelled as i64),
                                ),
                                ("exchanges_lost", Json::Int(s.exchanges_lost as i64)),
                                ("alive_nodes_min", Json::Int(s.alive_nodes_min as i64)),
                                (
                                    "largest_component_min",
                                    Json::Int(s.largest_component_min as i64),
                                ),
                                (
                                    "stranded_rumors_max",
                                    Json::Int(s.stranded_rumors_max as i64),
                                ),
                                (
                                    "recovery_latency_max",
                                    Json::Int(s.recovery_latency_max as i64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// The scenario with the largest peak engine memory, as
    /// `(scenario label, bytes)` — `None` when no scenario reported memory
    /// counters.  This is what the `--mem-stats` timing artifact records.
    pub fn peak_mem_max(&self) -> Option<(String, u64)> {
        self.scenarios
            .iter()
            .filter(|s| s.peak_mem_bytes > 0)
            .max_by_key(|s| s.peak_mem_bytes)
            .map(|s| {
                (
                    format!("{}/{}/{}/{}", s.family, s.size, s.profile, s.protocol),
                    s.peak_mem_bytes,
                )
            })
    }

    /// Sweep-wide `(rounds_simulated, rounds_skipped)` totals over every
    /// scenario — the event-driven scheduler's aggregate: how many rounds
    /// were actually walked vs fast-forwarded over.  Deterministic (engine
    /// counters), so it participates in byte-identical artifacts.
    pub fn rounds_totals(&self) -> (u64, u64) {
        self.scenarios.iter().fold((0, 0), |(sim, skip), s| {
            (sim + s.rounds_simulated, skip + s.rounds_skipped)
        })
    }

    /// Renders the aggregates as a [`Table`] for terminal / markdown output.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Sweep: {} scenarios x {} trials (seed {:#x})",
                self.scenarios.len(),
                self.trials,
                self.base_seed
            ),
            &[
                "family", "n", "profile", "protocol", "ok", "min", "median", "p95", "max", "mean",
                "memMB", "skipped%",
            ],
        );
        for s in &self.scenarios {
            // Share of all rounds (across the scenario's trials) the
            // event-driven scheduler fast-forwarded over instead of walking.
            let total_rounds = s.rounds_simulated + s.rounds_skipped;
            let skipped_pct = if total_rounds == 0 {
                0.0
            } else {
                100.0 * s.rounds_skipped as f64 / total_rounds as f64
            };
            table.push_row(vec![
                s.family.as_str().into(),
                s.nodes.into(),
                s.profile.as_str().into(),
                s.protocol.as_str().into(),
                format!("{}/{}", s.completed, s.trials).into(),
                s.rounds_min.into(),
                s.rounds_median.into(),
                s.rounds_p95.into(),
                s.rounds_max.into(),
                s.rounds_mean.into(),
                (s.peak_mem_bytes / (1 << 20)).into(),
                skipped_pct.into(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            families: vec![
                GraphFamily::Clique,
                GraphFamily::Cycle,
                GraphFamily::Star,
                GraphFamily::ErdosRenyi { p: 0.4 },
            ],
            sizes: vec![8],
            profiles: vec![
                LatencyProfile::AsBuilt,
                LatencyProfile::TwoLevel {
                    slow: 8,
                    fast_probability: 0.5,
                },
            ],
            protocols: vec![ProtocolKind::PushPull, ProtocolKind::Flooding],
            trials: 3,
            base_seed: 42,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: Vec::new(),
        }
    }

    #[test]
    fn sweep_covers_the_whole_grid() {
        let spec = tiny_spec();
        let report = spec.run();
        assert_eq!(report.scenarios.len(), spec.scenario_count());
        assert_eq!(spec.scenario_count(), 4 * 2 * 2);
        for s in &report.scenarios {
            assert_eq!(s.trials, 3);
            assert_eq!(
                s.completed, 3,
                "{}/{}/{} failed trials",
                s.family, s.profile, s.protocol
            );
            assert!(s.rounds_min <= s.rounds_median);
            assert!(s.rounds_median <= s.rounds_p95);
            assert!(s.rounds_p95 <= s.rounds_max);
            assert!(s.rounds_min > 0);
        }
    }

    #[test]
    fn same_seed_gives_byte_identical_json() {
        let a = tiny_spec().run().to_json();
        let b = tiny_spec().run().to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn topology_cache_is_identical_across_scenario_permutations() {
        // Audit pin (PR 7): the cache build iterates the scenario list and
        // the distinct-key map; with BTreeMap/BTreeSet the result is a pure
        // function of the scenario *set*, so any permutation of the list —
        // not just the sorted order `scenarios()` produces — yields a
        // byte-identical cache (keys, graph edge lists, diameter bounds).
        let spec = SweepSpec {
            protocols: vec![
                ProtocolKind::PushPullAllToAll,
                ProtocolKind::SpannerBroadcast,
            ],
            ..tiny_spec()
        };
        let scenarios = spec.scenarios();
        let mut permuted = scenarios.clone();
        permuted.reverse();
        permuted.rotate_left(scenarios.len() / 3);
        let order = |list: &[Scenario]| {
            list.iter()
                .map(|s| (s.family.name(), s.protocol.name(), s.profile.name()))
                .collect::<Vec<_>>()
        };
        assert_ne!(
            order(&scenarios),
            order(&permuted),
            "permutation must actually change the order"
        );

        let a = build_topology_cache(&scenarios);
        let b = build_topology_cache(&permuted);
        assert_eq!(a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>());
        for (key, (graph_a, bound_a)) in &a {
            let (graph_b, bound_b) = &b[key];
            assert_eq!(bound_a, bound_b, "bound diverged for {key:?}");
            assert_eq!(
                Arc::as_ref(graph_a),
                Arc::as_ref(graph_b),
                "graph diverged for {key:?}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_results() {
        let mut spec = tiny_spec();
        let a = spec.run().to_json();
        spec.base_seed = 43;
        let b = spec.run().to_json();
        assert_ne!(a, b);
    }

    #[test]
    fn trial_seeds_do_not_collide_over_the_grid() {
        use std::collections::HashSet;
        let big = SweepSpec {
            families: vec![
                GraphFamily::Clique,
                GraphFamily::Cycle,
                GraphFamily::Grid,
                GraphFamily::Star,
                GraphFamily::Dumbbell,
                GraphFamily::RingOfCliques,
                GraphFamily::BinaryTree,
                GraphFamily::ErdosRenyi { p: 0.2 },
            ],
            sizes: vec![8, 16, 24, 32, 48, 64],
            profiles: vec![
                LatencyProfile::AsBuilt,
                LatencyProfile::TwoLevel {
                    slow: 16,
                    fast_probability: 0.5,
                },
                LatencyProfile::UniformRandom { max: 12 },
                LatencyProfile::PowerLaw { classes: 4 },
            ],
            protocols: vec![
                ProtocolKind::PushPull,
                ProtocolKind::Flooding,
                ProtocolKind::SpannerBroadcast,
                ProtocolKind::PatternBroadcast,
                ProtocolKind::Unified,
            ],
            trials: 16,
            base_seed: 7,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: Vec::new(),
        };
        let mut seen = HashSet::new();
        for scenario in big.scenarios() {
            for trial in 0..big.trials {
                assert!(seen.insert(trial_seed(big.base_seed, &scenario, trial)));
            }
        }
        assert_eq!(seen.len(), big.trial_count() as usize);
    }

    #[test]
    fn trial_seeds_depend_on_scenario_content_not_grid_position() {
        let scenario = |size: usize| Scenario {
            family: GraphFamily::Clique,
            size,
            profile: LatencyProfile::AsBuilt,
            protocol: ProtocolKind::PushPull,
            faults: None,
        };
        // The same scenario yields the same seed wherever it sits in a grid;
        // a different scenario yields a different one.
        assert_eq!(
            trial_seed(7, &scenario(16), 3),
            trial_seed(7, &scenario(16), 3)
        );
        assert_ne!(
            trial_seed(7, &scenario(16), 3),
            trial_seed(7, &scenario(24), 3)
        );
    }

    fn tiny_churn() -> ChurnSpec {
        ChurnSpec {
            crash_permille: 200,
            rejoin_after: Some(8),
            cut_permille: 50,
            loss_ppm: 40_000,
            window: (1, 12),
        }
    }

    #[test]
    fn fault_cells_hash_their_churn_spec_into_the_trial_seed() {
        let cell = |faults: Option<ChurnSpec>| Scenario {
            family: GraphFamily::Star,
            size: 16,
            profile: LatencyProfile::AsBuilt,
            protocol: ProtocolKind::PushPull,
            faults,
        };
        let plain = trial_seed(7, &cell(None), 0);
        let churned = trial_seed(7, &cell(Some(tiny_churn())), 0);
        assert_ne!(plain, churned, "fault cells must draw fresh seeds");
        let mut heavier = tiny_churn();
        heavier.crash_permille = 300;
        assert_ne!(
            churned,
            trial_seed(7, &cell(Some(heavier)), 0),
            "different specs are different scenario content"
        );
        assert_eq!(churned, trial_seed(7, &cell(Some(tiny_churn())), 0));
    }

    #[test]
    fn fault_tier_cells_are_fault_capable_at_every_scale() {
        for scale in [Scale::Quick, Scale::Full, Scale::Large, Scale::Huge] {
            let tier = SweepSpec::fault_tier(scale);
            assert!(!tier.is_empty());
            for cell in &tier {
                assert!(cell.protocol.supports_faults(), "{}", cell.protocol.name());
                assert!(cell.faults.is_some());
            }
        }
        // And the tier is what `fault_cell_count` counts.
        let mut spec = tiny_spec();
        assert_eq!(spec.fault_cell_count(), 0);
        spec.extra.extend(SweepSpec::fault_tier(Scale::Quick));
        assert_eq!(
            spec.fault_cell_count(),
            SweepSpec::fault_tier(Scale::Quick).len()
        );
    }

    #[test]
    fn faulted_cells_report_graceful_degradation_and_leave_other_cells_alone() {
        let mut spec = SweepSpec {
            families: vec![GraphFamily::Star],
            sizes: vec![24],
            profiles: vec![LatencyProfile::AsBuilt],
            protocols: vec![ProtocolKind::PushPull],
            trials: 3,
            base_seed: 99,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: Vec::new(),
        };
        let baseline = spec.run();
        assert_eq!(baseline.scenarios[0].fault_profile, "none");
        assert_eq!(baseline.scenarios[0].crashes, 0);
        assert_eq!(baseline.scenarios[0].alive_nodes_min, 0);

        // Blackout cell: permanent crashes with the star's hub in play.
        let blackout = ChurnSpec {
            rejoin_after: None,
            loss_ppm: 0,
            ..tiny_churn()
        };
        spec.extra.push(Scenario {
            family: GraphFamily::Star,
            size: 24,
            profile: LatencyProfile::AsBuilt,
            protocol: ProtocolKind::PushPull,
            faults: Some(blackout),
        });
        let faulted = spec.run();

        // The fault-free cell is byte-identical to its pre-tier self: fault
        // cells draw their own seeds.
        let strip = |report: &SweepReport| report.to_json();
        let a = strip(&baseline);
        let b = strip(&faulted);
        let cell_a = Json::parse(&a).unwrap();
        let cell_b = Json::parse(&b).unwrap();
        assert_eq!(
            cell_a.get("scenarios").and_then(Json::as_array).unwrap()[0],
            cell_b.get("scenarios").and_then(Json::as_array).unwrap()[0],
            "adding the fault tier must not perturb fault-free cells"
        );

        let cell = &faulted.scenarios[1];
        assert_eq!(cell.fault_profile, churn_label(&blackout));
        // 200‰ of 24 nodes (4 per trial) are *scheduled* to crash; a trial
        // that completes before the window elapses absorbs only a prefix of
        // the schedule, so the sum over 3 trials is bounded, not exact.
        assert!(cell.crashes > 0, "blackout must crash someone");
        assert!(cell.crashes <= 3 * 4);
        assert_eq!(cell.rejoins, 0, "blackout crashes are permanent");
        assert_eq!(cell.exchanges_lost, 0, "blackout runs are loss-free");
        assert!(cell.alive_nodes_min >= 20, "at most 4 crashes per trial");
        assert!(cell.alive_nodes_min < 24, "someone actually crashed");
        assert!(cell.largest_component_min <= 23);
        // Determinism: the faulted grid serialises identically on a rerun.
        assert_eq!(faulted.to_json(), spec.run().to_json());
    }

    #[test]
    fn churn_with_rejoin_reports_recovery_latency() {
        // A clique under rejoin churn: the rumor always survives somewhere,
        // rejoined nodes re-learn it, and the report carries the worst
        // re-dissemination latency.
        let spec = SweepSpec {
            families: vec![GraphFamily::Clique],
            sizes: vec![16],
            profiles: vec![LatencyProfile::AsBuilt],
            protocols: vec![],
            trials: 4,
            base_seed: 31,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: vec![Scenario {
                family: GraphFamily::Clique,
                size: 16,
                profile: LatencyProfile::AsBuilt,
                protocol: ProtocolKind::PushPullAllToAll,
                faults: Some(tiny_churn()),
            }],
        };
        let report = spec.run();
        let cell = &report.scenarios[0];
        // 200‰ of 16 nodes = 3 crash events scheduled per trial; trials
        // absorb the prefix that lands before they complete.
        assert!(cell.crashes > 0);
        assert!(cell.crashes <= 4 * 3);
        assert!(cell.rejoins <= cell.crashes);
        assert!(cell.alive_nodes_min >= 13, "at most 3 crashes per trial");
        assert!(
            cell.recovery_latency_max > 0,
            "a rejoined clique node must re-learn the universe in some trial"
        );
        assert_eq!(
            cell.completed, cell.trials,
            "rejoin churn on a clique still disseminates"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 50), 5);
        assert_eq!(percentile(&sorted, 95), 10);
        assert_eq!(percentile(&sorted, 100), 10);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn standard_spec_has_at_least_four_families() {
        let spec = SweepSpec::standard(Scale::Quick);
        assert!(spec.families.len() >= 4);
        assert!(spec.trials >= 2);
        assert!(!spec.protocols.is_empty());
        // The diversity additions of the large-scale rework ride along on
        // every scale: the barbell family and the bimodal latency profile.
        assert!(spec
            .families
            .iter()
            .any(|f| matches!(f, GraphFamily::Barbell { .. })));
        assert!(spec
            .profiles
            .iter()
            .any(|p| matches!(p, LatencyProfile::Bimodal { .. })));
    }

    #[test]
    fn size_caps_filter_the_cross_product() {
        let mut spec = tiny_spec();
        spec.families = vec![GraphFamily::Clique, GraphFamily::Cycle];
        spec.sizes = vec![8, 64];
        let uncapped = spec.scenario_count();
        assert_eq!(uncapped, 2 * 2 * 2 * 2);

        spec.dense_size_cap = Some(32); // drops clique @ 64 (4 cells)
        assert_eq!(spec.scenario_count(), uncapped - 4);

        spec.protocols = vec![ProtocolKind::PushPull, ProtocolKind::Unified];
        spec.heavy_size_cap = Some(32); // additionally drops unified @ 64 on cycle
        assert_eq!(spec.scenario_count(), uncapped - 4 - 2);

        spec.extra.push(Scenario {
            family: GraphFamily::Star,
            size: 1 << 15,
            profile: LatencyProfile::AsBuilt,
            protocol: ProtocolKind::Flooding,
            faults: None,
        });
        // Extras bypass the caps.
        assert_eq!(spec.scenario_count(), uncapped - 4 - 2 + 1);
    }

    #[test]
    fn large_spec_reaches_past_ten_thousand_nodes() {
        let spec = SweepSpec::standard(Scale::Large);
        let scenarios = spec.scenarios();
        let max_size = scenarios.iter().map(|s| s.size).max().unwrap();
        assert!(max_size > 10_000, "large tier must pass 10^4 nodes");
        // Every family reaches 4096 …
        for family in &spec.families {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.family.name() == family.name() && s.size == 4096),
                "{} missing at 4096",
                family.name()
            );
        }
        // … and the heavyweight protocols reach past the old 1024 wall: the
        // full grid (4096) plus dedicated 8192/16384 cells, capped at 16384.
        for s in &scenarios {
            if s.protocol.is_heavyweight() {
                assert!(s.size <= 16384, "{} at {}", s.protocol.name(), s.size);
            }
        }
        for (size, protocol) in [
            (4096, ProtocolKind::SpannerBroadcast),
            (4096, ProtocolKind::Unified),
            (8192, ProtocolKind::SpannerBroadcast),
            (8192, ProtocolKind::PatternBroadcast),
            (8192, ProtocolKind::Unified),
            (16384, ProtocolKind::SpannerBroadcast),
            (16384, ProtocolKind::Unified),
        ] {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.size == size && s.protocol == protocol),
                "{} missing at {}",
                protocol.name(),
                size
            );
        }
        // The promoted all-to-all cells: knowledge saturation at 32768.
        for protocol in [
            ProtocolKind::PushPullAllToAll,
            ProtocolKind::FloodingAllToAll,
        ] {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.size == 32768 && s.protocol == protocol),
                "{} missing at 32768",
                protocol.name()
            );
        }
    }

    #[test]
    fn huge_spec_extends_the_large_tier_past_ten_to_the_five() {
        let large = SweepSpec::standard(Scale::Large);
        let huge = SweepSpec::standard(Scale::Huge);
        // Everything in Large is in Huge…
        assert!(huge.scenario_count() > large.scenario_count());
        let scenarios = huge.scenarios();
        // …plus a >10^5-node cell, all-to-all at 65536 *and* 131072 (the
        // paged-set tier), and an Erdős–Rényi broadcast at 16384.
        assert!(scenarios.iter().any(|s| s.size > 100_000));
        assert!(scenarios
            .iter()
            .any(|s| s.size == 65536 && s.protocol == ProtocolKind::PushPullAllToAll));
        assert!(scenarios
            .iter()
            .any(|s| s.size == 131072 && s.protocol == ProtocolKind::PushPullAllToAll));
        assert!(scenarios
            .iter()
            .any(|s| s.size == 131072 && s.protocol == ProtocolKind::FloodingAllToAll));
        assert!(scenarios
            .iter()
            .any(|s| s.size == 16384 && matches!(s.family, GraphFamily::ErdosRenyi { .. })));
    }

    #[test]
    fn all_to_all_cells_saturate_knowledge_and_report_memory() {
        // A miniature all-to-all cell end to end: both all-to-all protocol
        // kinds complete on a small star and carry a peak-memory figure.
        let spec = SweepSpec {
            families: vec![GraphFamily::Star],
            sizes: vec![64],
            profiles: vec![LatencyProfile::AsBuilt],
            protocols: vec![
                ProtocolKind::PushPullAllToAll,
                ProtocolKind::FloodingAllToAll,
            ],
            trials: 2,
            base_seed: 9,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: Vec::new(),
        };
        let report = spec.run();
        for s in &report.scenarios {
            assert_eq!(s.completed, s.trials, "{} must complete", s.protocol);
            assert!(s.peak_mem_bytes > 0, "{} must report memory", s.protocol);
            assert!(s.pages_peak > 0, "{} must report page counters", s.protocol);
            assert_eq!(
                s.saturated_nodes, 64,
                "{} all-to-all saturates every node",
                s.protocol
            );
            assert!(s.collapsed_nodes <= 64);
        }
        let json = report.to_json();
        for field in ["pages_peak", "saturated_nodes", "collapsed_nodes"] {
            assert!(json.contains(field), "schema must carry {field}");
        }
        let (label, bytes) = report.peak_mem_max().unwrap();
        assert!(bytes >= report.scenarios[0].peak_mem_bytes);
        assert!(label.contains("star"));
    }

    #[test]
    fn cached_topologies_leave_reports_identical_to_uncached_builds() {
        // The cache only covers deterministic families; forcing every build
        // through the per-trial path (by routing around `run`) must give the
        // same outcome.  Easiest faithful check: a grid mixing deterministic
        // and random families twice — byte-identical JSON both times — plus
        // a direct comparison of a cached instance with a fresh build.
        let spec = SweepSpec {
            families: vec![GraphFamily::Clique, GraphFamily::ErdosRenyi { p: 0.4 }],
            sizes: vec![10],
            profiles: vec![
                LatencyProfile::AsBuilt,
                LatencyProfile::UniformRandom { max: 6 },
            ],
            protocols: vec![ProtocolKind::PushPull],
            trials: 3,
            base_seed: 77,
            dense_size_cap: None,
            heavy_size_cap: None,
            extra: Vec::new(),
        };
        assert_eq!(spec.run().to_json(), spec.run().to_json());
        let mut rng_a = SmallRng::seed_from_u64(0);
        let mut rng_b = SmallRng::seed_from_u64(123);
        assert_eq!(
            GraphFamily::Clique.build(10, &mut rng_a),
            GraphFamily::Clique.build(10, &mut rng_b),
            "deterministic families must ignore the RNG for caching to be sound"
        );
    }
}
