//! Perf-trajectory regression checks over `gossip-bench-timing/v2` artifacts.
//!
//! Every sweep writes a timing artifact (`BENCH_sweep.json`) recording the
//! wall-clock of the run and — with `--mem-stats` — the sweep's peak
//! engine-memory scenario, derived from the engine's deterministic
//! [`MemStats`](gossip_sim::MemStats) counters.  The repository commits one
//! such artifact as `BENCH_sweep_baseline.json` (Large tier), and CI runs
//! `experiments bench-check` to diff the fresh artifact against it: the
//! build fails when peak memory regresses beyond its tolerance (default
//! +25%, a *deterministic* signal) or total wall-clock regresses beyond its
//! (much looser, machine-noise-tolerant) default of +50%.  Future perf PRs
//! therefore land with trajectory data instead of an empty `BENCH_*`
//! history.

use crate::json::Json;

/// Tolerated relative growth of `peak_mem_bytes` (0.25 = +25%).
pub const DEFAULT_MEM_TOLERANCE: f64 = 0.25;
/// Tolerated relative growth of `elapsed_seconds` (0.5 = +50%).
pub const DEFAULT_TIME_TOLERANCE: f64 = 0.5;

/// The fields of a `gossip-bench-timing/v2` artifact that the regression
/// check consumes.
///
/// Parsing is deliberately **unknown-field-tolerant**: only the fields below
/// are read, everything else in the artifact is ignored, and fields that
/// were added to the artifact *after* v2 shipped (the event-driven
/// scheduler's `rounds_*_total` aggregates) are optional.  A freshly written
/// artifact therefore always checks cleanly against a baseline produced by
/// an older binary, and vice versa — schema growth never breaks CI
/// retroactively.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArtifact {
    /// Sweep scale identifier (`quick` / `full` / `large` / `huge`).
    pub scale: String,
    /// Wall-clock seconds of the whole sweep (machine-dependent).
    pub elapsed_seconds: f64,
    /// Whether the artifact carries memory aggregates (`--mem-stats`).
    pub mem_stats: bool,
    /// Largest per-scenario peak engine memory of the sweep (deterministic).
    pub peak_mem_bytes: u64,
    /// Label of the scenario that produced `peak_mem_bytes`.
    pub peak_mem_scenario: String,
    /// Total rounds the event-driven scheduler actually walked, summed over
    /// every scenario trial (`None` for artifacts written before the
    /// scheduler existed).
    pub rounds_simulated_total: Option<u64>,
    /// Total rounds fast-forwarded over (`None` for pre-scheduler
    /// artifacts).
    pub rounds_skipped_total: Option<u64>,
}

impl TimingArtifact {
    /// Parses a timing artifact, validating the schema tag.  Unknown fields
    /// are ignored and post-v2 additions are optional (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<TimingArtifact, String> {
        let value = Json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema field")?;
        if schema != "gossip-bench-timing/v2" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let opt_u64 = |field: &str| {
            value
                .get(field)
                .and_then(Json::as_i64)
                .map(|v| v.max(0) as u64)
        };
        Ok(TimingArtifact {
            scale: value
                .get("scale")
                .and_then(Json::as_str)
                .ok_or("missing scale")?
                .to_string(),
            elapsed_seconds: value
                .get("elapsed_seconds")
                .and_then(Json::as_f64)
                .ok_or("missing elapsed_seconds")?,
            mem_stats: matches!(value.get("mem_stats"), Some(Json::Bool(true))),
            peak_mem_bytes: value
                .get("peak_mem_bytes")
                .and_then(Json::as_i64)
                .ok_or("missing peak_mem_bytes")?
                .max(0) as u64,
            peak_mem_scenario: value
                .get("peak_mem_scenario")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            rounds_simulated_total: opt_u64("rounds_simulated_total"),
            rounds_skipped_total: opt_u64("rounds_skipped_total"),
        })
    }
}

/// Result of one baseline comparison: a human-readable report plus the
/// verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// `true` when every tracked metric stayed inside its tolerance.
    pub ok: bool,
    /// One line per tracked metric, `PASS`/`FAIL`-prefixed.
    pub lines: Vec<String>,
}

/// Relative growth of `current` over `baseline`.
///
/// A zero (or negative) baseline with a positive current value is **infinite
/// growth**, which fails every finite tolerance — a `0 → anything` move used
/// to report 0.0 and silently pass, hiding regressions against baselines
/// whose metric was never populated.  `0 → 0` is genuinely no growth.
fn growth(baseline: f64, current: f64) -> f64 {
    if baseline <= 0.0 {
        if current > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        current / baseline - 1.0
    }
}

/// Compares a fresh timing artifact against the committed baseline.
///
/// * **Peak memory** (deterministic): fails when `peak_mem_bytes` grew by
///   more than `mem_tolerance`, provided both artifacts carry memory stats.
/// * **Wall-clock** (noisy): fails when `elapsed_seconds` grew by more than
///   `time_tolerance`.
///
/// Scales must match — comparing a `--quick` run against a Large baseline
/// would trivially pass the memory gate and trivially fail nothing.
pub fn check(
    baseline: &TimingArtifact,
    current: &TimingArtifact,
    mem_tolerance: f64,
    time_tolerance: f64,
) -> CheckOutcome {
    let mut lines = Vec::new();
    let mut ok = true;
    if baseline.scale != current.scale {
        return CheckOutcome {
            ok: false,
            lines: vec![format!(
                "FAIL scale mismatch: baseline '{}' vs current '{}' — rerun the sweep at the baseline's scale",
                baseline.scale, current.scale
            )],
        };
    }
    // Note: a baseline with `mem_stats` but `peak_mem_bytes == 0` still
    // gates — any positive current value is infinite growth and FAILs.
    // Only artifacts that carry no memory stats at all skip the gate.
    if baseline.mem_stats && current.mem_stats {
        let g = growth(
            baseline.peak_mem_bytes as f64,
            current.peak_mem_bytes as f64,
        );
        let pass = g <= mem_tolerance;
        ok &= pass;
        lines.push(format!(
            "{} peak_mem_bytes: {} -> {} ({:+.1}%, tolerance +{:.0}%) [{}]",
            if pass { "PASS" } else { "FAIL" },
            baseline.peak_mem_bytes,
            current.peak_mem_bytes,
            g * 100.0,
            mem_tolerance * 100.0,
            if current.peak_mem_scenario.is_empty() {
                "no scenario"
            } else {
                &current.peak_mem_scenario
            },
        ));
    } else {
        lines.push("SKIP peak_mem_bytes: artifact(s) carry no memory stats".to_string());
    }
    {
        let g = growth(baseline.elapsed_seconds, current.elapsed_seconds);
        let pass = g <= time_tolerance;
        ok &= pass;
        lines.push(format!(
            "{} elapsed_seconds: {:.2} -> {:.2} ({:+.1}%, tolerance +{:.0}%)",
            if pass { "PASS" } else { "FAIL" },
            baseline.elapsed_seconds,
            current.elapsed_seconds,
            g * 100.0,
            time_tolerance * 100.0,
        ));
    }
    // Scheduler aggregates are informational only (no gate): they explain
    // *why* wall-clock moved, and older baselines may not carry them at all.
    if let (Some(simulated), Some(skipped)) =
        (current.rounds_simulated_total, current.rounds_skipped_total)
    {
        let total = simulated + skipped;
        lines.push(format!(
            "INFO rounds: {simulated} simulated, {skipped} skipped ({:.1}% fast-forwarded)",
            if total == 0 {
                0.0
            } else {
                100.0 * skipped as f64 / total as f64
            },
        ));
    }
    CheckOutcome { ok, lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(elapsed: f64, mem: u64) -> TimingArtifact {
        TimingArtifact {
            scale: "large".to_string(),
            elapsed_seconds: elapsed,
            mem_stats: true,
            peak_mem_bytes: mem,
            peak_mem_scenario: "star/32768/as-built/push-pull-all-to-all".to_string(),
            rounds_simulated_total: None,
            rounds_skipped_total: None,
        }
    }

    #[test]
    fn parses_a_real_artifact() {
        let text = r#"{
  "schema": "gossip-bench-timing/v2",
  "scale": "large",
  "threads": 4,
  "scenarios": 10,
  "trials_per_scenario": 2,
  "total_runs": 20,
  "elapsed_seconds": 12.5,
  "runs_per_second": 1.6,
  "mem_stats": true,
  "peak_mem_bytes": 123456,
  "peak_mem_scenario": "star/32768/as-built/push-pull-all-to-all"
}"#;
        let parsed = TimingArtifact::parse(text).unwrap();
        assert_eq!(parsed.scale, "large");
        assert_eq!(parsed.peak_mem_bytes, 123456);
        assert!(parsed.mem_stats);
        assert!((parsed.elapsed_seconds - 12.5).abs() < 1e-12);
        // A pre-scheduler artifact simply has no round aggregates.
        assert_eq!(parsed.rounds_simulated_total, None);
        assert_eq!(parsed.rounds_skipped_total, None);
        assert!(TimingArtifact::parse("{}").is_err());
        assert!(TimingArtifact::parse(r#"{"schema": "gossip-bench-timing/v1"}"#).is_err());
    }

    #[test]
    fn parsing_tolerates_new_and_unknown_fields() {
        // The event-driven scheduler added `rounds_*_total` to the v2
        // artifact; the parser must surface them when present — and keep
        // ignoring fields it has never heard of, so future schema growth
        // cannot break CI against an already-committed baseline.
        let text = r#"{
  "schema": "gossip-bench-timing/v2",
  "scale": "large",
  "elapsed_seconds": 3.25,
  "mem_stats": true,
  "peak_mem_bytes": 42,
  "peak_mem_scenario": "star/64/as-built/push-pull",
  "rounds_simulated_total": 1000,
  "rounds_skipped_total": 250000,
  "some_future_field": {"nested": [1, 2, 3]},
  "another_future_counter": 7
}"#;
        let parsed = TimingArtifact::parse(text).unwrap();
        assert_eq!(parsed.rounds_simulated_total, Some(1000));
        assert_eq!(parsed.rounds_skipped_total, Some(250_000));
        assert_eq!(parsed.peak_mem_bytes, 42);

        // Both directions check cleanly against a baseline that predates
        // the new fields (and the informational line never gates).
        let old = artifact(3.0, 42);
        let outcome = check(&old, &parsed, DEFAULT_MEM_TOLERANCE, DEFAULT_TIME_TOLERANCE);
        assert!(outcome.ok, "{:?}", outcome.lines);
        assert!(
            outcome.lines.iter().any(|l| l.starts_with("INFO rounds")),
            "skipped-round aggregates surface informationally: {:?}",
            outcome.lines
        );
        let outcome = check(&parsed, &old, DEFAULT_MEM_TOLERANCE, DEFAULT_TIME_TOLERANCE);
        assert!(outcome.ok, "{:?}", outcome.lines);
    }

    #[test]
    fn within_tolerance_passes() {
        let outcome = check(
            &artifact(10.0, 1000),
            &artifact(14.0, 1200),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(outcome.ok, "{:?}", outcome.lines);
        assert!(outcome.lines.iter().all(|l| l.starts_with("PASS")));
    }

    #[test]
    fn memory_regression_fails_deterministically() {
        let outcome = check(
            &artifact(10.0, 1000),
            &artifact(10.0, 1300),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(!outcome.ok);
        assert!(outcome.lines[0].starts_with("FAIL peak_mem_bytes"));
        // Exactly on the boundary passes.
        let boundary = check(
            &artifact(10.0, 1000),
            &artifact(10.0, 1250),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(boundary.ok);
    }

    #[test]
    fn wall_clock_regression_fails_and_improvements_pass() {
        let slow = check(
            &artifact(10.0, 1000),
            &artifact(15.1, 1000),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(!slow.ok);
        let fast = check(
            &artifact(10.0, 1000),
            &artifact(2.0, 500),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(fast.ok);
    }

    #[test]
    fn scale_mismatch_is_rejected() {
        let mut quick = artifact(1.0, 100);
        quick.scale = "quick".to_string();
        let outcome = check(
            &artifact(10.0, 1000),
            &quick,
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(!outcome.ok);
        assert!(outcome.lines[0].contains("scale mismatch"));
    }

    #[test]
    fn zero_baseline_with_positive_current_fails() {
        // A baseline generated with `--mem-stats` but a zero metric (or a
        // truncated artifact) must not silently pass a real regression:
        // growth over a zero baseline is infinite, beyond every tolerance.
        let outcome = check(
            &artifact(10.0, 0),
            &artifact(10.0, 1),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(!outcome.ok, "{:?}", outcome.lines);
        assert!(outcome.lines[0].starts_with("FAIL peak_mem_bytes"));
        // Same for wall-clock: 0s baseline, any positive current.
        let outcome = check(
            &artifact(0.0, 100),
            &artifact(5.0, 100),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(!outcome.ok, "{:?}", outcome.lines);
        assert!(outcome.lines[1].starts_with("FAIL elapsed_seconds"));
    }

    #[test]
    fn zero_baseline_with_zero_current_passes() {
        // `0 → 0` is no growth in either metric.
        let outcome = check(
            &artifact(0.0, 0),
            &artifact(0.0, 0),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(outcome.ok, "{:?}", outcome.lines);
        assert!(outcome.lines.iter().all(|l| l.starts_with("PASS")));
    }

    #[test]
    fn missing_mem_stats_skips_the_memory_gate() {
        let mut no_mem = artifact(10.0, 0);
        no_mem.mem_stats = false;
        let outcome = check(
            &no_mem.clone(),
            &artifact(10.0, 999_999),
            DEFAULT_MEM_TOLERANCE,
            DEFAULT_TIME_TOLERANCE,
        );
        assert!(outcome.ok, "{:?}", outcome.lines);
        assert!(outcome.lines[0].starts_with("SKIP"));
    }
}
