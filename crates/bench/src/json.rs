//! A tiny self-contained JSON value type with a deterministic pretty writer
//! and a strict parser.
//!
//! The build container has no network access, so `serde`/`serde_json` cannot
//! be used; this module covers what the harness needs: emitting experiment
//! tables and sweep reports, and parsing them back in tests.  Object keys
//! keep their insertion order and numbers are written with Rust's shortest
//! round-trip formatting, so serialising the same value twice yields
//! byte-identical output — the property the sweep runner's reproducibility
//! guarantee rests on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, not routed through `f64`).
    Int(i64),
    /// A floating-point number; non-finite values serialise as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric content as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline-free end.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest round-trip: deterministic and
                    // always re-parses to the same bits.
                    let s = v.to_string();
                    out.push_str(&s);
                    // Keep floats syntactically floats so parsing is type-stable.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: exactly one value, full input consumed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

/// Reads the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..=0xDBFF).contains(&code) {
                            // UTF-16 high surrogate: a low surrogate escape
                            // must follow, and the pair combines into one
                            // supplementary-plane scalar.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("high surrogate without a following \\u".to_string());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(format!("invalid low surrogate {low:04x}"));
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(scalar).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad float '{text}': {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad int '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Json::object(vec![
            ("title", Json::Str("E0: demo \"quoted\"".to_string())),
            ("count", Json::Int(-3)),
            ("ratio", Json::Float(2.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::Array(vec![
                    Json::Array(vec![Json::Int(1), Json::Float(0.125)]),
                    Json::Array(vec![]),
                ]),
            ),
        ]);
        let text = value.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn serialisation_is_byte_stable() {
        let value = Json::object(vec![("a", Json::Float(1.0 / 3.0)), ("b", Json::Int(17))]);
        assert_eq!(value.to_pretty(), value.to_pretty());
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Json::Float(2.0).to_pretty();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn parses_escapes() {
        let parsed = Json::parse(r#""a\nbA""#).unwrap();
        assert_eq!(parsed, Json::Str("a\nbA".to_string()));
    }

    #[test]
    fn parses_surrogate_pairs() {
        // U+1F600 as a UTF-16 surrogate pair, the form external JSON
        // writers emit for supplementary-plane characters.
        let parsed = Json::parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(parsed, Json::Str("\u{1F600}".to_string()));
        // Basic-plane escapes still work.
        assert_eq!(
            Json::parse(r#""\u0041""#).unwrap(),
            Json::Str("A".to_string())
        );
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uD83DA""#).is_err());
        assert!(Json::parse(r#""\uDE00""#).is_err());
    }
}
