//! Minimal table type used to report experiment results.

use std::fmt;

use crate::json::Json;

/// One cell of an experiment table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A text cell.
    Text(String),
    /// An integer cell.
    Int(i64),
    /// A floating-point cell (printed with three decimals).
    Float(f64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.3}"),
        }
    }
}

impl From<&Cell> for Json {
    fn from(cell: &Cell) -> Json {
        match cell {
            Cell::Text(s) => Json::Str(s.clone()),
            Cell::Int(v) => Json::Int(*v),
            Cell::Float(v) => Json::Float(*v),
        }
    }
}

/// A titled table of experiment results.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier and description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row length must match the column count"
        );
        self.rows.push(row);
    }

    /// Serialises the table to a JSON string (untagged cells, like the
    /// `serde_json` output this replaces: text as strings, ints as integers,
    /// floats as numbers).
    pub fn to_json(&self) -> String {
        Json::object(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Array(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|row| Json::Array(row.iter().map(Json::from).collect()))
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::to_string).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0: demo", &["n", "rounds", "ratio"]);
        t.push_row(vec![
            Cell::from(16usize),
            Cell::from(40u64),
            Cell::from(2.5),
        ]);
        t.push_row(vec![
            Cell::from(32usize),
            Cell::from(90u64),
            Cell::from(2.8),
        ]);
        t
    }

    #[test]
    fn display_renders_all_rows() {
        let s = sample().to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("16"));
        assert!(s.contains("2.800"));
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| n | rounds | ratio |"));
        assert!(md.contains("|---|---|---|"));
    }

    #[test]
    fn json_round_trips_structure() {
        let json = sample().to_json();
        let value = crate::json::Json::parse(&json).unwrap();
        assert_eq!(
            value.get("title").and_then(|t| t.as_str()),
            Some("E0: demo")
        );
        assert_eq!(
            value.get("rows").and_then(|r| r.as_array()).unwrap().len(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec![Cell::from(1u64)]);
    }
}
