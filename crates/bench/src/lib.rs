//! # gossip-bench
//!
//! The experiment harness: one function per entry of the experiment index in
//! `DESIGN.md` (E1–E8, F1, F2, F8).  Each experiment returns a [`Table`] whose
//! rows are also serialisable to JSON, and the `experiments` binary prints
//! them in the exact form recorded in `EXPERIMENTS.md`.
//!
//! The Criterion benches under `benches/` reuse the same workload
//! constructors with smaller parameters so that `cargo bench` exercises every
//! experiment end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_check;
pub mod experiments;
pub mod json;
pub mod sweep;
pub mod table;

pub use table::{Cell, Table};

/// How large the experiment sweeps should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small parameters — used by `cargo bench` and the test-suite.
    Quick,
    /// The parameters recorded in `EXPERIMENTS.md`.
    #[default]
    Full,
    /// The large-scale scenario grid (thousands of nodes per instance; tens
    /// of thousands for the cheap protocols, including 32768-node all-to-all
    /// star cells).  Only the sweep runner distinguishes this from
    /// [`Scale::Full`]; the table experiments treat it as full-size.
    Large,
    /// Everything in [`Scale::Large`] plus the huge tier opened by the
    /// interval-log/shadow engine: 65536-node all-to-all stars, a
    /// 131072-node one-to-all star, and a 16384-node Erdős–Rényi broadcast.
    /// Opt-in (`experiments sweep --huge`); not part of the CI sweep.
    Huge,
}

impl Scale {
    /// Picks between the quick and full value ([`Scale::Large`] and
    /// [`Scale::Huge`] count as full).
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full | Scale::Large | Scale::Huge => full,
        }
    }

    /// Stable identifier used in reports and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
            Scale::Large => "large",
            Scale::Huge => "huge",
        }
    }
}
