//! The experiment runner: regenerates every table recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! experiments [EXPERIMENT-ID ...] [--quick] [--json] [--markdown]
//! ```
//!
//! With no experiment ids, every experiment (E1–E8, F1, F2, F8) is run.
//! `--quick` uses the smaller parameter sweeps (the ones the test-suite and
//! `cargo bench` use); the default is the full sweep recorded in
//! `EXPERIMENTS.md`.  `--json` and `--markdown` change the output format from
//! the plain-text tables.

use std::process::ExitCode;

use gossip_bench::experiments;
use gossip_bench::{Scale, Table};

struct Options {
    ids: Vec<String>,
    scale: Scale,
    json: bool,
    markdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::Full;
    let mut json = false;
    let mut markdown = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--markdown" => markdown = true,
            "--help" | "-h" => {
                return Err(
                    "usage: experiments [e1|e2|e3|e4|e5|e6|e7|e8|f1|f2|f8|all ...] [--quick] [--json] [--markdown]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"))
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    Ok(Options { ids, scale, json, markdown })
}

fn emit(table: &Table, options: &Options) {
    if options.json {
        println!("{}", table.to_json());
    } else if options.markdown {
        println!("{}", table.to_markdown());
    } else {
        println!("{table}");
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for id in &options.ids {
        match experiments::run_one(id, options.scale) {
            Some(tables) => {
                for table in tables {
                    emit(&table, &options);
                    println!();
                }
            }
            None => {
                eprintln!("unknown experiment id '{id}' (expected e1..e8, f1, f2, f8, or all)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
