//! The experiment runner: regenerates every table recorded in `EXPERIMENTS.md`
//! and drives the parallel scenario-sweep runner.
//!
//! Usage:
//!
//! ```text
//! experiments [EXPERIMENT-ID ...] [--quick] [--json] [--markdown]
//! experiments sweep [--quick|--full|--large|--huge] [--seed N] [--trials N]
//!                   [--min-size N] [--max-size N] [--threads N] [--faults]
//!                   [--out PATH] [--timing-out PATH] [--mem-stats]
//!                   [--json] [--markdown]
//! experiments bench-check --baseline PATH --current PATH
//!                         [--mem-tolerance F] [--time-tolerance F]
//! ```
//!
//! With no experiment ids, every experiment (E1–E8, F1, F2, F8) is run.
//! `--quick` uses the smaller parameter sweeps (the ones the test-suite and
//! `cargo bench` use); the default is the full sweep recorded in
//! `EXPERIMENTS.md`.  `--json` and `--markdown` change the output format from
//! the plain-text tables.
//!
//! The `sweep` subcommand executes the standard scenario grid (seven graph
//! families × sizes × latency profiles × protocols, multi-seed) in parallel
//! and writes the aggregated median/p95 round counts as a deterministic JSON
//! report: the same `--seed` always produces a byte-identical file,
//! regardless of thread count.  `--threads` pins the rayon pool size
//! explicitly (the default detects the machine); the pool size is recorded
//! in the `threads` field of the timing artifact, so perf-trajectory
//! comparisons know what parallelism produced each wall-clock number.  `--large` swaps in the large-scale grid
//! (up to 4096 nodes everywhere, 32768-node star cells — one-to-all *and*
//! all-to-all — for the cheap protocols); `--huge` adds the 65536/131072-node
//! star tier and a 16384-node Erdős–Rényi broadcast; `--max-size` drops grid
//! cells above a node budget — and `--min-size` below one — without changing
//! the seeds of the remaining cells, so CI can smoke a single tier (e.g.
//! `--huge --min-size 65536 --max-size 65536` runs just the 65536-node star
//! cells).  `--faults` appends the fault-injection tier (schema
//! `gossip-sweep/v5`): lightweight-protocol cells rerun under seed-derived
//! crash-stop churn, link cuts and message loss, and their report rows carry
//! the graceful-degradation aggregates (residual components, stranded
//! rumors, re-dissemination latency) instead of all-clean completions.
//! Fault cells hash their churn spec into the trial seeds, so adding the
//! tier never perturbs the fault-free cells.  Alongside the report, every
//! sweep writes a `BENCH_sweep.json`
//! wall-clock timing artifact (schema `gossip-bench-timing/v2`,
//! `--timing-out` to relocate) that CI uploads to track the perf trajectory;
//! `--mem-stats` additionally folds the sweep's peak-memory aggregates (from
//! the engine's deterministic `MemStats` counters) into that artifact.
//!
//! The `bench-check` subcommand diffs a fresh timing artifact against a
//! committed baseline (`BENCH_sweep_baseline.json`) and exits non-zero when
//! the sweep's peak engine memory regressed beyond `--mem-tolerance`
//! (default +25%, deterministic) or the wall-clock regressed beyond
//! `--time-tolerance` (default +50%, machine-noise-tolerant) — the CI step
//! that turns the uploaded artifacts into an enforced perf trajectory.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use gossip_bench::experiments;
use gossip_bench::sweep::SweepSpec;
use gossip_bench::{Scale, Table};

struct Options {
    ids: Vec<String>,
    scale: Scale,
    json: bool,
    markdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::Full;
    let mut json = false;
    let mut markdown = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--markdown" => markdown = true,
            "--help" | "-h" => {
                return Err(
                    "usage: experiments [e1|e2|e3|e4|e5|e6|e7|e8|f1|f2|f8|all ...] [--quick] [--json] [--markdown]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}' (try --help)"))
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    Ok(Options {
        ids,
        scale,
        json,
        markdown,
    })
}

fn emit(table: &Table, options: &Options) {
    if options.json {
        println!("{}", table.to_json());
    } else if options.markdown {
        println!("{}", table.to_markdown());
    } else {
        println!("{table}");
    }
}

struct SweepOptions {
    scale: Scale,
    seed: Option<u64>,
    trials: Option<u64>,
    min_size: Option<usize>,
    max_size: Option<usize>,
    threads: Option<usize>,
    faults: bool,
    out: String,
    timing_out: String,
    mem_stats: bool,
    json: bool,
    markdown: bool,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepOptions, String> {
    let mut options = SweepOptions {
        scale: Scale::Full,
        seed: None,
        trials: None,
        min_size: None,
        max_size: None,
        threads: None,
        faults: false,
        out: "sweep_report.json".to_string(),
        timing_out: "BENCH_sweep.json".to_string(),
        mem_stats: false,
        json: false,
        markdown: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => options.scale = Scale::Quick,
            "--full" => options.scale = Scale::Full,
            "--large" => options.scale = Scale::Large,
            "--huge" => options.scale = Scale::Huge,
            "--faults" => options.faults = true,
            "--mem-stats" => options.mem_stats = true,
            "--json" => options.json = true,
            "--markdown" => options.markdown = true,
            "--seed" => {
                let v = value_of("--seed")?;
                options.seed = Some(
                    v.parse()
                        .map_err(|e| format!("invalid --seed '{v}': {e}"))?,
                );
            }
            "--trials" => {
                let v = value_of("--trials")?;
                let trials: u64 = v
                    .parse()
                    .map_err(|e| format!("invalid --trials '{v}': {e}"))?;
                if trials == 0 {
                    return Err("--trials must be at least 1".to_string());
                }
                options.trials = Some(trials);
            }
            "--min-size" => {
                let v = value_of("--min-size")?;
                let min: usize = v
                    .parse()
                    .map_err(|e| format!("invalid --min-size '{v}': {e}"))?;
                if min == 0 {
                    return Err("--min-size must be at least 1".to_string());
                }
                options.min_size = Some(min);
            }
            "--max-size" => {
                let v = value_of("--max-size")?;
                let max: usize = v
                    .parse()
                    .map_err(|e| format!("invalid --max-size '{v}': {e}"))?;
                if max == 0 {
                    return Err("--max-size must be at least 1".to_string());
                }
                options.max_size = Some(max);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let threads: usize = v
                    .parse()
                    .map_err(|e| format!("invalid --threads '{v}': {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                options.threads = Some(threads);
            }
            "--out" => options.out = value_of("--out")?,
            "--timing-out" => options.timing_out = value_of("--timing-out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: experiments sweep [--quick|--full|--large|--huge] [--seed N] \
                     [--trials N] [--min-size N] [--max-size N] [--threads N] [--faults] \
                     [--out PATH] [--timing-out PATH] [--mem-stats] [--json] [--markdown]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown sweep option '{other}' (try sweep --help)")),
        }
    }
    Ok(options)
}

fn run_sweep(args: &[String]) -> ExitCode {
    let options = match parse_sweep_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = SweepSpec::standard(options.scale);
    if options.faults {
        // Appended before --max-size so the budget cap applies to fault
        // cells too.
        spec.extra.extend(SweepSpec::fault_tier(options.scale));
    }
    if let Some(seed) = options.seed {
        spec.base_seed = seed;
    }
    if let Some(trials) = options.trials {
        spec.trials = trials;
    }
    // Trial seeds hash scenario content, so dropping cells on either side of
    // the size window leaves the results of the remaining cells untouched.
    if let Some(min) = options.min_size {
        spec.sizes.retain(|&s| s >= min);
        spec.extra.retain(|cell| cell.size >= min);
    }
    if let Some(max) = options.max_size {
        spec.sizes.retain(|&s| s <= max);
        spec.extra.retain(|cell| cell.size <= max);
    }
    if spec.sizes.is_empty() && spec.extra.is_empty() {
        eprintln!("the --min-size/--max-size window leaves no scenarios in the grid");
        return ExitCode::FAILURE;
    }
    // An explicit --threads pins the rayon pool size for the whole sweep
    // (trial-level parallelism); the reports stay byte-identical either way,
    // only the wall-clock — and the `threads` field of the timing artifact —
    // changes.
    if let Some(n) = options.threads {
        rayon::set_num_threads(n);
    }
    let threads = rayon::current_num_threads();
    let scenario_count = spec.scenario_count();
    eprintln!(
        "sweep: {} scenarios x {} trials = {} runs on {} threads (seed {:#x})",
        scenario_count,
        spec.trials,
        spec.trial_count(),
        threads,
        spec.base_seed
    );
    // gossip-lint: allow(wall-clock): the sweep timing sidecar is the one sanctioned non-deterministic artifact; never part of the report
    let started = std::time::Instant::now();
    let report = spec.run();
    let elapsed = started.elapsed();
    eprintln!("sweep: finished in {elapsed:.2?}");

    let json = report.to_json();
    if let Err(e) = std::fs::write(&options.out, format!("{json}\n")) {
        eprintln!("cannot write report to '{}': {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("sweep: report written to {}", options.out);

    // Wall-clock timing artifact (schema gossip-bench-timing/v2): unlike the
    // report it is *not* deterministic — it records how fast this machine ran
    // the sweep, so CI can track the perf trajectory across commits.  With
    // --mem-stats it also carries the sweep's peak-memory aggregates, which
    // *are* deterministic (engine counters, not allocator probes).
    let elapsed_seconds = elapsed.as_secs_f64();
    let total_runs = spec.trial_count();
    let (peak_mem_scenario, peak_mem_bytes) = if options.mem_stats {
        report
            .peak_mem_max()
            .map_or((String::new(), 0), |(label, bytes)| (label, bytes))
    } else {
        (String::new(), 0)
    };
    let (rounds_simulated_total, rounds_skipped_total) = report.rounds_totals();
    let timing = gossip_bench::json::Json::object(vec![
        (
            "schema",
            gossip_bench::json::Json::Str("gossip-bench-timing/v2".to_string()),
        ),
        (
            "scale",
            gossip_bench::json::Json::Str(options.scale.name().to_string()),
        ),
        ("threads", gossip_bench::json::Json::Int(threads as i64)),
        (
            "scenarios",
            gossip_bench::json::Json::Int(scenario_count as i64),
        ),
        (
            "trials_per_scenario",
            gossip_bench::json::Json::Int(spec.trials as i64),
        ),
        (
            "total_runs",
            gossip_bench::json::Json::Int(total_runs as i64),
        ),
        (
            "elapsed_seconds",
            gossip_bench::json::Json::Float(elapsed_seconds),
        ),
        (
            "runs_per_second",
            gossip_bench::json::Json::Float(if elapsed_seconds > 0.0 {
                total_runs as f64 / elapsed_seconds
            } else {
                0.0
            }),
        ),
        (
            "mem_stats",
            gossip_bench::json::Json::Bool(options.mem_stats),
        ),
        // Fault-injection tier size (0 without --faults).  `bench-check`
        // parses artifacts unknown-field-tolerantly, so baselines predating
        // the fault tier keep working.
        (
            "fault_cells",
            gossip_bench::json::Json::Int(spec.fault_cell_count() as i64),
        ),
        // Event-driven scheduler aggregates (deterministic engine counters):
        // total rounds walked vs fast-forwarded across all scenarios.
        // `bench-check` parses artifacts leniently, so baselines predating
        // these fields keep working.
        (
            "rounds_simulated_total",
            gossip_bench::json::Json::Int(rounds_simulated_total as i64),
        ),
        (
            "rounds_skipped_total",
            gossip_bench::json::Json::Int(rounds_skipped_total as i64),
        ),
        (
            "peak_mem_bytes",
            gossip_bench::json::Json::Int(peak_mem_bytes as i64),
        ),
        (
            "peak_mem_scenario",
            gossip_bench::json::Json::Str(peak_mem_scenario),
        ),
    ]);
    if let Err(e) = std::fs::write(&options.timing_out, format!("{}\n", timing.to_pretty())) {
        eprintln!(
            "cannot write timing artifact to '{}': {e}",
            options.timing_out
        );
        return ExitCode::FAILURE;
    }
    eprintln!("sweep: timing artifact written to {}", options.timing_out);

    let table = report.to_table();
    if options.json {
        println!("{json}");
    } else if options.markdown {
        println!("{}", table.to_markdown());
    } else {
        println!("{table}");
    }
    ExitCode::SUCCESS
}

fn run_bench_check(args: &[String]) -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut mem_tolerance = gossip_bench::bench_check::DEFAULT_MEM_TOLERANCE;
    let mut time_tolerance = gossip_bench::bench_check::DEFAULT_TIME_TOLERANCE;
    let usage = "usage: experiments bench-check --baseline PATH --current PATH \
                 [--mem-tolerance F] [--time-tolerance F]";
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed = match arg.as_str() {
            "--baseline" => value_of("--baseline").map(|v| baseline_path = Some(v)),
            "--current" => value_of("--current").map(|v| current_path = Some(v)),
            "--mem-tolerance" => value_of("--mem-tolerance").and_then(|v| {
                v.parse()
                    .map(|f| mem_tolerance = f)
                    .map_err(|e| format!("invalid --mem-tolerance '{v}': {e}"))
            }),
            "--time-tolerance" => value_of("--time-tolerance").and_then(|v| {
                v.parse()
                    .map(|f| time_tolerance = f)
                    .map_err(|e| format!("invalid --time-tolerance '{v}': {e}"))
            }),
            "--help" | "-h" => Err(usage.to_string()),
            other => Err(format!("unknown bench-check option '{other}' ({usage})")),
        };
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<gossip_bench::bench_check::TimingArtifact, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        gossip_bench::bench_check::TimingArtifact::parse(&text)
            .map_err(|e| format!("cannot parse '{path}': {e}"))
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let outcome =
        gossip_bench::bench_check::check(&baseline, &current, mem_tolerance, time_tolerance);
    println!(
        "bench-check: '{current_path}' vs baseline '{baseline_path}' (scale {})",
        baseline.scale
    );
    for line in &outcome.lines {
        println!("  {line}");
    }
    if outcome.ok {
        println!("bench-check: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-check: perf regression against the committed baseline");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        return run_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-check") {
        return run_bench_check(&args[1..]);
    }
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for id in &options.ids {
        match experiments::run_one(id, options.scale) {
            Some(tables) => {
                for table in tables {
                    emit(&table, &options);
                    println!();
                }
            }
            None => {
                eprintln!("unknown experiment id '{id}' (expected e1..e8, f1, f2, f8, or all)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
