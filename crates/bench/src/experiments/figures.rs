//! F1 / F8 — structural checks of Figure 1 (the gadgets) and Figures 8–9
//! (the DTG building block).

use gossip_core::dtg;
use gossip_graph::{generators, metrics};
use gossip_lowerbound::gadgets;
use gossip_lowerbound::predicates::TargetPredicate;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Cell, Scale, Table};

fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// F1 — Figure 1: the asymmetric and symmetric guessing-game gadgets, their
/// sizes, the number of hidden fast cross edges, and their weighted diameters.
pub fn f1_gadgets(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Full | Scale::Large | Scale::Huge => vec![8, 16, 32, 64],
    };
    let mut table = Table::new(
        "F1 (Figure 1): guessing-game gadgets G and Gsym",
        &[
            "m",
            "variant",
            "nodes",
            "edges",
            "fast cross edges",
            "weighted diameter",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for m in sizes {
        for (variant, symmetric) in [("G", false), ("Gsym", true)] {
            let Ok(net) = gadgets::gadget(
                m,
                1,
                (m as u64).max(2) * 4,
                TargetPredicate::Singleton,
                symmetric,
                &mut rng,
            ) else {
                continue;
            };
            let fast_cross = net
                .graph
                .edges()
                .filter(|rec| {
                    let cross = (rec.u.index() < m) != (rec.v.index() < m);
                    cross && rec.latency == 1
                })
                .count();
            table.push_row(vec![
                Cell::from(m),
                Cell::from(variant),
                Cell::from(net.graph.node_count()),
                Cell::from(net.graph.edge_count()),
                Cell::from(fast_cross),
                Cell::from(
                    metrics::estimate_diameter(&net.graph)
                        .map(|e| e.upper)
                        .unwrap_or(0),
                ),
            ]);
        }
    }
    table
}

/// F8 — Figures 8–9 / Appendix A.1: the ℓ-DTG local broadcast completes in
/// `O(ℓ·log² n)` rounds with `O(log n)` iterations.
pub fn f8_dtg(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32],
        Scale::Full | Scale::Large | Scale::Huge => vec![32, 64, 128, 256],
    };
    let ells: Vec<u64> = match scale {
        Scale::Quick => vec![1, 4],
        Scale::Full | Scale::Large | Scale::Huge => vec![1, 4, 16],
    };
    let mut table = Table::new(
        "F8 (Appendix A.1): ell-DTG local broadcast rounds vs ell log^2 n",
        &[
            "n",
            "ell",
            "rounds",
            "bound ell log^2 n",
            "rounds/bound",
            "max iterations",
            "log2 n",
        ],
    );
    for &n in &sizes {
        for &ell in &ells {
            let g = generators::clique(n, ell).unwrap();
            let universe = g.node_count();
            let rumors: Vec<gossip_sim::RumorSet> = (0..universe)
                .map(|i| gossip_sim::RumorSet::singleton(universe, gossip_sim::RumorId::from(i)))
                .collect();
            let (report, final_rumors, iterations) =
                dtg::run_with_rumors(&g, ell, 0xF8 + n as u64, rumors, false);
            assert!(dtg::local_broadcast_achieved(&g, ell, &final_rumors));
            let bound = ell as f64 * log2(n) * log2(n);
            table.push_row(vec![
                Cell::from(n),
                Cell::from(ell),
                Cell::from(report.rounds),
                Cell::from(bound),
                Cell::from(report.rounds as f64 / bound.max(1.0)),
                Cell::from(iterations),
                Cell::from(log2(n)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_gadgets_have_exactly_one_fast_cross_edge() {
        let t = f1_gadgets(Scale::Quick);
        for row in &t.rows {
            let fast = match row[4] {
                Cell::Int(v) => v,
                _ => panic!(),
            };
            assert_eq!(
                fast, 1,
                "singleton predicate must plant exactly one fast cross edge"
            );
        }
    }

    #[test]
    fn f8_dtg_cost_grows_with_ell() {
        let t = f8_dtg(Scale::Quick);
        // Compare the two ell values for the same n.
        let rounds: Vec<i64> = t
            .rows
            .iter()
            .map(|r| match r[2] {
                Cell::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        assert!(
            rounds[1] > rounds[0],
            "4-DTG must cost more than 1-DTG on the same clique"
        );
    }
}
