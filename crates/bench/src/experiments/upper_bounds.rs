//! E5–E8 — the upper-bound experiments: push–pull (Theorem 29), the spanner
//! and spanner broadcast (Lemmas 19–23, Theorem 20/25), pattern broadcast
//! (Lemmas 26–28) and the unified bound (Theorem 31).

use gossip_conductance::{critical_conductance, Method};
use gossip_core::{pattern, push_pull, spanner, spanner_broadcast, unified};
use gossip_graph::{generators, metrics, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Cell, Scale, Table};

fn log2(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// The "well connected with planted slow cut" family used by E5 and E8.
fn slow_cut_family(scale: Scale, rng: &mut SmallRng) -> Vec<(String, Graph)> {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64],
        Scale::Full | Scale::Large | Scale::Huge => vec![64, 128, 256, 512],
    };
    let slows: Vec<u64> = match scale {
        Scale::Quick => vec![4, 16],
        Scale::Full | Scale::Large | Scale::Huge => vec![1, 4, 16, 64],
    };
    let mut out = Vec::new();
    for &n in &sizes {
        for &slow in &slows {
            let g = generators::slow_cut_expander(n, 6, slow, rng).unwrap();
            out.push((format!("slow_cut_expander(n={n}, slow={slow})"), g));
        }
    }
    out
}

/// E5 — Theorem 29: push–pull completes in `O((ℓ*/φ*)·log n)`; the table
/// reports the ratio `rounds / ((ℓ*/φ*)·log n)`, which should stay bounded.
pub fn e5_push_pull(scale: Scale) -> Table {
    let mut rng = SmallRng::seed_from_u64(0xE5);
    let mut table = Table::new(
        "E5 (Theorem 29): push-pull rounds vs (ell*/phi*) log n",
        &[
            "family",
            "n",
            "ell*",
            "phi*",
            "bound",
            "rounds",
            "rounds/bound",
        ],
    );
    for (name, g) in slow_cut_family(scale, &mut rng) {
        let Ok(crit) = critical_conductance(&g, Method::SweepCut) else {
            continue;
        };
        let bound = if crit.phi_star > 0.0 {
            crit.ell_star as f64 / crit.phi_star * log2(g.node_count())
        } else {
            f64::INFINITY
        };
        let report = push_pull::broadcast(&g, NodeId::new(0), 0x500);
        table.push_row(vec![
            Cell::from(name),
            Cell::from(g.node_count()),
            Cell::from(crit.ell_star),
            Cell::from(crit.phi_star),
            Cell::from(bound),
            Cell::from(report.rounds),
            Cell::from(report.rounds as f64 / bound.max(1.0)),
        ]);
    }
    table
}

/// E6(a) — Lemma 19 / Theorem 20: size, out-degree and stretch of the
/// directed Baswana–Sen spanner as `n` grows.
pub fn e6_spanner(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64],
        Scale::Full | Scale::Large | Scale::Huge => vec![64, 128, 256, 512],
    };
    let mut rng = SmallRng::seed_from_u64(0xE6);
    let mut table = Table::new(
        "E6a (Lemma 19 / Theorem 20): directed spanner size, out-degree and stretch",
        &[
            "n",
            "graph edges",
            "spanner edges",
            "edges/(n log n)",
            "max out-degree",
            "out/(log n)",
            "stretch",
            "2k-1",
        ],
    );
    for n in sizes {
        let base =
            generators::erdos_renyi(n, (8.0 * log2(n) / n as f64).min(0.5), 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: 16 }
            .apply(&base, &mut rng)
            .unwrap();
        let s = spanner::log_spanner(&g, 0x600 + n as u64);
        let k = (log2(n)).ceil() as usize;
        let stretch = s.stretch(&g).unwrap_or(f64::INFINITY);
        table.push_row(vec![
            Cell::from(n),
            Cell::from(g.edge_count()),
            Cell::from(s.edge_count()),
            Cell::from(s.edge_count() as f64 / (n as f64 * log2(n))),
            Cell::from(s.max_out_degree()),
            Cell::from(s.max_out_degree() as f64 / log2(n)),
            Cell::from(stretch),
            Cell::from(spanner::stretch_bound(k)),
        ]);
    }
    table
}

/// E6(b) — Lemma 23 / Theorem 25: spanner broadcast in `O(D·log³ n)` rounds,
/// with and without knowledge of the diameter.
pub fn e6_spanner_broadcast(scale: Scale) -> Table {
    let mut rng = SmallRng::seed_from_u64(0x6E6);
    let graphs: Vec<(String, Graph)> = match scale {
        Scale::Quick => vec![
            ("dumbbell(6, 8)".into(), generators::dumbbell(6, 8).unwrap()),
            (
                "ring_of_cliques(4, 6, 8)".into(),
                generators::ring_of_cliques(4, 6, 8).unwrap(),
            ),
        ],
        Scale::Full | Scale::Large | Scale::Huge => vec![
            (
                "dumbbell(16, 16)".into(),
                generators::dumbbell(16, 16).unwrap(),
            ),
            (
                "ring_of_cliques(8, 8, 16)".into(),
                generators::ring_of_cliques(8, 8, 16).unwrap(),
            ),
            (
                "grid(8x8, lat 4)".into(),
                generators::grid(8, 8, 4).unwrap(),
            ),
            (
                "slow_cut_expander(128, 6, 32)".into(),
                generators::slow_cut_expander(128, 6, 32, &mut rng).unwrap(),
            ),
        ],
    };
    let mut table = Table::new(
        "E6b (Lemma 23 / Theorem 25): spanner broadcast rounds vs D log^3 n",
        &[
            "family",
            "n",
            "D",
            "bound D log^3 n",
            "known-D rounds",
            "known/bound",
            "unknown-D rounds",
            "unknown/known",
        ],
    );
    for (name, g) in graphs {
        let d = metrics::estimate_diameter(&g).map(|e| e.upper).unwrap_or(0);
        let bound = d as f64 * log2(g.node_count()).powi(3);
        let known = spanner_broadcast::run_known_diameter(&g, 0x66);
        let unknown = spanner_broadcast::run_unknown_diameter(&g, 0x66);
        table.push_row(vec![
            Cell::from(name),
            Cell::from(g.node_count()),
            Cell::from(d),
            Cell::from(bound),
            Cell::from(known.rounds),
            Cell::from(known.rounds as f64 / bound.max(1.0)),
            Cell::from(unknown.rounds),
            Cell::from(unknown.rounds as f64 / known.rounds.max(1) as f64),
        ]);
    }
    table
}

/// E7 — Lemmas 26–28: pattern broadcast in `O(D·log² n·log D)` rounds.
pub fn e7_pattern(scale: Scale) -> Table {
    let graphs: Vec<(String, Graph)> = match scale {
        Scale::Quick => vec![
            ("cycle(12, lat 2)".into(), generators::cycle(12, 2).unwrap()),
            ("dumbbell(5, 8)".into(), generators::dumbbell(5, 8).unwrap()),
        ],
        Scale::Full | Scale::Large | Scale::Huge => vec![
            ("cycle(32, lat 2)".into(), generators::cycle(32, 2).unwrap()),
            (
                "dumbbell(12, 16)".into(),
                generators::dumbbell(12, 16).unwrap(),
            ),
            (
                "grid(6x6, lat 4)".into(),
                generators::grid(6, 6, 4).unwrap(),
            ),
            (
                "ring_of_cliques(6, 6, 8)".into(),
                generators::ring_of_cliques(6, 6, 8).unwrap(),
            ),
        ],
    };
    let mut table = Table::new(
        "E7 (Lemmas 26-28): pattern broadcast rounds vs D log^2 n log D",
        &[
            "family",
            "n",
            "D",
            "bound",
            "rounds",
            "rounds/bound",
            "completed",
        ],
    );
    for (name, g) in graphs {
        let d = metrics::estimate_diameter(&g)
            .map(|e| e.upper)
            .unwrap_or(1)
            .max(1);
        let bound = d as f64 * log2(g.node_count()).powi(2) * (d as f64).log2().max(1.0);
        let report = pattern::run_known_diameter(&g, 0x77);
        table.push_row(vec![
            Cell::from(name),
            Cell::from(g.node_count()),
            Cell::from(d),
            Cell::from(bound),
            Cell::from(report.rounds),
            Cell::from(report.rounds as f64 / bound.max(1.0)),
            Cell::from(if report.completed { "yes" } else { "NO" }),
        ]);
    }
    table
}

/// E8 — Theorem 31: the unified algorithm takes the minimum of the two routes;
/// the winner flips between the well-connected regime (push–pull) and the
/// small-diameter / poor-conductance regime (spanner route).
pub fn e8_unified(scale: Scale) -> Table {
    let mut rng = SmallRng::seed_from_u64(0xE8);
    let graphs: Vec<(String, Graph)> = match scale {
        Scale::Quick => vec![
            ("clique(24)".into(), generators::clique(24, 1).unwrap()),
            (
                "dumbbell(8, 64)".into(),
                generators::dumbbell(8, 64).unwrap(),
            ),
        ],
        Scale::Full | Scale::Large | Scale::Huge => vec![
            ("clique(64)".into(), generators::clique(64, 1).unwrap()),
            (
                "slow_cut_expander(128, 6, 4)".into(),
                generators::slow_cut_expander(128, 6, 4, &mut rng).unwrap(),
            ),
            (
                "dumbbell(16, 128)".into(),
                generators::dumbbell(16, 128).unwrap(),
            ),
            (
                "ring_of_cliques(8, 8, 64)".into(),
                generators::ring_of_cliques(8, 8, 64).unwrap(),
            ),
            ("path(64, lat 8)".into(), generators::path(64, 8).unwrap()),
            // The Theorem-13 ring with a huge slow latency: the hidden fast
            // edges keep D small, so the spanner route should win over
            // push-pull (which pays ~ell/phi hunting for them).
            (
                "theorem13_ring(4 x 12, ell=2048)".into(),
                gossip_lowerbound::gadgets::theorem13_ring(4, 12, 2048, &mut rng)
                    .unwrap()
                    .graph,
            ),
        ],
    };
    let mut table = Table::new(
        "E8 (Theorem 31): unified algorithm - push-pull vs the spanner route",
        &[
            "family",
            "n",
            "push-pull rounds",
            "spanner-route rounds",
            "winner",
            "unified rounds",
        ],
    );
    for (name, g) in graphs {
        let r = unified::run_known_latencies(&g, NodeId::new(0), 0x88);
        table.push_row(vec![
            Cell::from(name),
            Cell::from(g.node_count()),
            Cell::from(r.push_pull.rounds),
            Cell::from(r.spanner_route.rounds),
            Cell::from(match r.winner {
                unified::Winner::PushPull => "push-pull",
                unified::Winner::SpannerRoute => "spanner",
            }),
            Cell::from(r.rounds),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float(c: &Cell) -> f64 {
        match c {
            Cell::Float(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(_) => panic!("expected a number"),
        }
    }

    #[test]
    fn e5_ratio_stays_bounded() {
        let t = e5_push_pull(Scale::Quick);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let ratio = float(&row[6]);
            assert!(
                ratio < 10.0,
                "push-pull exceeded its Theorem 29 bound by 10x: {ratio}"
            );
        }
    }

    #[test]
    fn e6_spanner_stays_within_stretch_bound() {
        let t = e6_spanner(Scale::Quick);
        for row in &t.rows {
            let stretch = float(&row[6]);
            let bound = float(&row[7]);
            assert!(
                stretch <= bound + 1e-9,
                "stretch {stretch} above 2k-1 = {bound}"
            );
        }
    }

    #[test]
    fn e6_spanner_broadcast_stays_below_bound() {
        let t = e6_spanner_broadcast(Scale::Quick);
        for row in &t.rows {
            let ratio = float(&row[5]);
            assert!(
                ratio < 12.0,
                "spanner broadcast exceeded D log^3 n by 12x: {ratio}"
            );
        }
    }

    #[test]
    fn e7_pattern_completes_everywhere() {
        let t = e7_pattern(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row.last().unwrap().to_string(), "yes");
        }
    }

    #[test]
    fn e8_push_pull_wins_on_the_clique_and_loses_on_the_slow_dumbbell() {
        let t = e8_unified(Scale::Quick);
        let winners: Vec<String> = t.rows.iter().map(|r| r[4].to_string()).collect();
        assert_eq!(
            winners[0], "push-pull",
            "push-pull must win on the unit clique"
        );
        // On the dumbbell with a very slow bridge the spanner route is
        // expected to win; accept either but require the rounds to be reported.
        assert!(t.rows[1].len() == 6);
    }
}
