//! E4 / F2 — the Theorem 13 ring of gadgets (Figure 2): the
//! `Ω(min(Δ + D, ℓ/φ))` trade-off and the conductance facts of Lemmas 15–17.

use gossip_conductance::{critical_conductance, phi_ell_of_cut, Method};
use gossip_core::push_pull;
use gossip_graph::cut::Cut;
use gossip_graph::metrics;
use gossip_graph::NodeId;
use gossip_lowerbound::gadgets::{theorem13_parameters, theorem13_ring};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Cell, Scale, Table};

/// E4 — sweep the slow latency `ℓ` on a fixed ring and watch the broadcast
/// cost follow `min(Δ + D, ℓ/φ)`: for small `ℓ` the `ℓ/φ` term dominates and
/// the cost grows with `ℓ`; once it crosses `Δ + D` the cost flattens out
/// (the algorithm is better off hunting for the fast edges).
pub fn e4_tradeoff(scale: Scale) -> Table {
    let (layers, layer_size) = match scale {
        Scale::Quick => (4, 4),
        Scale::Full | Scale::Large | Scale::Huge => (8, 8),
    };
    let ells: Vec<u64> = match scale {
        Scale::Quick => vec![2, 8, 32],
        Scale::Full | Scale::Large | Scale::Huge => vec![2, 4, 8, 16, 32, 64, 128, 256],
    };
    let mut table = Table::new(
        "E4 (Theorem 13): push-pull broadcast on the ring of gadgets, sweeping ell",
        &[
            "n",
            "layers",
            "s",
            "ell",
            "D",
            "Delta",
            "phi_ell",
            "bound min(D+Delta, ell/phi)",
            "rounds",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0xE4);
    for ell in ells {
        let Ok(ring) = theorem13_ring(layers, layer_size, ell, &mut rng) else {
            continue;
        };
        let g = &ring.graph;
        let d = metrics::estimate_diameter(g).map(|e| e.upper).unwrap_or(0);
        let delta = g.max_degree() as u64;
        // φ_ℓ of the balanced ring cut (Lemma 15 gives α exactly; the sweep
        // estimate over the whole graph is close).
        let phi = critical_conductance(g, Method::SweepCut)
            .map(|c| c.phi_star)
            .unwrap_or(0.0);
        let bound = ((d + delta) as f64).min(if phi > 0.0 {
            ell as f64 / phi
        } else {
            f64::MAX
        });
        let report = push_pull::broadcast(g, NodeId::new(0), 0x400 + ell);
        table.push_row(vec![
            Cell::from(g.node_count()),
            Cell::from(layers),
            Cell::from(layer_size),
            Cell::from(ell),
            Cell::from(d),
            Cell::from(delta),
            Cell::from(phi),
            Cell::from(bound),
            Cell::from(report.rounds),
        ]);
    }
    table
}

/// F2 — the structural facts of Figure 2: the ring is `(3s−1)`-regular
/// (Observation 14), the balanced cut has `φ_ℓ(C) ≈ s/n'` where `n'` is half
/// the node count (Lemma 15), the graph conductance matches it up to constants
/// (Lemma 16), and `D = Θ(layers/2)`.
pub fn f2_ring_conductance(scale: Scale) -> Table {
    let configs: Vec<(usize, f64)> = match scale {
        Scale::Quick => vec![(24, 0.125), (32, 0.25)],
        Scale::Full | Scale::Large | Scale::Huge => {
            vec![(48, 0.0625), (64, 0.125), (96, 0.1875), (128, 0.25)]
        }
    };
    let mut table = Table::new(
        "F2 (Lemmas 15-17): structure of the Theorem-13 ring",
        &[
            "n(half)",
            "alpha",
            "layers k",
            "s",
            "regular degree",
            "phi_ell(C)",
            "phi_ell (sweep)",
            "D",
            "k/2",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0xF2);
    for (n, alpha) in configs {
        let (k, s) = theorem13_parameters(n, alpha);
        let Ok(ring) = theorem13_ring(k, s, 8, &mut rng) else {
            continue;
        };
        let g = &ring.graph;
        let degree = g.degree(NodeId::new(0));
        // The balanced cut that splits the ring into two arcs of k/2 layers.
        let half_nodes: Vec<NodeId> = (0..(k / 2) * s).map(NodeId::new).collect();
        let cut = Cut::from_side(g, half_nodes);
        let phi_cut = phi_ell_of_cut(g, &cut, 8).unwrap_or(0.0);
        let phi_graph = critical_conductance(g, Method::SweepCut)
            .map(|c| c.phi_star)
            .unwrap_or(0.0);
        let d = metrics::estimate_diameter(g).map(|e| e.upper).unwrap_or(0);
        table.push_row(vec![
            Cell::from(g.node_count() / 2),
            Cell::from(alpha),
            Cell::from(k),
            Cell::from(s),
            Cell::from(degree),
            Cell::from(phi_cut),
            Cell::from(phi_graph),
            Cell::from(d),
            Cell::from(k as f64 / 2.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_rounds_grow_with_ell_before_the_crossover() {
        let t = e4_tradeoff(Scale::Quick);
        assert!(t.rows.len() >= 2);
        let rounds: Vec<i64> = t
            .rows
            .iter()
            .map(|r| match r[8] {
                Cell::Int(v) => v,
                _ => panic!("expected int"),
            })
            .collect();
        // The slowest configuration should cost more than the fastest.
        assert!(rounds.iter().max().unwrap() > rounds.iter().min().unwrap());
    }

    #[test]
    fn f2_ring_is_regular_and_lemma15_holds_approximately() {
        let t = f2_ring_conductance(Scale::Quick);
        for row in &t.rows {
            let s = match row[3] {
                Cell::Int(v) => v,
                _ => panic!(),
            };
            let degree = match row[4] {
                Cell::Int(v) => v,
                _ => panic!(),
            };
            assert_eq!(degree, 3 * s - 1, "Observation 14 violated");
            let phi_cut = match row[5] {
                Cell::Float(v) => v,
                _ => panic!(),
            };
            assert!(phi_cut > 0.0);
        }
    }
}
