//! E2 / E3 — the guessing-game lower bounds (Lemmas 7–8) and the networks
//! that embed them (Theorems 9–10).

use gossip_lowerbound::gadgets;
use gossip_lowerbound::game::GuessingGame;
use gossip_lowerbound::predicates::TargetPredicate;
use gossip_lowerbound::reduction::push_pull_reduction;
use gossip_lowerbound::strategies::{
    play, AliceStrategy, ColumnSweep, FreshGreedy, RandomGuessing,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Cell, Scale, Table};

fn average_game_rounds<S, F>(
    m: usize,
    predicate: TargetPredicate,
    trials: u64,
    seed: u64,
    mut make: F,
) -> f64
where
    S: AliceStrategy,
    F: FnMut() -> S,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0u64;
    for _ in 0..trials {
        let game = GuessingGame::new(m, predicate, &mut rng);
        let mut strategy = make();
        let out = play(game, &mut strategy, 10_000_000, &mut rng);
        total += out.rounds;
    }
    total as f64 / trials as f64
}

/// E2(a) — Lemma 7: rounds to solve `Guessing(2m, |T| = 1)` as a function of `m`.
pub fn e2_singleton_game(scale: Scale) -> Table {
    let trials = scale.pick(10, 30);
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32],
        Scale::Full | Scale::Large | Scale::Huge => vec![16, 32, 64, 128, 256, 512],
    };
    let mut table = Table::new(
        "E2a (Lemma 7): rounds to solve Guessing(2m, |T|=1), average over trials",
        &[
            "m",
            "random-guessing",
            "fresh-greedy",
            "column-sweep",
            "rounds/m (random)",
        ],
    );
    for m in sizes {
        let random = average_game_rounds::<RandomGuessing, _>(
            m,
            TargetPredicate::Singleton,
            trials,
            0xE2 + m as u64,
            || RandomGuessing,
        );
        let greedy = average_game_rounds::<FreshGreedy, _>(
            m,
            TargetPredicate::Singleton,
            trials,
            0x2E2 + m as u64,
            FreshGreedy::default,
        );
        let sweep = average_game_rounds::<ColumnSweep, _>(
            m,
            TargetPredicate::Singleton,
            trials,
            0x3E2 + m as u64,
            || ColumnSweep,
        );
        table.push_row(vec![
            Cell::from(m),
            Cell::from(random),
            Cell::from(greedy),
            Cell::from(sweep),
            Cell::from(random / m as f64),
        ]);
    }
    table
}

/// E2(b) — Theorem 9: local broadcast on the gadget+expander network needs
/// rounds growing with `Δ`, even though the diameter stays `O(log n)`.
pub fn e2_theorem9_network(scale: Scale) -> Table {
    let deltas: Vec<usize> = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Full | Scale::Large | Scale::Huge => vec![8, 16, 32, 64],
    };
    let n = scale.pick(48, 256);
    let mut table = Table::new(
        "E2b (Theorem 9): push-pull local broadcast on the Theorem-9 network",
        &["n", "delta", "max_degree", "rounds", "rounds/delta"],
    );
    let mut rng = SmallRng::seed_from_u64(0x79);
    for delta in deltas {
        let net = match gadgets::theorem9_network(n.max(2 * delta + 6), delta, &mut rng) {
            Ok(net) => net,
            Err(_) => continue,
        };
        let out = push_pull_reduction(&net, 0x900 + delta as u64);
        table.push_row(vec![
            Cell::from(net.graph.node_count()),
            Cell::from(delta),
            Cell::from(net.graph.max_degree()),
            Cell::from(out.gossip_rounds),
            Cell::from(out.gossip_rounds as f64 / delta as f64),
        ]);
    }
    table
}

/// E3(a) — Lemma 8: rounds to solve `Guessing(2m, Random_p)` as a function of
/// `p`, for the informed strategy (Θ(1/p)) and random guessing (Θ(log m / p)).
pub fn e3_random_game(scale: Scale) -> Table {
    let trials = scale.pick(6, 20);
    let m = scale.pick(32, 128);
    let ps: Vec<f64> = match scale {
        Scale::Quick => vec![0.25, 0.1],
        Scale::Full | Scale::Large | Scale::Huge => vec![0.25, 0.125, 0.0625, 0.03125, 0.015625],
    };
    let mut table = Table::new(
        "E3a (Lemma 8): rounds to solve Guessing(2m, Random_p)",
        &[
            "m",
            "p",
            "fresh-greedy",
            "greedy*p",
            "random-guessing",
            "random*p",
            "random/greedy",
        ],
    );
    for p in ps {
        let greedy = average_game_rounds::<FreshGreedy, _>(
            m,
            TargetPredicate::Random { p },
            trials,
            0xE3,
            FreshGreedy::default,
        );
        let random = average_game_rounds::<RandomGuessing, _>(
            m,
            TargetPredicate::Random { p },
            trials,
            0x2E3,
            || RandomGuessing,
        );
        table.push_row(vec![
            Cell::from(m),
            Cell::from(p),
            Cell::from(greedy),
            Cell::from(greedy * p),
            Cell::from(random),
            Cell::from(random * p),
            Cell::from(random / greedy.max(1e-9)),
        ]);
    }
    table
}

/// E3(b) — Theorem 10: push–pull local broadcast on `G(2n, ℓ, n², Random_φ)`
/// needs `Ω(log n/φ + ℓ)` rounds; the reduction also reports the derived
/// guessing-game rounds (Lemma 6).
pub fn e3_theorem10_network(scale: Scale) -> Table {
    let n = scale.pick(24, 96);
    let configs: Vec<(f64, u64)> = match scale {
        Scale::Quick => vec![(0.3, 2), (0.1, 8)],
        Scale::Full | Scale::Large | Scale::Huge => vec![
            (0.4, 2),
            (0.2, 2),
            (0.1, 2),
            (0.1, 16),
            (0.05, 16),
            (0.05, 64),
        ],
    };
    let mut table = Table::new(
        "E3b (Theorem 10): push-pull local broadcast on G(2n, ell, n^2, Random_phi)",
        &[
            "n",
            "phi",
            "ell",
            "gossip rounds",
            "game rounds",
            "rounds*phi",
            "bound 1/phi + ell",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0x710);
    for (phi, ell) in configs {
        let Ok(net) = gadgets::theorem10_network(n, phi, ell, &mut rng) else {
            continue;
        };
        let out = push_pull_reduction(&net, 0xA00 + ell);
        let bound = 1.0 / phi + ell as f64;
        table.push_row(vec![
            Cell::from(n),
            Cell::from(phi),
            Cell::from(ell),
            Cell::from(out.gossip_rounds),
            Cell::from(out.game_rounds.unwrap_or(0)),
            Cell::from(out.gossip_rounds as f64 * phi),
            Cell::from(bound),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_singleton_rounds_grow_with_m() {
        let t = e2_singleton_game(Scale::Quick);
        assert!(t.rows.len() >= 3);
        let first = match t.rows.first().unwrap()[1] {
            Cell::Float(v) => v,
            _ => panic!("expected float"),
        };
        let last = match t.rows.last().unwrap()[1] {
            Cell::Float(v) => v,
            _ => panic!("expected float"),
        };
        assert!(last > first, "singleton game rounds must grow with m");
    }

    #[test]
    fn e2_theorem9_rounds_grow_with_delta() {
        let t = e2_theorem9_network(Scale::Quick);
        assert!(t.rows.len() >= 2);
        let rounds: Vec<i64> = t
            .rows
            .iter()
            .map(|r| match r[3] {
                Cell::Int(v) => v,
                _ => panic!("expected int"),
            })
            .collect();
        assert!(rounds.last().unwrap() > rounds.first().unwrap());
    }

    #[test]
    fn e3_tables_are_nonempty() {
        assert!(!e3_random_game(Scale::Quick).rows.is_empty());
        assert!(!e3_theorem10_network(Scale::Quick).rows.is_empty());
    }
}
