//! E1 — Theorem 5: the sandwich `φ*/(2ℓ*) ≤ φ_avg ≤ L·φ*/ℓ*` across graph
//! families and latency schemes.

use gossip_conductance::{analyze, Method};
use gossip_graph::latency::LatencyScheme;
use gossip_graph::{generators, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Cell, Scale, Table};

/// The graph families swept by E1 (name, constructor).
pub fn families(scale: Scale, rng: &mut SmallRng) -> Vec<(String, Graph)> {
    let small = scale.pick(8, 12);
    let medium = scale.pick(16, 48);
    let large = scale.pick(32, 128);
    let mut out: Vec<(String, Graph)> = vec![
        (
            format!("clique(n={small})"),
            generators::clique(small, 1).unwrap(),
        ),
        (
            format!("cycle(n={medium})"),
            generators::cycle(medium, 1).unwrap(),
        ),
        (
            format!("dumbbell(s={small}, bridge=16)"),
            generators::dumbbell(small, 16).unwrap(),
        ),
        (
            format!("ring_of_cliques(k=4, s={small}, bridge=8)"),
            generators::ring_of_cliques(4, small, 8).unwrap(),
        ),
        (
            format!("grid(4x{small})"),
            generators::grid(4, small, 2).unwrap(),
        ),
        (
            format!("star(n={medium}, spokes=4)"),
            generators::star(medium, 4).unwrap(),
        ),
        (
            format!("slow_cut_expander(n={large}, d=6, slow=32)"),
            generators::slow_cut_expander(large, 6, 32, rng).unwrap(),
        ),
    ];
    // Weighted variants of the clique under the latency schemes of DESIGN.md.
    let base = generators::clique(medium, 1).unwrap();
    for (name, scheme) in [
        (
            "two-level",
            LatencyScheme::TwoLevel {
                fast: 1,
                slow: 64,
                fast_probability: 0.2,
            },
        ),
        ("power-law", LatencyScheme::PowerLawClasses { classes: 6 }),
        (
            "uniform-random",
            LatencyScheme::UniformRandom { min: 1, max: 32 },
        ),
    ] {
        out.push((
            format!("clique(n={medium}) + {name} latencies"),
            scheme.apply(&base, rng).unwrap(),
        ));
    }
    out
}

/// Runs E1 and returns the Theorem-5 table.
pub fn e1_theorem5(scale: Scale) -> Table {
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let mut table = Table::new(
        "E1 (Theorem 5): phi*/(2 ell*) <= phi_avg <= L * phi*/ell*",
        &[
            "family", "n", "phi_star", "ell_star", "phi_avg", "L", "lower", "upper", "holds",
        ],
    );
    for (name, g) in families(scale, &mut rng) {
        // Exact cut enumeration for small graphs; sweep-cut estimates otherwise.
        let exact = g.node_count() <= 14;
        let report = match analyze(&g, Method::Auto) {
            Ok(r) => r,
            Err(e) => {
                table.push_row(vec![
                    Cell::from(name),
                    Cell::from(g.node_count()),
                    Cell::from(format!("error: {e}")),
                    Cell::from(0u64),
                    Cell::from(0.0),
                    Cell::from(0usize),
                    Cell::from(0.0),
                    Cell::from(0.0),
                    Cell::from("n/a"),
                ]);
                continue;
            }
        };
        table.push_row(vec![
            Cell::from(name),
            Cell::from(g.node_count()),
            Cell::from(report.phi_star),
            Cell::from(report.ell_star),
            Cell::from(report.phi_avg),
            Cell::from(report.nonempty_classes),
            Cell::from(report.theorem5_lower()),
            Cell::from(report.theorem5_upper()),
            Cell::from(if exact {
                if report.theorem5_holds() {
                    "yes"
                } else {
                    "NO"
                }
            } else if report.theorem5_holds_with_tolerance(0.2) {
                "yes (est)"
            } else {
                "NO"
            }),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem5_holds_on_every_family() {
        let table = e1_theorem5(Scale::Quick);
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            let holds = row.last().unwrap().to_string();
            assert!(
                holds == "yes" || holds == "yes (est)",
                "Theorem 5 violated in row {row:?}"
            );
        }
    }

    #[test]
    fn families_cover_multiple_latency_classes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let fams = families(Scale::Quick, &mut rng);
        assert!(fams.len() >= 8);
        assert!(fams.iter().any(|(_, g)| g.max_latency() > 8));
    }
}
