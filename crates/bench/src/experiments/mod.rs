//! One module per experiment-index entry of `DESIGN.md`.
//!
//! | Experiment | Paper claim | Function |
//! |------------|-------------|----------|
//! | E1 | Theorem 5 sandwich between `φ*` and `φ_avg` | [`conductance::e1_theorem5`] |
//! | E2 | Lemma 7 / Theorem 9: singleton guessing and `Ω(Δ)` local broadcast | [`guessing::e2_singleton_game`], [`guessing::e2_theorem9_network`] |
//! | E3 | Lemma 8 / Theorem 10: `Random_p` guessing and push–pull on the bipartite gadget | [`guessing::e3_random_game`], [`guessing::e3_theorem10_network`] |
//! | E4 | Theorem 13: `Ω(min(Δ+D, ℓ/φ))` trade-off on the ring | [`ring::e4_tradeoff`] |
//! | E5 | Theorem 29: push–pull in `O((ℓ*/φ*)·log n)` | [`upper_bounds::e5_push_pull`] |
//! | E6 | Lemma 19–23 / Theorem 20/25: spanner properties and `O(D·log³ n)` broadcast | [`upper_bounds::e6_spanner`], [`upper_bounds::e6_spanner_broadcast`] |
//! | E7 | Lemmas 26–28: pattern broadcast in `O(D·log² n·log D)` | [`upper_bounds::e7_pattern`] |
//! | E8 | Theorem 31: the unified bound and its regime crossover | [`upper_bounds::e8_unified`] |
//! | F1 | Figure 1: gadget wiring | [`figures::f1_gadgets`] |
//! | F2 | Figure 2 / Lemmas 15–17: ring conductance | [`ring::f2_ring_conductance`] |
//! | F8 | Figures 8–9: ℓ-DTG cost `O(ℓ·log² n)` | [`figures::f8_dtg`] |

pub mod conductance;
pub mod figures;
pub mod guessing;
pub mod ring;
pub mod upper_bounds;

use crate::{Scale, Table};

/// Runs every experiment and returns all tables, in index order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        conductance::e1_theorem5(scale),
        guessing::e2_singleton_game(scale),
        guessing::e2_theorem9_network(scale),
        guessing::e3_random_game(scale),
        guessing::e3_theorem10_network(scale),
        ring::e4_tradeoff(scale),
        upper_bounds::e5_push_pull(scale),
        upper_bounds::e6_spanner(scale),
        upper_bounds::e6_spanner_broadcast(scale),
        upper_bounds::e7_pattern(scale),
        upper_bounds::e8_unified(scale),
        figures::f1_gadgets(scale),
        ring::f2_ring_conductance(scale),
        figures::f8_dtg(scale),
    ]
}

/// Looks up a single experiment by its id (`"e1"`, `"e6b"`, `"f2"`, …).
///
/// Returns `None` for unknown ids.
pub fn run_one(id: &str, scale: Scale) -> Option<Vec<Table>> {
    let tables = match id.to_ascii_lowercase().as_str() {
        "e1" => vec![conductance::e1_theorem5(scale)],
        "e2" => vec![
            guessing::e2_singleton_game(scale),
            guessing::e2_theorem9_network(scale),
        ],
        "e3" => vec![
            guessing::e3_random_game(scale),
            guessing::e3_theorem10_network(scale),
        ],
        "e4" => vec![ring::e4_tradeoff(scale)],
        "e5" => vec![upper_bounds::e5_push_pull(scale)],
        "e6" => vec![
            upper_bounds::e6_spanner(scale),
            upper_bounds::e6_spanner_broadcast(scale),
        ],
        "e7" => vec![upper_bounds::e7_pattern(scale)],
        "e8" => vec![upper_bounds::e8_unified(scale)],
        "f1" => vec![figures::f1_gadgets(scale)],
        "f2" => vec![ring::f2_ring_conductance(scale)],
        "f8" => vec![figures::f8_dtg(scale)],
        "all" => run_all(scale),
        _ => return None,
    };
    Some(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_knows_every_experiment_id() {
        for id in [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "f1", "f2", "f8",
        ] {
            assert!(
                run_one(id, Scale::Quick).is_some(),
                "unknown experiment id {id}"
            );
        }
        assert!(run_one("nope", Scale::Quick).is_none());
    }
}
