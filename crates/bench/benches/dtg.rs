//! F8 bench: the ell-DTG local-broadcast building block.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::dtg;
use gossip_graph::generators;

fn bench_dtg(c: &mut Criterion) {
    let mut group = c.benchmark_group("f8_ell_dtg");
    group.sample_size(10);

    for (n, ell) in [(32usize, 1u64), (32, 4), (64, 1)] {
        let g = generators::clique(n, ell).unwrap();
        group.bench_function(format!("dtg_clique_n{n}_ell{ell}"), |b| {
            b.iter(|| dtg::local_broadcast(&g, ell, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtg);
criterion_main!(benches);
