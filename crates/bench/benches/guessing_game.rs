//! E2/E3 bench: the guessing game under the singleton and Random_p predicates.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_lowerbound::game::GuessingGame;
use gossip_lowerbound::predicates::TargetPredicate;
use gossip_lowerbound::strategies::{play, FreshGreedy, RandomGuessing};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_e3_guessing_game");
    group.sample_size(10);

    group.bench_function("singleton_m64_random_guessing", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let game = GuessingGame::new(64, TargetPredicate::Singleton, &mut rng);
            play(game, &mut RandomGuessing, 1_000_000, &mut rng)
        })
    });

    group.bench_function("random_p0.1_m64_fresh_greedy", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let game = GuessingGame::new(64, TargetPredicate::Random { p: 0.1 }, &mut rng);
            play(game, &mut FreshGreedy::default(), 1_000_000, &mut rng)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_game);
criterion_main!(benches);
