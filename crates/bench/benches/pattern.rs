//! E7 bench: the pattern broadcast schedule T(D).

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::pattern;
use gossip_graph::generators;

fn bench_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pattern_broadcast");
    group.sample_size(10);

    let cycle = generators::cycle(12, 2).unwrap();
    group.bench_function("pattern_known_d_cycle12", |b| {
        b.iter(|| pattern::run_known_diameter(&cycle, 1))
    });

    let dumbbell = generators::dumbbell(5, 8).unwrap();
    group.bench_function("pattern_unknown_d_dumbbell10", |b| {
        b.iter(|| pattern::run_unknown_diameter(&dumbbell, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
