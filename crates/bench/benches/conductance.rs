//! E1 bench: critical and average weighted conductance (exact vs sweep).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gossip_conductance::{analyze, Method};
use gossip_graph::generators;

fn bench_conductance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_conductance");
    group.sample_size(10);

    let small = generators::dumbbell(6, 16).unwrap();
    group.bench_function("exact_dumbbell_12", |b| {
        b.iter_batched(
            || small.clone(),
            |g| analyze(&g, Method::Exact).unwrap(),
            BatchSize::SmallInput,
        )
    });

    let medium = generators::ring_of_cliques(8, 8, 16).unwrap();
    group.bench_function("sweep_ring_of_cliques_64", |b| {
        b.iter_batched(
            || medium.clone(),
            |g| analyze(&g, Method::SweepCut).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_conductance);
criterion_main!(benches);
