//! E4 bench: push-pull broadcast on the Theorem-13 ring of gadgets.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::push_pull;
use gossip_graph::NodeId;
use gossip_lowerbound::gadgets::theorem13_ring;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ring_tradeoff");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(3);

    for ell in [2u64, 32] {
        let ring = theorem13_ring(4, 4, ell, &mut rng).unwrap();
        group.bench_function(format!("push_pull_ring_ell_{ell}"), |b| {
            b.iter(|| push_pull::broadcast(&ring.graph, NodeId::new(0), 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
