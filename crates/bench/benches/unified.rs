//! E8 bench: the unified algorithm (push-pull racing the spanner route).

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::unified;
use gossip_graph::{generators, NodeId};

fn bench_unified(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_unified");
    group.sample_size(10);

    let clique = generators::clique(32, 1).unwrap();
    group.bench_function("unified_known_latencies_clique32", |b| {
        b.iter(|| unified::run_known_latencies(&clique, NodeId::new(0), 5))
    });

    let dumbbell = generators::dumbbell(8, 64).unwrap();
    group.bench_function("unified_unknown_latencies_dumbbell16", |b| {
        b.iter(|| unified::run_unknown_latencies(&dumbbell, NodeId::new(0), 5))
    });
    group.finish();
}

criterion_group!(benches, bench_unified);
criterion_main!(benches);
