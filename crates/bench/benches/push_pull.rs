//! E5 bench: push-pull broadcast on the planted slow-cut expander family.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::push_pull;
use gossip_graph::{generators, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_push_pull(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_push_pull");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(5);

    for (n, slow) in [(64usize, 4u64), (64, 32)] {
        let g = generators::slow_cut_expander(n, 6, slow, &mut rng).unwrap();
        group.bench_function(format!("broadcast_n{n}_slow{slow}"), |b| {
            b.iter(|| push_pull::broadcast(&g, NodeId::new(0), 9))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_push_pull);
criterion_main!(benches);
