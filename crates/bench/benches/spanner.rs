//! E6 bench: spanner construction and the spanner-broadcast pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use gossip_core::{spanner, spanner_broadcast};
use gossip_graph::generators;
use gossip_graph::latency::LatencyScheme;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_spanner");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(6);

    let base = generators::erdos_renyi(96, 0.15, 1, &mut rng).unwrap();
    let g = LatencyScheme::UniformRandom { min: 1, max: 16 }
        .apply(&base, &mut rng)
        .unwrap();
    group.bench_function("log_spanner_n96", |b| {
        b.iter(|| spanner::log_spanner(&g, 11))
    });

    let small = generators::ring_of_cliques(4, 6, 8).unwrap();
    group.bench_function("spanner_broadcast_known_d_n24", |b| {
        b.iter(|| spanner_broadcast::run_known_diameter(&small, 3))
    });
    group.bench_function("spanner_broadcast_unknown_d_n24", |b| {
        b.iter(|| spanner_broadcast::run_unknown_diameter(&small, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_spanner);
criterion_main!(benches);
