//! Pattern Broadcast (Section 4.2, Algorithm 5, Lemmas 26–28): a deterministic
//! all-to-all dissemination algorithm built from ℓ-DTG invocations.
//!
//! The schedule `T(k)` is defined recursively:
//!
//! ```text
//! T(1) = 1-DTG
//! T(k) = T(k/2) · k-DTG · T(k/2)
//! ```
//!
//! so the sequence of ℓ-parameters is `1, 2, 1, 4, 1, 2, 1, 8, …`.  Lemma 26
//! shows that after running `T(k)` every pair of nodes within weighted
//! distance `k` has exchanged rumors, and Lemma 27 bounds the cost by
//! `O(k·log² n·log k)`.  The algorithm needs no knowledge of `n` and works
//! even with blocking communication; for an unknown diameter it is wrapped in
//! the same guess-and-double / Termination_Check loop as the spanner
//! algorithm (Algorithm 5).

use gossip_graph::{Graph, Latency};
use gossip_sim::{RumorId, RumorSet};

use crate::{dtg, DisseminationReport, Phase};

/// The recursive schedule `T(k)`: the sequence of ℓ-DTG parameters.
///
/// `k` is rounded up to the next power of two (the recursion halves `k`).
///
/// ```rust
/// assert_eq!(gossip_core::pattern::schedule(4), vec![1, 2, 1, 4, 1, 2, 1]);
/// ```
pub fn schedule(k: Latency) -> Vec<Latency> {
    let k = k.max(1).next_power_of_two();
    if k == 1 {
        return vec![1];
    }
    let half = schedule(k / 2);
    let mut out = half.clone();
    out.push(k);
    out.extend(half);
    out
}

/// Runs the full schedule `T(k)` starting from the given rumor sets, in
/// blocking or non-blocking mode, and returns the report and final rumor sets.
///
/// # Panics
///
/// Panics if `rumors.len()` differs from the node count of `g`.
pub fn run_schedule(
    g: &Graph,
    k: Latency,
    seed: u64,
    mut rumors: Vec<RumorSet>,
    blocking: bool,
) -> (DisseminationReport, Vec<RumorSet>) {
    let mut phases = Vec::new();
    for (idx, ell) in schedule(k).into_iter().enumerate() {
        let (report, new_rumors, _) =
            dtg::run_with_rumors(g, ell, seed.wrapping_add(idx as u64), rumors, blocking);
        rumors = new_rumors;
        phases.push(Phase::new(
            format!("{ell}-dtg"),
            report.rounds,
            report.activations,
        ));
    }
    let completed = rumors.iter().all(RumorSet::is_full);
    (
        DisseminationReport::from_phases("pattern-broadcast", phases, completed),
        rumors,
    )
}

/// Pattern Broadcast with a known diameter: runs `T(D)` once (Lemma 27).
///
/// "Known D" is served by the diameter-bound oracle (exact below the
/// threshold, an upper bound `≥ D` above it); the schedule rounds `k` up to
/// a power of two anyway, so a constant-factor overshoot only ever doubles
/// the top-level `k`.
pub fn run_known_diameter(g: &Graph, seed: u64) -> DisseminationReport {
    run_known_diameter_with(g, crate::diameter_bound(g), seed)
}

/// [`run_known_diameter`] with the diameter (or an upper bound on it)
/// supplied by the caller instead of recomputed from the graph.
pub fn run_known_diameter_with(g: &Graph, d: Latency, seed: u64) -> DisseminationReport {
    run_schedule(g, d.max(1), seed, initial_rumors(g), true).0
}

/// Pattern Broadcast with an unknown diameter (Algorithm 5): guess-and-double
/// on `k`, with a Termination_Check after every guess whose cost equals one
/// more `T(k)` pass (the check broadcasts and gathers rumor-set digests using
/// the same schedule).
pub fn run_unknown_diameter(g: &Graph, seed: u64) -> DisseminationReport {
    let mut phases: Vec<Phase> = Vec::new();
    let mut rumors = initial_rumors(g);
    let mut guess: Latency = 1;
    let cap = guess_cap(g);
    let mut completed = false;

    while guess <= cap {
        let (report, new_rumors) = run_schedule(g, guess, seed ^ guess, rumors, true);
        rumors = new_rumors;
        let pass_rounds = report.rounds;
        let pass_activations = report.activations;
        phases.push(Phase::new(
            format!("T({guess})"),
            pass_rounds,
            pass_activations,
        ));
        phases.push(Phase::new(
            format!("T({guess}): termination-check"),
            pass_rounds,
            0,
        ));
        if rumors.iter().all(RumorSet::is_full) {
            completed = true;
            break;
        }
        guess = guess.saturating_mul(2);
    }

    DisseminationReport::from_phases("pattern-broadcast (unknown D)", phases, completed)
}

fn initial_rumors(g: &Graph) -> Vec<RumorSet> {
    let n = g.node_count();
    (0..n)
        .map(|i| RumorSet::singleton(n, RumorId::from(i)))
        .collect()
}

fn guess_cap(g: &Graph) -> Latency {
    let total: u128 = g.total_latency().max(1);
    let mut cap: Latency = 1;
    while (cap as u128) < total && cap < Latency::MAX / 2 {
        cap *= 2;
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn schedule_matches_the_paper_pattern() {
        assert_eq!(schedule(1), vec![1]);
        assert_eq!(schedule(2), vec![1, 2, 1]);
        assert_eq!(schedule(4), vec![1, 2, 1, 4, 1, 2, 1]);
        assert_eq!(
            schedule(8),
            vec![1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1]
        );
        // Non-powers of two round up.
        assert_eq!(schedule(3), schedule(4));
        assert_eq!(schedule(5), schedule(8));
    }

    #[test]
    fn schedule_length_is_2k_minus_1() {
        for k in [1u64, 2, 4, 8, 16, 32] {
            assert_eq!(schedule(k).len() as u64, 2 * k - 1);
        }
    }

    #[test]
    fn known_diameter_completes_on_unit_latency_families() {
        for g in [
            generators::clique(12, 1).unwrap(),
            generators::cycle(12, 1).unwrap(),
            generators::grid(3, 4, 1).unwrap(),
        ] {
            let r = run_known_diameter(&g, 3);
            assert!(
                r.completed,
                "pattern broadcast failed on {} nodes",
                g.node_count()
            );
        }
    }

    #[test]
    fn known_diameter_completes_with_mixed_latencies() {
        let g = generators::dumbbell(4, 8).unwrap();
        let r = run_known_diameter(&g, 5);
        assert!(r.completed);
        // The schedule must have included an 8-DTG (or larger) phase to cross the bridge.
        assert!(r
            .phases
            .iter()
            .any(|p| p.name == "8-dtg" || p.name == "16-dtg"));
    }

    #[test]
    fn unknown_diameter_completes_and_reports_doubling_phases() {
        let g = generators::dumbbell(4, 8).unwrap();
        let r = run_unknown_diameter(&g, 2);
        assert!(r.completed);
        assert!(r.phases.iter().any(|p| p.name.starts_with("T(1)")));
        assert!(r
            .phases
            .iter()
            .any(|p| p.name.starts_with("T(8)") || p.name.starts_with("T(16)")));
    }

    #[test]
    fn phases_sum_to_total_rounds() {
        let g = generators::ring_of_cliques(3, 3, 4).unwrap();
        let r = run_known_diameter(&g, 9);
        assert_eq!(r.rounds, r.phases.iter().map(|p| p.rounds).sum::<u64>());
    }

    #[test]
    fn nonblocking_schedule_also_completes() {
        let g = generators::cycle(8, 2).unwrap();
        let d = gossip_graph::metrics::weighted_diameter(&g).unwrap();
        let (r, rumors) = run_schedule(&g, d, 1, initial_rumors(&g), false);
        assert!(r.completed);
        assert!(rumors.iter().all(RumorSet::is_full));
    }
}
