//! Deterministic round-robin flooding — the baseline the paper's introduction
//! measures everything against.
//!
//! Flooding contacts neighbors one at a time in round-robin order.  On a star
//! (footnote 3 of the paper) push-only flooding needs `Ω(n·D)` time; with the
//! model's automatic pull it is simply a slow but simple baseline whose cost
//! grows with the maximum degree instead of the conductance.

use gossip_graph::{Graph, NodeId};
use gossip_sim::protocols::RoundRobinFlood;
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};

use crate::DisseminationReport;

/// One-to-all dissemination from `source` by round-robin flooding.
pub fn broadcast(g: &Graph, source: NodeId, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowRumorOf(source))
        .track_rumor(RumorId::of_node(source))
        .max_rounds(round_cap(g));
    let report = Simulation::new(g, config).run(&mut RoundRobinFlood::new(g));
    DisseminationReport::single(
        "flooding",
        report.rounds,
        report.activations,
        report.completed,
    )
    .with_mem(report.mem)
}

/// All-to-all dissemination by round-robin flooding.
pub fn all_to_all(g: &Graph, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowAll)
        .max_rounds(round_cap(g));
    let report = Simulation::new(g, config).run(&mut RoundRobinFlood::new(g));
    DisseminationReport::single(
        "flooding (all-to-all)",
        report.rounds,
        report.activations,
        report.completed,
    )
    .with_mem(report.mem)
}

fn round_cap(g: &Graph) -> u64 {
    (g.node_count() as u64)
        .saturating_mul(g.max_latency().max(1))
        .saturating_mul(4)
        .max(10_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn flooding_completes_on_basic_families() {
        for g in [
            generators::clique(16, 1).unwrap(),
            generators::path(16, 2).unwrap(),
            generators::star(16, 1).unwrap(),
            generators::grid(4, 4, 3).unwrap(),
        ] {
            let r = broadcast(&g, NodeId::new(0), 1);
            assert!(r.completed);
        }
    }

    #[test]
    fn flooding_cost_is_at_least_the_weighted_diameter() {
        // Information must physically traverse a diameter-length path, so no
        // dissemination algorithm (flooding included) can beat D rounds.
        let g = generators::path(12, 5).unwrap();
        let d = gossip_graph::metrics::weighted_diameter(&g).unwrap();
        let r = broadcast(&g, NodeId::new(0), 1);
        assert!(r.completed);
        assert!(
            r.rounds >= d,
            "flooding finished in {} rounds, below D = {d}",
            r.rounds
        );
    }

    #[test]
    fn flooding_must_pay_the_bridge_latency_on_a_dumbbell() {
        let g = generators::dumbbell(5, 40).unwrap();
        let r = all_to_all(&g, 2);
        assert!(r.completed);
        assert!(
            r.rounds >= 40,
            "crossing the latency-40 bridge cannot take {} rounds",
            r.rounds
        );
    }

    #[test]
    fn flooding_is_deterministic() {
        let g = generators::ring_of_cliques(3, 4, 5).unwrap();
        assert_eq!(
            broadcast(&g, NodeId::new(0), 1).rounds,
            broadcast(&g, NodeId::new(0), 9).rounds
        );
    }
}
