//! ℓ-DTG: Deterministic Tree Gossip local broadcast (Appendix A.1 of the paper,
//! after Haeupler's DTG algorithm).
//!
//! Local broadcast asks every node to exchange rumors with all of its
//! neighbors; the ℓ-variant restricts attention to neighbors joined by an
//! edge of latency at most `ℓ` (the subgraph `G_ℓ`).  DTG achieves this in
//! `O(log² n)` *iterations-worth* of communication on unweighted graphs, and
//! `O(ℓ·log² n)` rounds when each exchange costs up to `ℓ` rounds — which is
//! what makes it the building block of the spanner and pattern broadcast
//! algorithms (Sections 4.1 and 4.2).
//!
//! The implementation follows the pseudocode of Algorithm 6 in the paper: each
//! node runs iterations; in iteration `i` it links to a new neighbor it has
//! not heard from yet and then performs the pipelined
//! PUSH(i..1) / PULL(1..i) / PULL / PUSH exchange sequence over the neighbors
//! linked so far, waiting for each exchange to complete before the next.
//! "Heard from" is tracked per invocation with exactly the same *snapshot-free*
//! semantics the simulator uses for rumors: each node keeps an append-only
//! [`AcquisitionLog`] of the ids it heard, an in-flight exchange records only
//! the two log **lengths** at initiation, and completion replays the
//! unmerged log prefix through a per-direction watermark.  A node therefore
//! never believes it heard from a neighbor whose rumors it has not actually
//! received — at the cost of two integers per in-flight exchange instead of
//! the two full `RumorSet` clones this used to take.

use std::collections::HashMap;

use gossip_graph::{Graph, Latency, NodeId};
use gossip_sim::{
    AcquisitionLog, Activity, ExchangeEvent, NodeView, Protocol, RumorId, RumorSet, SimConfig,
    Simulation, Termination,
};
use rand::rngs::SmallRng;

use crate::DisseminationReport;

/// Per-node program state of the ℓ-DTG state machine.
#[derive(Debug, Clone)]
struct DtgNode {
    /// Neighbors reachable over edges of latency ≤ the bound, in id order.
    fast_neighbors: Vec<NodeId>,
    /// Neighbors linked so far in this invocation (`u_1 … u_i`).
    linked: Vec<NodeId>,
    /// Exchange targets of the current iteration, in order.
    queue: Vec<NodeId>,
    /// Next index into `queue`.
    queue_pos: usize,
    /// `true` while an exchange this node initiated is still in flight.
    waiting: bool,
    /// `true` once the node has heard from all of its fast neighbors.
    done: bool,
    /// Number of iterations performed (for the `O(log n)`-iterations check).
    iterations: usize,
}

/// The ℓ-DTG local-broadcast protocol.
///
/// Run it with [`local_broadcast`] or compose it with existing rumor state via
/// [`run_with_rumors`] (as the pattern-broadcast schedule does).
#[derive(Debug)]
pub struct EllDtg {
    bound: Latency,
    nodes: Vec<DtgNode>,
    /// Per-node set of node ids heard from during this invocation.
    heard: Vec<RumorSet>,
    /// Append-only acquisition order of each `heard` set (run-compressed);
    /// in-flight exchanges snapshot *positions* into these logs, never the
    /// sets themselves.
    heard_log: Vec<AcquisitionLog>,
    /// Log lengths `(initiator, responder)` at initiation time, keyed by
    /// `(initiator, responder, initiation round)` — the snapshot-free
    /// analogue of the engine's own exchange bookkeeping.
    // gossip-lint: allow(unordered-iter): keyed insert/remove/entry only, never iterated — completions look up their own (initiator, responder, round) key
    pending: HashMap<(u32, u32, u64), (u32, u32)>,
    /// Directed merge watermarks: `(src, dst) → position`, the prefix of
    /// `src`'s log already replayed into `dst`.  Completions replay only
    /// `[watermark, snapshot)`, so overlapping exchanges on the same pair
    /// never re-scan merged history.
    // gossip-lint: allow(unordered-iter): keyed watermark lookups only, never iterated — order can't reach any observable
    merged: HashMap<(u32, u32), u32>,
    /// Scratch reused across completions (log segments, newly heard ids).
    scratch_segments: Vec<(RumorId, u32)>,
    scratch_new: Vec<RumorId>,
}

impl EllDtg {
    /// Creates the protocol for graph `g` with latency bound `bound`.
    pub fn new(g: &Graph, bound: Latency) -> Self {
        let n = g.node_count();
        let nodes = g
            .nodes()
            .map(|v| {
                let fast_neighbors: Vec<NodeId> = g
                    .neighbors(v)
                    .filter(|&(_, e)| g.latency(e) <= bound)
                    .map(|(w, _)| w)
                    .collect();
                DtgNode {
                    done: fast_neighbors.is_empty(),
                    fast_neighbors,
                    linked: Vec::new(),
                    queue: Vec::new(),
                    queue_pos: 0,
                    waiting: false,
                    iterations: 0,
                }
            })
            .collect();
        let heard: Vec<RumorSet> = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        let heard_log = heard.iter().map(AcquisitionLog::from_set).collect();
        EllDtg {
            bound,
            nodes,
            heard,
            heard_log,
            pending: HashMap::new(),
            merged: HashMap::new(),
            scratch_segments: Vec::new(),
            scratch_new: Vec::new(),
        }
    }

    /// Records `id` as heard by `node`, keeping the acquisition log in sync.
    // gossip-lint: allow(panic-path): per-node state vec is sized n at construction; node ids come from the engine
    fn hear(&mut self, node: usize, id: RumorId) {
        if self.heard[node].insert(id) {
            self.heard_log[node].push(id);
        }
    }

    /// Replays `src`'s heard-log prefix `[watermark, upto)` into `dst`,
    /// advancing the directed watermark.  Positions below the watermark were
    /// already merged into `dst` by an earlier completion on this pair, so
    /// the result equals the old union-with-snapshot semantics.
    // gossip-lint: allow(panic-path): log positions are bounded by the acquisition-log length invariant
    fn replay(&mut self, src: usize, dst: usize, upto: u32) {
        let wm = self.merged.entry((src as u32, dst as u32)).or_insert(0);
        let from = *wm;
        if from >= upto {
            return;
        }
        *wm = upto;
        let mut segments = std::mem::take(&mut self.scratch_segments);
        self.heard_log[src].for_each_segment(from, upto, |first, len| {
            segments.push((first, len));
        });
        let mut new_ids = std::mem::take(&mut self.scratch_new);
        for &(first, len) in &segments {
            new_ids.clear();
            self.heard[dst].insert_consecutive(first, len, &mut new_ids);
            for &id in &new_ids {
                self.heard_log[dst].push(id);
            }
        }
        segments.clear();
        new_ids.clear();
        self.scratch_segments = segments;
        self.scratch_new = new_ids;
    }

    /// Latency bound ℓ of this invocation.
    pub fn bound(&self) -> Latency {
        self.bound
    }

    /// Largest number of iterations any node performed (the quantity the
    /// DTG analysis bounds by `O(log n)`).
    pub fn max_iterations(&self) -> usize {
        self.nodes.iter().map(|s| s.iterations).max().unwrap_or(0)
    }

    // gossip-lint: allow(panic-path): per-node vecs are sized n at construction; node ids come from the engine
    fn start_iteration(&mut self, v: usize) {
        let state = &mut self.nodes[v];
        // Find a new neighbor not yet heard from.
        let heard = &self.heard[v];
        let fresh = state
            .fast_neighbors
            .iter()
            .copied()
            .find(|&u| !heard.contains(RumorId::of_node(u)));
        let Some(new_neighbor) = fresh else {
            state.done = true;
            return;
        };
        state.linked.push(new_neighbor);
        state.iterations += 1;
        // PUSH j = i..1, PULL j = 1..i, then the symmetric PULL, PUSH pass.
        let i = state.linked.len();
        let mut queue = Vec::with_capacity(4 * i);
        queue.extend(state.linked[..i].iter().rev().copied()); // PUSH i..1
        queue.extend(state.linked[..i].iter().copied()); // PULL 1..i
        queue.extend(state.linked[..i].iter().copied()); // PULL 1..i
        queue.extend(state.linked[..i].iter().rev().copied()); // PUSH i..1
        state.queue = queue;
        state.queue_pos = 0;
    }
}

impl Protocol for EllDtg {
    fn name(&self) -> &'static str {
        "ell-dtg"
    }

    // gossip-lint: allow(panic-path): per-node state and schedule vecs are sized n at construction
    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let v = view.node.index();
        if self.nodes[v].done || self.nodes[v].waiting {
            return None;
        }
        if self.nodes[v].queue_pos >= self.nodes[v].queue.len() {
            // Iteration finished (or not started yet): check termination and
            // possibly start the next iteration.
            let all_heard = self.nodes[v]
                .fast_neighbors
                .iter()
                .all(|&u| self.heard[v].contains(RumorId::of_node(u)));
            if all_heard {
                self.nodes[v].done = true;
                return None;
            }
            self.start_iteration(v);
            if self.nodes[v].done || self.nodes[v].queue.is_empty() {
                return None;
            }
        }
        let target = self.nodes[v].queue[self.nodes[v].queue_pos];
        self.nodes[v].waiting = true;
        self.pending.insert(
            (v as u32, target.index() as u32, view.round),
            (
                self.heard_log[v].len(),
                self.heard_log[target.index()].len(),
            ),
        );
        Some(target)
    }

    // gossip-lint: allow(panic-path): per-node state vec is sized n at construction
    fn on_exchange(&mut self, node: NodeId, event: &ExchangeEvent) {
        if !event.initiated_here {
            return;
        }
        let v = node.index();
        let u = event.peer.index();
        let init_round = event.round - event.latency;
        if let Some((len_v, len_u)) = self.pending.remove(&(v as u32, u as u32, init_round)) {
            self.replay(u, v, len_u);
            self.replay(v, u, len_v);
        }
        self.hear(v, RumorId::of_node(event.peer));
        self.hear(u, RumorId::of_node(node));
        self.nodes[v].waiting = false;
        self.nodes[v].queue_pos += 1;
    }

    fn is_idle(&self, node: NodeId) -> bool {
        self.nodes[node.index()].done
    }

    // gossip-audit: contract(pure)
    fn activity(&self, view: &NodeView<'_>) -> Activity {
        let state = &self.nodes[view.node.index()];
        if state.done {
            // `done` is never reset: the node has heard from every fast
            // neighbor and `on_round` returns `None` forever.
            Activity::Quiescent
        } else if state.waiting {
            // Blocked on its own in-flight exchange; its completion is a
            // wake event (it reaches `on_exchange` with `initiated_here`,
            // which clears `waiting`).  Until then `on_round` returns `None`
            // without touching any state or the RNG.
            Activity::IdleUntilWoken
        } else {
            Activity::Active
        }
    }
}

/// Runs ℓ-DTG local broadcast on `g` with the given latency bound, starting
/// from the canonical "every node knows its own rumor" state.
///
/// The run stops when every node's program has finished (which implies every
/// node has exchanged rumors with all of its ≤ ℓ neighbors).
pub fn local_broadcast(g: &Graph, bound: Latency, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::Quiescent)
        .max_rounds(round_cap(g, bound));
    let mut protocol = EllDtg::new(g, bound);
    let mut sim = Simulation::new(g, config);
    let report = sim.run(&mut protocol);
    // Double-check the local-broadcast postcondition against the rumor state.
    let achieved = local_broadcast_achieved(g, bound, sim.rumors());
    DisseminationReport::single(
        "ell-dtg",
        report.rounds,
        report.activations,
        report.completed && achieved,
    )
}

/// Runs one ℓ-DTG invocation starting from the supplied rumor sets and returns
/// `(report, final rumor sets, max iterations)`.
///
/// This is the form the pattern-broadcast schedule needs: rumor knowledge is
/// carried across invocations while the "who have I exchanged with" state is
/// reset for each invocation.
///
/// # Panics
///
/// Panics if `rumors.len()` differs from the node count of `g`.
pub fn run_with_rumors(
    g: &Graph,
    bound: Latency,
    seed: u64,
    rumors: Vec<RumorSet>,
    blocking: bool,
) -> (DisseminationReport, Vec<RumorSet>, usize) {
    let mode = if blocking {
        gossip_sim::ExchangeMode::Blocking
    } else {
        gossip_sim::ExchangeMode::NonBlocking
    };
    let config = SimConfig::new(seed)
        .termination(Termination::Quiescent)
        .mode(mode)
        .max_rounds(round_cap(g, bound));
    let mut protocol = EllDtg::new(g, bound);
    let mut sim = Simulation::with_rumors(g, config, rumors);
    let report = sim.run(&mut protocol);
    let iterations = protocol.max_iterations();
    let out = DisseminationReport::single(
        "ell-dtg",
        report.rounds,
        report.activations,
        report.completed,
    );
    (out, sim.into_rumors(), iterations)
}

/// Checks the ℓ-local-broadcast postcondition: every node knows the rumor of
/// every neighbor connected to it by an edge of latency at most `bound`.
pub fn local_broadcast_achieved(g: &Graph, bound: Latency, rumors: &[RumorSet]) -> bool {
    g.nodes().all(|v| {
        g.neighbors(v)
            .all(|(w, e)| g.latency(e) > bound || rumors[v.index()].contains(RumorId::of_node(w)))
    })
}

fn round_cap(g: &Graph, bound: Latency) -> u64 {
    // DTG costs O(ℓ · log² n); allow a very generous multiple before giving up.
    let n = g.node_count() as u64;
    let log = (64 - n.leading_zeros() as u64).max(1);
    (bound.max(1)) * log * log * 64 + n * 4 + 1_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn dtg_achieves_local_broadcast_on_clique() {
        let g = generators::clique(16, 1).unwrap();
        let r = local_broadcast(&g, 1, 1);
        assert!(r.completed);
        assert!(r.rounds > 0);
    }

    #[test]
    fn dtg_achieves_local_broadcast_on_grid_and_tree() {
        for g in [
            generators::grid(5, 5, 1).unwrap(),
            generators::binary_tree(31, 1).unwrap(),
        ] {
            let r = local_broadcast(&g, 1, 3);
            assert!(r.completed);
        }
    }

    #[test]
    fn dtg_cost_scales_with_latency_bound() {
        let fast = generators::clique(12, 1).unwrap();
        let slow = generators::clique(12, 6).unwrap();
        let rf = local_broadcast(&fast, 1, 5);
        let rs = local_broadcast(&slow, 6, 5);
        assert!(rf.completed && rs.completed);
        assert!(
            rs.rounds >= 3 * rf.rounds,
            "latency-6 clique ({}) should cost ~6x the latency-1 clique ({})",
            rs.rounds,
            rf.rounds
        );
    }

    #[test]
    fn dtg_iteration_count_is_logarithmic_on_cliques() {
        // The DTG analysis promises O(log n) iterations; check the measured
        // iteration count stays well below the trivial Δ bound.
        let g = generators::clique(64, 1).unwrap();
        let mut protocol = EllDtg::new(&g, 1);
        let config = SimConfig::new(2)
            .termination(Termination::Quiescent)
            .max_rounds(100_000);
        let mut sim = Simulation::new(&g, config);
        let report = sim.run(&mut protocol);
        assert!(report.completed);
        // In this model a node can answer any number of concurrent requests,
        // so hub-style aggregation can finish in very few iterations; the DTG
        // analysis only promises the O(log n) upper bound, which is what we check.
        let iters = protocol.max_iterations();
        assert!(iters >= 1);
        assert!(iters <= 24, "iterations {iters} should be far below Δ = 63");
        assert!(local_broadcast_achieved(&g, 1, sim.rumors()));
    }

    #[test]
    fn ell_bound_excludes_slow_edges() {
        // Dumbbell with a very slow bridge: 1-DTG must not wait for the bridge.
        let g = generators::dumbbell(6, 10_000).unwrap();
        let r = local_broadcast(&g, 1, 7);
        assert!(r.completed);
        assert!(
            r.rounds < 2_000,
            "1-DTG must ignore the latency-10000 bridge"
        );
    }

    #[test]
    fn dtg_with_bound_covering_slow_edges_reaches_across() {
        let g = generators::dumbbell(4, 16).unwrap();
        let r = local_broadcast(&g, 16, 9);
        assert!(r.completed);
        // The bridge endpoints must have exchanged, which costs at least 16 rounds.
        assert!(r.rounds >= 16);
    }

    #[test]
    fn run_with_rumors_preserves_and_extends_knowledge() {
        let g = generators::path(6, 2).unwrap();
        let n = g.node_count();
        // Start from a state where node 0 already knows everything.
        let mut initial: Vec<RumorSet> = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        for i in 0..n {
            initial[0].insert(RumorId::from(i));
        }
        let (report, final_rumors, _) = run_with_rumors(&g, 2, 3, initial, false);
        assert!(report.completed);
        // Node 1 must now know node 0's whole set is not required, but it must
        // at least have heard from both of its neighbors.
        assert!(final_rumors[1].contains(RumorId::from(0)));
        assert!(final_rumors[1].contains(RumorId::from(2)));
        assert!(local_broadcast_achieved(&g, 2, &final_rumors));
    }

    #[test]
    fn blocking_mode_also_completes() {
        let g = generators::cycle(10, 3).unwrap();
        let n = g.node_count();
        let initial: Vec<RumorSet> = (0..n)
            .map(|i| RumorSet::singleton(n, RumorId::from(i)))
            .collect();
        let (report, rumors, _) = run_with_rumors(&g, 3, 4, initial, true);
        assert!(report.completed);
        assert!(local_broadcast_achieved(&g, 3, &rumors));
    }

    #[test]
    fn node_with_no_fast_neighbors_is_immediately_idle() {
        let g = generators::path(3, 50).unwrap();
        let r = local_broadcast(&g, 1, 1);
        // No edge has latency ≤ 1, so local broadcast is vacuously achieved in 0 rounds.
        assert!(r.completed);
        assert_eq!(r.rounds, 0);
    }
}
