//! **Test-only oracle.**  A frozen copy of the `BTreeMap`-based Baswana–Sen
//! construction that `spanner.rs` replaced with flat epoch-stamped tables.
//! The `equivalence_with_btreemap_impl` test in `spanner.rs` pins the new
//! construction byte-identical (same edges, same orientation, same out-edge
//! order) against this implementation; it is compiled only under `cfg(test)`.
//!
#![allow(missing_docs, dead_code)]
//! Directed Baswana–Sen spanner construction (Section 4.1.2, Lemma 19,
//! Theorem 20 of the paper).
//!
//! The spanner-broadcast algorithm needs a subgraph that (a) approximates all
//! distances within an `O(log n)` factor, (b) has only `O(n log n)` edges, and
//! (c) admits an orientation in which every node has `O(log n)` out-edges.
//! The paper obtains it by running the Baswana–Sen `(2k−1)`-spanner
//! construction with `k = log n` and orienting every spanner edge out of the
//! node that added it.
//!
//! In the distributed setting each node first collects its `log n`-hop
//! neighborhood (via repeated `D`-DTG) and then simulates this construction
//! locally; the construction itself is therefore a *local computation* whose
//! communication cost is accounted separately in
//! [`spanner_broadcast`](crate::spanner_broadcast).  This module implements
//! the computation.

// BTreeMap, not HashMap: these maps are *iterated* when inserting edges into
// the spanner, and std's per-instance hash seeds would make the out-edge order
// (and therefore the round-robin broadcast schedule) differ between otherwise
// identical runs.
use std::collections::BTreeMap;

use gossip_graph::spanner::DirectedSpanner;
use gossip_graph::{EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Edge weight used for comparisons: `(latency, edge id)` — the paper assumes
/// distinct weights and breaks ties by unique identifiers.
type Weight = (Latency, u32);

fn weight(g: &Graph, e: EdgeId) -> Weight {
    (g.latency(e), e.index() as u32)
}

/// Builds a directed `(2k−1)`-spanner of `g` with the Baswana–Sen clustering
/// algorithm, orienting each selected edge out of the node that selected it.
///
/// `k` is the number of clustering iterations; `k = ⌈log₂ n⌉` gives the
/// `O(log n)`-stretch, `O(log n)`-out-degree spanner used by the paper
/// (see [`log_spanner`] for that default).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn baswana_sen_old(g: &Graph, k: usize, seed: u64) -> DirectedSpanner {
    assert!(k >= 1, "the spanner parameter k must be at least 1");
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spanner = DirectedSpanner::new(g);
    // Sampling probability n^{-1/k}.
    let p = (n as f64).powf(-1.0 / k as f64);

    // clustering[v] = Some(center) if v currently belongs to a cluster.
    let mut clustering: Vec<Option<NodeId>> = g.nodes().map(Some).collect();
    let mut alive: Vec<bool> = vec![true; g.edge_count()];

    for _iteration in 1..k {
        // 1. Sample the clusters that survive this iteration.
        let mut centers: Vec<NodeId> = clustering.iter().flatten().copied().collect();
        centers.sort_unstable();
        centers.dedup();
        let sampled: BTreeMap<NodeId, bool> =
            centers.iter().map(|&c| (c, rng.gen_bool(p))).collect();

        let mut next_clustering: Vec<Option<NodeId>> = vec![None; n];
        for v in 0..n {
            if let Some(c) = clustering[v] {
                if sampled[&c] {
                    next_clustering[v] = Some(c);
                }
            }
        }

        // 2. Every vertex outside the sampled clusters picks its spanner edges.
        // Indexing is intentional: `next_clustering[v]` is assigned inside the
        // loop body (Rule 2), so an iterator borrow would not compile.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            if next_clustering[v].is_some() {
                continue;
            }
            let vid = NodeId::new(v);
            // Best (least-weight) alive edge towards each adjacent cluster.
            let mut best: BTreeMap<NodeId, (Weight, EdgeId)> = BTreeMap::new();
            for (w, e) in g.neighbors(vid) {
                if !alive[e.index()] {
                    continue;
                }
                if let Some(c) = clustering[w.index()] {
                    let candidate = (weight(g, e), e);
                    best.entry(c)
                        .and_modify(|cur| {
                            if candidate.0 < cur.0 {
                                *cur = candidate;
                            }
                        })
                        .or_insert(candidate);
                }
            }
            if best.is_empty() {
                continue;
            }
            // Sampled adjacent cluster with the overall least-weight edge.
            let best_sampled = best
                .iter()
                .filter(|(c, _)| sampled[*c])
                .min_by_key(|(_, (w, _))| *w)
                .map(|(c, val)| (*c, *val));

            match best_sampled {
                None => {
                    // Rule 1: no sampled neighbor cluster — keep one edge per
                    // adjacent cluster and discard everything else.
                    for (_w, e) in best.values() {
                        spanner.add_oriented(g, vid, *e);
                    }
                    for (w, e) in g.neighbors(vid) {
                        if alive[e.index()] && clustering[w.index()].is_some() {
                            alive[e.index()] = false;
                        }
                    }
                }
                Some((c_star, (w_star, e_star))) => {
                    // Rule 2: join the best sampled cluster, keep one edge to
                    // every strictly cheaper cluster, discard the rest.
                    spanner.add_oriented(g, vid, e_star);
                    next_clustering[v] = Some(c_star);
                    for (c, (w, e)) in &best {
                        if *c != c_star && *w < w_star {
                            spanner.add_oriented(g, vid, *e);
                        }
                    }
                    for (nbr, e) in g.neighbors(vid) {
                        if !alive[e.index()] {
                            continue;
                        }
                        if let Some(c) = clustering[nbr.index()] {
                            let discard = c == c_star
                                || best.get(&c).map(|(w, _)| *w < w_star).unwrap_or(false);
                            if discard {
                                alive[e.index()] = false;
                            }
                        }
                    }
                }
            }
        }

        clustering = next_clustering;

        // 3. Remove intra-cluster edges.
        for e in g.edge_ids() {
            if !alive[e.index()] {
                continue;
            }
            let rec = g.edge(e);
            if let (Some(a), Some(b)) = (clustering[rec.u.index()], clustering[rec.v.index()]) {
                if a == b {
                    alive[e.index()] = false;
                }
            }
        }
    }

    // Phase 2: every vertex keeps one least-weight alive edge to each adjacent
    // surviving cluster.
    for v in 0..n {
        let vid = NodeId::new(v);
        let mut best: BTreeMap<NodeId, (Weight, EdgeId)> = BTreeMap::new();
        for (w, e) in g.neighbors(vid) {
            if !alive[e.index()] {
                continue;
            }
            if let Some(c) = clustering[w.index()] {
                if clustering[v] == Some(c) {
                    continue; // intra-cluster edges are never needed
                }
                let candidate = (weight(g, e), e);
                best.entry(c)
                    .and_modify(|cur| {
                        if candidate.0 < cur.0 {
                            *cur = candidate;
                        }
                    })
                    .or_insert(candidate);
            }
        }
        for (_c, (_w, e)) in best {
            spanner.add_oriented(g, vid, e);
        }
    }

    spanner
}

/// The spanner the paper's algorithm uses: Baswana–Sen with `k = ⌈log₂ n⌉`,
/// giving `O(log n)` stretch, `O(n log n)` edges and `O(log n)` out-degree
/// with high probability (Lemma 19 / Theorem 20).
pub fn log_spanner_old(g: &Graph, seed: u64) -> DirectedSpanner {
    let n = g.node_count().max(2);
    let k = (usize::BITS - (n - 1).leading_zeros()) as usize;
    baswana_sen_old(g, k.max(1), seed)
}

/// Expected stretch bound `2k − 1` for a given `k`.
pub fn stretch_bound_old(k: usize) -> usize {
    2 * k - 1
}
