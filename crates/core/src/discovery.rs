//! Latency discovery (Section 5.2 of the paper).
//!
//! When latencies are unknown, the spanner route first has every node probe
//! its incident edges: a node sends one request per neighbor, sequentially,
//! and waits for responses.  Probing all `Δ` neighbors takes `Δ` rounds of
//! requests, and a response over an edge of latency `ℓ` arrives `ℓ` rounds
//! after its request — so waiting an additional `bound` rounds discovers every
//! incident edge of latency at most `bound`.  With `bound` set by the same
//! guess-and-double driver as the diameter, this is the `Õ(D + Δ)` "discover
//! the important edges" step that lets the known-latency algorithm run.

use std::collections::HashMap;

use gossip_graph::{EdgeId, Graph, Latency, NodeId};
use gossip_sim::{ExchangeEvent, NodeView, Protocol, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;

use crate::DisseminationReport;

/// Protocol in which every node probes each of its neighbors exactly once,
/// one per round, in neighbor-id order.
#[derive(Debug, Clone)]
struct ProbeAll {
    next: Vec<usize>,
    degrees: Vec<usize>,
    // gossip-lint: allow(unordered-iter): keyed insert/contains_key per edge only, never iterated
    discovered: Vec<HashMap<EdgeId, Latency>>,
}

impl ProbeAll {
    fn new(g: &Graph) -> Self {
        ProbeAll {
            next: vec![0; g.node_count()],
            degrees: g.nodes().map(|v| g.degree(v)).collect(),
            discovered: vec![HashMap::new(); g.node_count()],
        }
    }
}

impl Protocol for ProbeAll {
    fn name(&self) -> &'static str {
        "latency-discovery"
    }

    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let i = view.node.index();
        if self.next[i] >= view.neighbors.len() {
            return None;
        }
        let (target, _) = view.neighbors[self.next[i]];
        self.next[i] += 1;
        Some(target)
    }

    fn on_exchange(&mut self, node: NodeId, event: &ExchangeEvent) {
        self.discovered[node.index()].insert(event.edge, event.latency);
    }

    fn is_idle(&self, node: NodeId) -> bool {
        // A node is idle once it has sent all its probes; in-flight responses
        // are the engine's concern (Quiescent termination also requires an
        // empty in-flight set).
        self.next[node.index()] >= self.degrees[node.index()]
    }
}

/// Result of a latency-discovery phase.
#[derive(Debug, Clone)]
pub struct DiscoveryOutcome {
    /// Per-node map from incident edge to discovered latency.
    // gossip-lint: allow(unordered-iter): consumed via keyed `get` through OracleSource::Map only, never iterated
    pub discovered: Vec<HashMap<EdgeId, Latency>>,
    /// Rounds spent (≈ Δ + bound).
    pub report: DisseminationReport,
}

impl DiscoveryOutcome {
    /// Number of `(node, edge)` latency facts discovered.
    pub fn facts(&self) -> usize {
        self.discovered.iter().map(HashMap::len).sum()
    }

    /// Returns `true` if every edge of latency at most `bound` has been
    /// discovered by both of its endpoints.
    pub fn covers(&self, g: &Graph, bound: Latency) -> bool {
        g.edges().zip(g.edge_ids()).all(|(rec, e)| {
            rec.latency > bound
                || (self.discovered[rec.u.index()].contains_key(&e)
                    && self.discovered[rec.v.index()].contains_key(&e))
        })
    }
}

/// Probes every incident edge and waits up to `bound` extra rounds for the
/// responses; discovers exactly the incident edges of latency ≤ `bound`.
///
/// The number of rounds consumed is `Δ + bound` (all probes are sent in the
/// first `Δ` rounds; anything that has not answered after `bound` more rounds
/// is treated as "slow" and ignored, exactly as in Section 5.2).
pub fn discover(g: &Graph, bound: Latency, seed: u64) -> DiscoveryOutcome {
    let max_degree = g.max_degree() as u64;
    let budget = max_degree + bound;
    let config = SimConfig::new(seed).termination(Termination::FixedRounds(budget));
    let mut protocol = ProbeAll::new(g);
    let report = Simulation::new(g, config).run(&mut protocol);
    DiscoveryOutcome {
        discovered: protocol.discovered,
        report: DisseminationReport::single(
            "latency-discovery",
            report.rounds,
            report.activations,
            true,
        ),
    }
}

/// Full discovery: waits long enough (`Δ + ℓ_max`) for every incident edge.
pub fn discover_all(g: &Graph, seed: u64) -> DiscoveryOutcome {
    discover(g, g.max_latency(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn discover_all_learns_every_incident_latency() {
        let g = generators::dumbbell(4, 16).unwrap();
        let out = discover_all(&g, 1);
        assert!(out.covers(&g, g.max_latency()));
        // Every edge is discovered by both endpoints.
        assert_eq!(out.facts(), 2 * g.edge_count());
        // Rounds = Δ + ℓmax.
        assert_eq!(out.report.rounds, g.max_degree() as u64 + 16);
    }

    #[test]
    fn bounded_discovery_ignores_slow_edges() {
        let g = generators::dumbbell(4, 1000).unwrap();
        let out = discover(&g, 4, 1);
        assert!(out.covers(&g, 4));
        assert!(
            !out.covers(&g, 1000),
            "the latency-1000 bridge must not be discovered"
        );
        assert!(out.report.rounds <= g.max_degree() as u64 + 4);
    }

    #[test]
    fn discovery_cost_scales_with_degree() {
        let small = generators::star(8, 2).unwrap();
        let large = generators::star(64, 2).unwrap();
        let a = discover_all(&small, 3);
        let b = discover_all(&large, 3);
        assert!(b.report.rounds > a.report.rounds);
        assert_eq!(b.report.rounds, 63 + 2);
    }

    #[test]
    fn every_probe_is_one_activation() {
        let g = generators::clique(6, 2).unwrap();
        let out = discover_all(&g, 9);
        // Each node probes each of its 5 neighbors exactly once.
        assert_eq!(out.report.activations, 6 * 5);
    }
}
