//! Spanner Broadcast (Algorithms 2–4 of the paper): all-to-all information
//! dissemination in `O(D·log³ n)` rounds when latencies are known.
//!
//! The algorithm has three phases:
//!
//! 1. **Neighborhood discovery** — `O(log n)` repetitions of `D`-DTG give every
//!    node its `log n`-hop neighborhood (Theorem 20).  We run one `D`-DTG
//!    round-accurately and charge its measured cost `⌈log₂ n⌉` times, since
//!    each repetition is the same protocol over the same subgraph.
//! 2. **Spanner construction** — a purely local computation
//!    ([`crate::spanner::log_spanner`]), costing zero communication rounds.
//! 3. **RR Broadcast** — round-robin dissemination over the directed spanner
//!    ([`crate::rr_broadcast`]), `O(D·log² n)` rounds (Corollary 22).
//!
//! When the diameter is unknown (Section 4.1.4), the driver guesses `D = 1`
//! and doubles until the Termination_Check (Algorithm 3) passes; the check is
//! itself one more broadcast over the current spanner, and Lemma 24 shows all
//! nodes stop in the same phase.

use gossip_graph::{Graph, Latency};
use gossip_sim::{RumorId, RumorSet};

use crate::{dtg, rr_broadcast, spanner, DisseminationReport, Phase};

fn ceil_log2(n: usize) -> u64 {
    let n = n.max(2) as u64;
    64 - (n - 1).leading_zeros() as u64
}

/// Runs Spanner Broadcast with a known diameter (Algorithm 2 / Lemma 23).
///
/// "Known D" is served by the diameter-bound oracle
/// ([`gossip_graph::metrics::estimate_diameter`]): exact below the threshold, a
/// constant-sweep upper bound `≥ D` above it — the algorithm's phases only
/// need `D` up to constant factors, which the bound preserves.  Callers that
/// already hold a bound (the sweep caches one per topology) use
/// [`run_known_diameter_with`].
pub fn run_known_diameter(g: &Graph, seed: u64) -> DisseminationReport {
    run_known_diameter_with(g, crate::diameter_bound(g), seed)
}

/// [`run_known_diameter`] with the diameter (or an upper bound on it)
/// supplied by the caller instead of recomputed from the graph.
pub fn run_known_diameter_with(g: &Graph, d: Latency, seed: u64) -> DisseminationReport {
    run_with_guess(g, d.max(1), seed, initial_rumors(g)).0
}

/// Runs Spanner Broadcast with the guess-and-double strategy for an unknown
/// diameter (Algorithm 4 / Theorem 25).
///
/// Every phase uses the latency-filtered graph `G_k`; knowledge gained in one
/// phase is carried into the next (rumors are never forgotten).  Each phase is
/// followed by a Termination_Check whose cost equals one more broadcast pass
/// over the same spanner (Algorithm 3).
pub fn run_unknown_diameter(g: &Graph, seed: u64) -> DisseminationReport {
    let mut phases: Vec<Phase> = Vec::new();
    let mut rumors = initial_rumors(g);
    let mut guess: Latency = 1;
    let cap = guess_cap(g);
    let mut completed = false;

    while guess <= cap {
        let (report, new_rumors) = run_with_guess(g, guess, seed ^ guess, rumors);
        rumors = new_rumors;
        for p in report.phases {
            phases.push(Phase::new(
                format!("k={guess}: {}", p.name),
                p.rounds,
                p.activations,
            ));
        }
        // Termination_Check: one more broadcast pass over the current spanner
        // so every node can compare rumor sets and flags (Algorithm 3).
        let check_rounds = phases.last().map(|p| p.rounds).unwrap_or(0);
        phases.push(Phase::new(
            format!("k={guess}: termination-check"),
            check_rounds,
            0,
        ));
        if rumors.iter().all(RumorSet::is_full) {
            completed = true;
            break;
        }
        guess = guess.saturating_mul(2);
    }

    DisseminationReport::from_phases("spanner-broadcast (unknown D)", phases, completed)
}

/// One Spanner Broadcast pass with diameter guess `k`, starting from the given
/// rumor sets.  Returns the phase report and the resulting rumor sets.
pub fn run_with_guess(
    g: &Graph,
    k: Latency,
    seed: u64,
    rumors: Vec<RumorSet>,
) -> (DisseminationReport, Vec<RumorSet>) {
    let filtered = g.latency_filtered(k);
    let log_n = ceil_log2(g.node_count());

    // Phase 1: neighborhood discovery = O(log n) repetitions of k-DTG on G_k.
    let (dtg_report, rumors, _) = dtg::run_with_rumors(&filtered, k, seed, rumors, false);
    let discovery = Phase::new(
        "discovery",
        dtg_report.rounds * log_n,
        dtg_report.activations * log_n,
    );

    // Phase 2: local spanner construction on G_k (no communication).
    let spanner = spanner::log_spanner(&filtered, seed ^ 0x5eed);
    let construction = Phase::new("spanner-construction", 0, 0);

    // Phase 3: RR Broadcast over the directed spanner with parameter O(k·log n).
    let rr_k = k.saturating_mul(log_n + 1);
    let (rr_report, rumors) =
        rr_broadcast::run_with_rumors(&filtered, &spanner, rr_k, seed ^ 0xb0a, rumors);

    let completed = rumors.iter().all(RumorSet::is_full);
    let report = DisseminationReport::from_phases(
        "spanner-broadcast",
        vec![
            discovery,
            construction,
            Phase::new("rr-broadcast", rr_report.rounds, rr_report.activations),
        ],
        completed,
    );
    (report, rumors)
}

fn initial_rumors(g: &Graph) -> Vec<RumorSet> {
    let n = g.node_count();
    (0..n)
        .map(|i| RumorSet::singleton(n, RumorId::from(i)))
        .collect()
}

fn guess_cap(g: &Graph) -> Latency {
    // The doubling guess never needs to exceed the total latency (a trivial
    // upper bound on the diameter), rounded up to a power of two.
    let total: u128 = g.total_latency().max(1);
    let mut cap: Latency = 1;
    while (cap as u128) < total && cap < Latency::MAX / 2 {
        cap *= 2;
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn known_diameter_completes_on_basic_families() {
        for g in [
            generators::clique(16, 1).unwrap(),
            generators::dumbbell(6, 8).unwrap(),
            generators::ring_of_cliques(4, 4, 4).unwrap(),
            generators::grid(4, 4, 2).unwrap(),
        ] {
            let r = run_known_diameter(&g, 3);
            assert!(
                r.completed,
                "spanner broadcast failed on {} nodes",
                g.node_count()
            );
            assert!(r.phase_rounds("discovery") > 0);
            // The rr-broadcast phase can legitimately be 0 rounds when the
            // discovery phase already disseminated everything (small dense graphs).
        }
    }

    #[test]
    fn unknown_diameter_completes_and_costs_more_than_known() {
        let g = generators::dumbbell(6, 8).unwrap();
        let known = run_known_diameter(&g, 7);
        let unknown = run_unknown_diameter(&g, 7);
        assert!(known.completed && unknown.completed);
        assert!(
            unknown.rounds >= known.rounds,
            "guess-and-double ({}) should not beat the known-D run ({})",
            unknown.rounds,
            known.rounds
        );
    }

    #[test]
    fn unknown_diameter_doubles_until_the_bridge_is_covered() {
        let g = generators::dumbbell(4, 32).unwrap();
        let r = run_unknown_diameter(&g, 1);
        assert!(r.completed);
        // Phases for guesses 1, 2, ... must appear until one covers latency 32.
        assert!(r.phases.iter().any(|p| p.name.starts_with("k=1:")));
        assert!(r
            .phases
            .iter()
            .any(|p| p.name.starts_with("k=32:") || p.name.starts_with("k=64:")));
    }

    #[test]
    fn report_phases_sum_to_total() {
        let g = generators::ring_of_cliques(3, 4, 4).unwrap();
        let r = run_known_diameter(&g, 5);
        let sum: u64 = r.phases.iter().map(|p| p.rounds).sum();
        assert_eq!(sum, r.rounds);
    }

    #[test]
    fn scales_roughly_with_diameter_not_conductance() {
        // Two graphs with the same size but very different diameters: the
        // spanner broadcast cost should grow with D.
        let small_d = generators::clique(24, 1).unwrap();
        let large_d = generators::path(24, 8).unwrap();
        let a = run_known_diameter(&small_d, 2);
        let b = run_known_diameter(&large_d, 2);
        assert!(a.completed && b.completed);
        assert!(
            b.rounds > a.rounds,
            "path with D={} ({} rounds) should cost more than clique with D=1 ({} rounds)",
            8 * 23,
            b.rounds,
            a.rounds
        );
    }
}
