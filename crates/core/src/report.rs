//! Reports returned by the dissemination algorithms.

use std::fmt;

/// One phase of a multi-phase algorithm (e.g. "latency discovery", "spanner
/// construction", "round-robin broadcast") and the rounds it consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase name.
    pub name: String,
    /// Rounds spent in this phase.
    pub rounds: u64,
    /// Exchanges initiated during the phase (0 if the phase is purely local computation).
    pub activations: u64,
}

impl Phase {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, rounds: u64, activations: u64) -> Self {
        Phase {
            name: name.into(),
            rounds,
            activations,
        }
    }
}

/// The outcome of running one dissemination algorithm on one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisseminationReport {
    /// Name of the algorithm.
    pub algorithm: String,
    /// Total rounds consumed (sum over phases).
    pub rounds: u64,
    /// Total exchanges initiated.
    pub activations: u64,
    /// Whether the dissemination goal was reached.
    pub completed: bool,
    /// Per-phase breakdown.
    pub phases: Vec<Phase>,
    /// Peak bytes of the engine's dissemination state, when the underlying
    /// simulation reported memory counters (see
    /// [`MemStats`](gossip_sim::MemStats)); `None` for purely analytical
    /// phases or pre-counter engines.  Deterministic, so usable as a
    /// regression gate.
    pub peak_mem_bytes: Option<u64>,
    /// The engine's full deterministic memory counters (paged-set
    /// live/peak pages, saturated/collapsed node counts, log/shadow peaks),
    /// when the underlying simulation reported them.  `peak_mem_bytes` is
    /// this value's `peak_engine_bytes`, kept separate for callers that only
    /// need the headline figure.
    pub mem: Option<gossip_sim::MemStats>,
}

impl DisseminationReport {
    /// Builds a report from phases; `completed` is supplied by the caller.
    pub fn from_phases(algorithm: impl Into<String>, phases: Vec<Phase>, completed: bool) -> Self {
        let rounds = phases.iter().map(|p| p.rounds).sum();
        let activations = phases.iter().map(|p| p.activations).sum();
        DisseminationReport {
            algorithm: algorithm.into(),
            rounds,
            activations,
            completed,
            phases,
            peak_mem_bytes: None,
            mem: None,
        }
    }

    /// Builds a single-phase report.
    pub fn single(
        algorithm: impl Into<String>,
        rounds: u64,
        activations: u64,
        completed: bool,
    ) -> Self {
        let algorithm = algorithm.into();
        DisseminationReport {
            phases: vec![Phase::new(algorithm.clone(), rounds, activations)],
            algorithm,
            rounds,
            activations,
            completed,
            peak_mem_bytes: None,
            mem: None,
        }
    }

    /// Attaches the engine's deterministic memory counters (builder style);
    /// also fills the headline `peak_mem_bytes` figure from them.
    pub fn with_mem(mut self, mem: Option<gossip_sim::MemStats>) -> Self {
        self.peak_mem_bytes = mem.map(|m| m.peak_engine_bytes);
        self.mem = mem;
        self
    }

    /// Rounds spent in the named phase (0 if the phase does not exist).
    pub fn phase_rounds(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.rounds)
            .sum()
    }
}

impl fmt::Display for DisseminationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} rounds ({} activations, completed = {})",
            self.algorithm, self.rounds, self.activations, self.completed
        )?;
        if self.phases.len() > 1 {
            write!(f, " [")?;
            for (i, p) in self.phases.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", p.name, p.rounds)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_phases_sums_rounds_and_activations() {
        let r = DisseminationReport::from_phases(
            "spanner-broadcast",
            vec![
                Phase::new("discovery", 100, 40),
                Phase::new("rr-broadcast", 50, 30),
            ],
            true,
        );
        assert_eq!(r.rounds, 150);
        assert_eq!(r.activations, 70);
        assert_eq!(r.phase_rounds("discovery"), 100);
        assert_eq!(r.phase_rounds("unknown"), 0);
        assert!(r.completed);
    }

    #[test]
    fn single_phase_report() {
        let r = DisseminationReport::single("push-pull", 42, 99, true);
        assert_eq!(r.rounds, 42);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phase_rounds("push-pull"), 42);
    }

    #[test]
    fn display_contains_phase_breakdown() {
        let r = DisseminationReport::from_phases(
            "x",
            vec![Phase::new("a", 1, 0), Phase::new("b", 2, 0)],
            false,
        );
        let s = r.to_string();
        assert!(s.contains("a: 1"));
        assert!(s.contains("b: 2"));
        assert!(s.contains("completed = false"));
    }
}
