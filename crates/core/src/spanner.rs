//! Directed Baswana–Sen spanner construction (Section 4.1.2, Lemma 19,
//! Theorem 20 of the paper).
//!
//! The spanner-broadcast algorithm needs a subgraph that (a) approximates all
//! distances within an `O(log n)` factor, (b) has only `O(n log n)` edges, and
//! (c) admits an orientation in which every node has `O(log n)` out-edges.
//! The paper obtains it by running the Baswana–Sen `(2k−1)`-spanner
//! construction with `k = log n` and orienting every spanner edge out of the
//! node that added it.
//!
//! In the distributed setting each node first collects its `log n`-hop
//! neighborhood (via repeated `D`-DTG) and then simulates this construction
//! locally; the construction itself is therefore a *local computation* whose
//! communication cost is accounted separately in
//! [`spanner_broadcast`](crate::spanner_broadcast).  This module implements
//! the computation.

use gossip_graph::spanner::DirectedSpanner;
use gossip_graph::{EdgeId, Graph, Latency, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Edge weight used for comparisons: `(latency, edge id)` — the paper assumes
/// distinct weights and breaks ties by unique identifiers.
type Weight = (Latency, u32);

fn weight(g: &Graph, e: EdgeId) -> Weight {
    (g.latency(e), e.index() as u32)
}

/// Flat per-center "best edge" table, reused across vertices.
///
/// The construction repeatedly asks, per vertex, for the least-weight alive
/// edge towards each adjacent cluster.  Centers are node ids, so instead of
/// a fresh `BTreeMap<NodeId, _>` per vertex (the former hot spot of the
/// whole spanner setup — `O(deg · log deg)` allocations and pointer chasing
/// per vertex) this keeps one `n`-sized table stamped with an epoch per
/// vertex: clearing is `O(1)`, lookups are array indexing.
///
/// Iteration order *is* observable downstream — the order edges enter the
/// spanner fixes the round-robin broadcast schedule — so
/// [`sorted_centers`](Self::sorted_centers) returns the touched centers in
/// ascending id order, which is exactly the `BTreeMap` iteration order the
/// previous implementation had: the constructed spanner is identical.
struct BestEdgeTable {
    entry: Vec<(Weight, EdgeId)>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<usize>,
}

impl BestEdgeTable {
    fn new(n: usize) -> Self {
        BestEdgeTable {
            entry: vec![((0, 0), EdgeId::new(0)); n],
            stamp: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Starts a fresh per-vertex round, forgetting all previous offers.
    fn clear(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Offers `candidate` as an edge towards cluster `center`, keeping the
    /// least-weight offer per center.
    fn offer(&mut self, center: NodeId, candidate: (Weight, EdgeId)) {
        let c = center.index();
        if self.stamp[c] != self.epoch {
            self.stamp[c] = self.epoch;
            self.entry[c] = candidate;
            self.touched.push(c);
        } else if candidate.0 < self.entry[c].0 {
            self.entry[c] = candidate;
        }
    }

    fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The best offer towards `center`, if any was made this round.
    fn get(&self, center: NodeId) -> Option<(Weight, EdgeId)> {
        let c = center.index();
        (self.stamp[c] == self.epoch).then(|| self.entry[c])
    }

    /// Sorts the touched centers into ascending id order — the observable
    /// order edges are inserted in (sorting `O(deg log deg)` once per vertex
    /// beats per-edge tree inserts).  Call before iterating `touched`.
    fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }
}

/// Builds a directed `(2k−1)`-spanner of `g` with the Baswana–Sen clustering
/// algorithm, orienting each selected edge out of the node that selected it.
///
/// `k` is the number of clustering iterations; `k = ⌈log₂ n⌉` gives the
/// `O(log n)`-stretch, `O(log n)`-out-degree spanner used by the paper
/// (see [`log_spanner`] for that default).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn baswana_sen(g: &Graph, k: usize, seed: u64) -> DirectedSpanner {
    assert!(k >= 1, "the spanner parameter k must be at least 1");
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut spanner = DirectedSpanner::new(g);
    // Sampling probability n^{-1/k}.
    let p = (n as f64).powf(-1.0 / k as f64);

    // clustering[v] = Some(center) if v currently belongs to a cluster.
    let mut clustering: Vec<Option<NodeId>> = g.nodes().map(Some).collect();
    let mut alive: Vec<bool> = vec![true; g.edge_count()];

    let mut best = BestEdgeTable::new(n);
    // sampled[c] = whether cluster center c survives this iteration.
    let mut sampled: Vec<bool> = vec![false; n];

    for _iteration in 1..k {
        // 1. Sample the clusters that survive this iteration (ascending
        // center order, so RNG consumption matches run to run).
        let mut centers: Vec<NodeId> = clustering.iter().flatten().copied().collect();
        centers.sort_unstable();
        centers.dedup();
        sampled.iter_mut().for_each(|s| *s = false);
        for &c in &centers {
            sampled[c.index()] = rng.gen_bool(p);
        }

        let mut next_clustering: Vec<Option<NodeId>> = vec![None; n];
        for v in 0..n {
            if let Some(c) = clustering[v] {
                if sampled[c.index()] {
                    next_clustering[v] = Some(c);
                }
            }
        }

        // 2. Every vertex outside the sampled clusters picks its spanner edges.
        // Indexing is intentional: `next_clustering[v]` is assigned inside the
        // loop body (Rule 2), so an iterator borrow would not compile.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            if next_clustering[v].is_some() {
                continue;
            }
            let vid = NodeId::new(v);
            // Best (least-weight) alive edge towards each adjacent cluster.
            best.clear();
            for (w, e) in g.neighbors(vid) {
                if !alive[e.index()] {
                    continue;
                }
                if let Some(c) = clustering[w.index()] {
                    best.offer(c, (weight(g, e), e));
                }
            }
            if best.is_empty() {
                continue;
            }
            best.sort_touched();
            // Sampled adjacent cluster with the overall least-weight edge
            // (weights are distinct — they embed the edge id — so the
            // minimum is unique and iteration order does not matter here).
            let best_sampled = best
                .touched
                .iter()
                .filter(|&&c| sampled[c])
                .min_by_key(|&&c| best.entry[c].0)
                .map(|&c| (NodeId::new(c), best.entry[c]));

            match best_sampled {
                None => {
                    // Rule 1: no sampled neighbor cluster — keep one edge per
                    // adjacent cluster and discard everything else.
                    for &c in &best.touched {
                        spanner.add_oriented(g, vid, best.entry[c].1);
                    }
                    for (w, e) in g.neighbors(vid) {
                        if alive[e.index()] && clustering[w.index()].is_some() {
                            alive[e.index()] = false;
                        }
                    }
                }
                Some((c_star, (w_star, e_star))) => {
                    // Rule 2: join the best sampled cluster, keep one edge to
                    // every strictly cheaper cluster, discard the rest.
                    spanner.add_oriented(g, vid, e_star);
                    next_clustering[v] = Some(c_star);
                    for &c in &best.touched {
                        let (w, e) = best.entry[c];
                        if NodeId::new(c) != c_star && w < w_star {
                            spanner.add_oriented(g, vid, e);
                        }
                    }
                    for (nbr, e) in g.neighbors(vid) {
                        if !alive[e.index()] {
                            continue;
                        }
                        if let Some(c) = clustering[nbr.index()] {
                            let discard = c == c_star
                                || best.get(c).map(|(w, _)| w < w_star).unwrap_or(false);
                            if discard {
                                alive[e.index()] = false;
                            }
                        }
                    }
                }
            }
        }

        clustering = next_clustering;

        // 3. Remove intra-cluster edges.
        for e in g.edge_ids() {
            if !alive[e.index()] {
                continue;
            }
            let rec = g.edge(e);
            if let (Some(a), Some(b)) = (clustering[rec.u.index()], clustering[rec.v.index()]) {
                if a == b {
                    alive[e.index()] = false;
                }
            }
        }
    }

    // Phase 2: every vertex keeps one least-weight alive edge to each adjacent
    // surviving cluster.
    for v in 0..n {
        let vid = NodeId::new(v);
        best.clear();
        for (w, e) in g.neighbors(vid) {
            if !alive[e.index()] {
                continue;
            }
            if let Some(c) = clustering[w.index()] {
                if clustering[v] == Some(c) {
                    continue; // intra-cluster edges are never needed
                }
                best.offer(c, (weight(g, e), e));
            }
        }
        best.sort_touched();
        for &c in &best.touched {
            spanner.add_oriented(g, vid, best.entry[c].1);
        }
    }

    spanner
}

/// The spanner the paper's algorithm uses: Baswana–Sen with `k = ⌈log₂ n⌉`,
/// giving `O(log n)` stretch, `O(n log n)` edges and `O(log n)` out-degree
/// with high probability (Lemma 19 / Theorem 20).
pub fn log_spanner(g: &Graph, seed: u64) -> DirectedSpanner {
    let n = g.node_count().max(2);
    let k = (usize::BITS - (n - 1).leading_zeros()) as usize;
    baswana_sen(g, k.max(1), seed)
}

/// Expected stretch bound `2k − 1` for a given `k`.
pub fn stretch_bound(k: usize) -> usize {
    2 * k - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;
    use gossip_graph::metrics;

    fn check_spanner(g: &Graph, k: usize, seed: u64) {
        let s = baswana_sen(g, k, seed);
        let bound = stretch_bound(k) as f64;
        let stretch = s.stretch(g).expect("spanner must preserve connectivity");
        assert!(
            stretch <= bound + 1e-9,
            "stretch {stretch} exceeds 2k-1 = {bound} (n = {}, k = {k})",
            g.node_count()
        );
    }

    #[test]
    fn spanner_of_clique_has_valid_stretch_and_few_edges() {
        let g = generators::clique(32, 1).unwrap();
        for seed in [1, 2, 3] {
            let s = log_spanner(&g, seed);
            assert!(s.stretch(&g).is_some());
            // O(n log n) edges: far below the 496 clique edges.
            assert!(
                s.edge_count() <= 32 * 6 * 2,
                "spanner too dense: {} edges",
                s.edge_count()
            );
        }
    }

    #[test]
    fn stretch_respects_2k_minus_1_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(77);
        for n in [20, 40, 60] {
            let g = generators::erdos_renyi(n, 0.2, 1, &mut rng).unwrap();
            check_spanner(&g, 2, 5);
            check_spanner(&g, 3, 5);
        }
    }

    #[test]
    fn stretch_respects_bound_with_weights() {
        let mut rng = SmallRng::seed_from_u64(78);
        let base = generators::erdos_renyi(30, 0.3, 1, &mut rng).unwrap();
        let g = gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: 20 }
            .apply(&base, &mut rng)
            .unwrap();
        check_spanner(&g, 3, 9);
        check_spanner(&g, 4, 9);
    }

    #[test]
    fn out_degree_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(79);
        let g = generators::erdos_renyi(128, 0.25, 1, &mut rng).unwrap();
        let s = log_spanner(&g, 3);
        // Δ of G(128, 0.25) is ≈ 40; the oriented spanner should stay near log n.
        let max_out = s.max_out_degree();
        assert!(
            max_out <= 28,
            "max out-degree {max_out} is not O(log n) for n = 128 (Δ = {})",
            g.max_degree()
        );
    }

    #[test]
    fn spanner_preserves_connectivity_on_sparse_graphs() {
        for g in [
            generators::path(20, 3).unwrap(),
            generators::cycle(20, 2).unwrap(),
            generators::binary_tree(31, 1).unwrap(),
            generators::ring_of_cliques(4, 5, 7).unwrap(),
        ] {
            let s = log_spanner(&g, 11);
            assert!(s.stretch(&g).is_some(), "spanner disconnected the graph");
            // A tree/cycle spanner keeps essentially every edge.
            assert!(s.edge_count() >= g.node_count() - 1);
        }
    }

    #[test]
    fn spanner_diameter_is_within_logn_factor() {
        let mut rng = SmallRng::seed_from_u64(80);
        let g = generators::slow_cut_expander(64, 6, 10, &mut rng).unwrap();
        let s = log_spanner(&g, 21);
        let sg = s.to_graph(&g).unwrap();
        let d_g = metrics::weighted_diameter(&g).unwrap();
        let d_s = metrics::weighted_diameter(&sg).unwrap();
        let k = 7; // ceil(log2 64) + 1
        assert!(
            d_s <= d_g * (2 * k - 1),
            "spanner diameter {d_s} too large vs graph diameter {d_g}"
        );
    }

    #[test]
    fn k_one_keeps_an_edge_per_neighbor_cluster() {
        // With k = 1 the algorithm is just phase 2 on singleton clusters: it
        // must keep every edge (one per adjacent cluster = one per neighbor).
        let g = generators::cycle(6, 2).unwrap();
        let s = baswana_sen(&g, 1, 1);
        assert_eq!(s.edge_count(), g.edge_count());
        let stretch = s.stretch(&g).unwrap();
        assert!((stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_panics() {
        let g = generators::cycle(4, 1).unwrap();
        let _ = baswana_sen(&g, 0, 1);
    }
}

#[cfg(test)]
mod equivalence_with_btreemap_impl {
    use super::*;
    use crate::spanner_old;
    use gossip_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The flat-table rework must construct byte-identical spanners (same
    /// edges, same orientation, same out-edge order — the round-robin
    /// broadcast schedule depends on it) for every graph and seed.
    #[test]
    fn flat_tables_reproduce_the_btreemap_construction_exactly() {
        let mut graphs = vec![
            generators::clique(48, 1).unwrap(),
            generators::ring_of_cliques(4, 8, 9).unwrap(),
            generators::binary_tree(63, 2).unwrap(),
        ];
        let mut rng = SmallRng::seed_from_u64(1234);
        for n in [30, 60, 90] {
            let base = generators::erdos_renyi(n, 0.3, 1, &mut rng).unwrap();
            graphs.push(
                gossip_graph::latency::LatencyScheme::UniformRandom { min: 1, max: 12 }
                    .apply(&base, &mut rng)
                    .unwrap(),
            );
        }
        for g in &graphs {
            for seed in [1u64, 7, 42] {
                for k in [1usize, 2, 3, 6] {
                    let new = baswana_sen(g, k, seed);
                    let old = spanner_old::baswana_sen_old(g, k, seed);
                    assert_eq!(
                        new.edge_count(),
                        old.edge_count(),
                        "edge count differs (n={}, k={k}, seed={seed})",
                        g.node_count()
                    );
                    for v in g.nodes() {
                        assert_eq!(
                            new.out_edges(v),
                            old.out_edges(v),
                            "out-edge order differs at {v:?} (n={}, k={k}, seed={seed})",
                            g.node_count()
                        );
                    }
                }
            }
        }
    }
}
