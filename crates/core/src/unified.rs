//! The unified upper bound (Section 6, Theorem 31 / Corollary 32).
//!
//! The paper's final algorithm simply runs both routes in parallel and stops
//! with whichever finishes first:
//!
//! * **push–pull**, which costs `O((ℓ*/φ*)·log n)` and needs no knowledge of
//!   the latencies, and
//! * the **spanner route** — latency discovery (if latencies are unknown)
//!   followed by spanner broadcast — which costs `O((D+Δ)·log³ n)`
//!   (or `O(D·log³ n)` when latencies are known).
//!
//! Running two protocols "in parallel" doubles the per-round communication
//! but not the round count, so the unified bound is the minimum of the two.

use gossip_graph::{Graph, NodeId};

use crate::{discovery, push_pull, spanner_broadcast, DisseminationReport, Phase};

/// Which of the two routes finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// Push–pull finished first (the `ℓ*/φ*·log n` regime).
    PushPull,
    /// The spanner route finished first (the `(D+Δ)·log³ n` regime).
    SpannerRoute,
}

/// Detailed outcome of the unified algorithm.
#[derive(Debug, Clone)]
pub struct UnifiedReport {
    /// Rounds of the push–pull route.
    pub push_pull: DisseminationReport,
    /// Rounds of the spanner route (discovery + spanner broadcast when
    /// latencies are unknown; spanner broadcast alone when they are known).
    pub spanner_route: DisseminationReport,
    /// Which route finished first.
    pub winner: Winner,
    /// The unified round count: the minimum of the two routes.
    pub rounds: u64,
    /// True when at least one route completed dissemination.
    pub completed: bool,
}

impl UnifiedReport {
    fn from_routes(push_pull: DisseminationReport, spanner_route: DisseminationReport) -> Self {
        // An incomplete route never wins against a complete one.
        let pp_key = (u64::from(!push_pull.completed), push_pull.rounds);
        let sp_key = (u64::from(!spanner_route.completed), spanner_route.rounds);
        let winner = if pp_key <= sp_key {
            Winner::PushPull
        } else {
            Winner::SpannerRoute
        };
        let (rounds, completed) = match winner {
            Winner::PushPull => (push_pull.rounds, push_pull.completed),
            Winner::SpannerRoute => (spanner_route.rounds, spanner_route.completed),
        };
        UnifiedReport {
            push_pull,
            spanner_route,
            winner,
            rounds,
            completed,
        }
    }

    /// Collapses the detailed report into a [`DisseminationReport`].
    pub fn to_report(&self) -> DisseminationReport {
        DisseminationReport::from_phases(
            "unified",
            vec![
                Phase::new(
                    "push-pull",
                    self.push_pull.rounds,
                    self.push_pull.activations,
                ),
                Phase::new(
                    "spanner-route",
                    self.spanner_route.rounds,
                    self.spanner_route.activations,
                ),
            ],
            self.completed,
        )
    }
}

/// Unified algorithm in the *unknown latency* setting (Theorem 31, first
/// bound): push–pull races against latency discovery + spanner broadcast with
/// the guess-and-double driver.
pub fn run_unknown_latencies(g: &Graph, source: NodeId, seed: u64) -> UnifiedReport {
    let pp = push_pull::broadcast(g, source, seed);

    let disc = discovery::discover_all(g, seed ^ 0xd15c);
    let sb = spanner_broadcast::run_unknown_diameter(g, seed ^ 0x5b);
    let mut phases = vec![Phase::new(
        "latency-discovery",
        disc.report.rounds,
        disc.report.activations,
    )];
    phases.extend(sb.phases.clone());
    let spanner_route =
        DisseminationReport::from_phases("discovery + spanner-broadcast", phases, sb.completed);

    UnifiedReport::from_routes(pp, spanner_route)
}

/// Unified algorithm in the *known latency* setting (Theorem 31, second
/// bound): push–pull races against spanner broadcast with the known diameter
/// (served by the diameter-bound oracle; see
/// [`spanner_broadcast::run_known_diameter`]).
pub fn run_known_latencies(g: &Graph, source: NodeId, seed: u64) -> UnifiedReport {
    run_known_latencies_with(g, source, crate::diameter_bound(g), seed)
}

/// [`run_known_latencies`] with the diameter (or an upper bound on it)
/// supplied by the caller instead of recomputed from the graph.
pub fn run_known_latencies_with(
    g: &Graph,
    source: NodeId,
    d: gossip_graph::Latency,
    seed: u64,
) -> UnifiedReport {
    let pp = push_pull::broadcast(g, source, seed);
    let sb = spanner_broadcast::run_known_diameter_with(g, d, seed ^ 0x5b);
    UnifiedReport::from_routes(pp, sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn unified_completes_on_mixed_families() {
        for g in [
            generators::clique(16, 1).unwrap(),
            generators::dumbbell(6, 8).unwrap(),
            generators::ring_of_cliques(3, 4, 6).unwrap(),
        ] {
            let r = run_known_latencies(&g, NodeId::new(0), 3);
            assert!(r.completed);
            assert!(r.rounds <= r.push_pull.rounds.max(r.spanner_route.rounds));
        }
    }

    #[test]
    fn push_pull_wins_on_well_connected_fast_graphs() {
        // A unit-latency clique: ℓ*/φ*·log n is tiny, while the spanner route
        // pays log³ n discovery overhead.
        let g = generators::clique(32, 1).unwrap();
        let r = run_known_latencies(&g, NodeId::new(0), 5);
        assert!(r.completed);
        assert_eq!(r.winner, Winner::PushPull);
    }

    #[test]
    fn unified_rounds_is_min_of_routes() {
        let g = generators::grid(4, 4, 2).unwrap();
        let r = run_unknown_latencies(&g, NodeId::new(0), 9);
        assert!(r.completed);
        assert_eq!(r.rounds, r.push_pull.rounds.min(r.spanner_route.rounds));
    }

    #[test]
    fn to_report_exposes_both_phases() {
        let g = generators::cycle(10, 2).unwrap();
        let r = run_known_latencies(&g, NodeId::new(0), 1);
        let rep = r.to_report();
        assert!(rep.phase_rounds("push-pull") > 0);
        assert!(rep.phase_rounds("spanner-route") > 0);
    }
}
