//! # gossip-core
//!
//! The algorithms of *Slow Links, Fast Links, and the Cost of Gossip*
//! (Sourav, Robinson, Gilbert — ICDCS 2018): information dissemination in
//! graphs whose edges carry latencies.
//!
//! The paper proves that any dissemination algorithm needs
//! `Ω(min(D + Δ, ℓ*/φ*))` rounds and gives nearly matching algorithms:
//!
//! | Section | Algorithm | Bound | Module |
//! |---------|-----------|-------|--------|
//! | §5.1, Thm 29 | classical push–pull | `O((ℓ*/φ*)·log n)` | [`push_pull`] |
//! | App. A.1 | ℓ-DTG local broadcast | `O(ℓ·log² n)` | [`dtg`] |
//! | §4.1, Lem 19–23, Thm 20/25 | directed Baswana–Sen spanner + round-robin broadcast, guess-and-double for unknown `D` | `O(D·log³ n)` | [`spanner`], [`rr_broadcast`], [`spanner_broadcast`] |
//! | §4.2, Lem 26–28 | pattern broadcast `T(k)` | `O(D·log² n·log D)` | [`pattern`] |
//! | §5.2 | latency discovery | `Õ(D + Δ)` | [`discovery`] |
//! | §6, Thm 31 | unified algorithm | `O(min((D+Δ)·log³ n, (ℓ*/φ*)·log n))` | [`unified`] |
//!
//! All algorithms are executed round-accurately on the [`gossip_sim`]
//! simulator; each entry point returns a [`DisseminationReport`] with the
//! measured round count so that the experiment harness can compare the shapes
//! of the curves against the paper's bounds.
//!
//! ```rust
//! use gossip_graph::{generators, NodeId};
//! use gossip_core::{push_pull, spanner_broadcast};
//!
//! // Two 8-cliques joined by a slow bridge.
//! let g = generators::dumbbell(8, 64).unwrap();
//! let pp = push_pull::broadcast(&g, NodeId::new(0), 7);
//! let sb = spanner_broadcast::run_known_diameter(&g, 7);
//! assert!(pp.completed && sb.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub mod discovery;
pub mod dtg;
pub mod flooding;
pub mod pattern;
pub mod push_pull;
pub mod rr_broadcast;
pub mod spanner;
pub mod spanner_broadcast;
#[cfg(test)]
mod spanner_old;
pub mod unified;

pub use report::{DisseminationReport, Phase};

/// The "known D" the phase drivers consume: the diameter-bound oracle's
/// upper bound (exact below [`gossip_graph::metrics::EXACT_DIAMETER_THRESHOLD`],
/// a constant-sweep bound `≥ D` above it), falling back to the maximum edge
/// latency for disconnected graphs — on which no all-to-all algorithm can
/// complete, so any positive guess only bounds the wasted work.
///
/// Exposed so drivers that amortise the bound across runs (the sweep caches
/// one per shared topology) feed the `*_with` entry points the exact same
/// value the plain entry points would compute.
pub fn diameter_bound(g: &gossip_graph::Graph) -> gossip_graph::Latency {
    gossip_graph::metrics::estimate_diameter(g)
        .map(|e| e.upper)
        .unwrap_or_else(|| g.max_latency().max(1))
}
