//! Classical push–pull ("random phone call") in the latency model.
//!
//! Theorem 29 of the paper: push–pull achieves information dissemination
//! w.h.p. in `O((ℓ*/φ*)·log n)` rounds, where `φ*` is the critical weighted
//! conductance and `ℓ*` the critical latency.  Corollary 30 restates this as
//! `O((L/φ_avg)·log n)` in terms of the average weighted conductance.
//!
//! The protocol itself needs no knowledge of the latencies (or anything else
//! about the graph beyond each node's neighbor list), which is why it is the
//! workhorse for the *unknown latency* setting (Section 5.1).

use gossip_graph::{Graph, NodeId};
use gossip_sim::protocols::RandomPushPull;
use gossip_sim::{RumorId, SimConfig, Simulation, Termination};

use crate::DisseminationReport;

/// One-to-all dissemination from `source` using push–pull.
///
/// Runs until every node knows the source's rumor (or an internal round cap
/// proportional to `n · ℓ_max` is hit, in which case `completed` is `false`).
pub fn broadcast(g: &Graph, source: NodeId, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowRumorOf(source))
        .track_rumor(RumorId::of_node(source))
        .max_rounds(round_cap(g));
    let report = Simulation::new(g, config).run(&mut RandomPushPull::new(g));
    DisseminationReport::single(
        "push-pull",
        report.rounds,
        report.activations,
        report.completed,
    )
    .with_mem(report.mem)
}

/// All-to-all dissemination using push–pull: every node starts with its own
/// rumor and the run ends when every node knows every rumor.
pub fn all_to_all(g: &Graph, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowAll)
        .max_rounds(round_cap(g));
    let report = Simulation::new(g, config).run(&mut RandomPushPull::new(g));
    DisseminationReport::single(
        "push-pull (all-to-all)",
        report.rounds,
        report.activations,
        report.completed,
    )
    .with_mem(report.mem)
}

/// Local broadcast via push–pull: run until every node knows the rumor of
/// every neighbor connected by an edge of latency at most `bound`.
///
/// The lower bound of Theorem 10 applies to this primitive: on the
/// bipartite construction, push–pull needs `Ω(log n/φ_ℓ + ℓ)` rounds.
pub fn local_broadcast(g: &Graph, bound: gossip_graph::Latency, seed: u64) -> DisseminationReport {
    let config = SimConfig::new(seed)
        .termination(Termination::LocalBroadcast(bound))
        .max_rounds(round_cap(g));
    let report = Simulation::new(g, config).run(&mut RandomPushPull::new(g));
    DisseminationReport::single(
        "push-pull (local broadcast)",
        report.rounds,
        report.activations,
        report.completed,
    )
    .with_mem(report.mem)
}

fn round_cap(g: &Graph) -> u64 {
    // Generous cap: n rounds per unit of maximum latency, at least 10_000.
    (g.node_count() as u64)
        .saturating_mul(g.max_latency().max(1))
        .saturating_mul(4)
        .max(10_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn broadcast_on_clique_is_logarithmic() {
        let g = generators::clique(64, 1).unwrap();
        let r = broadcast(&g, NodeId::new(0), 1);
        assert!(r.completed);
        // O(log n) with small constants; 64 nodes should finish well under 40 rounds.
        assert!(
            r.rounds <= 40,
            "push-pull too slow on a clique: {} rounds",
            r.rounds
        );
    }

    #[test]
    fn broadcast_scales_with_latency_on_uniform_clique() {
        let fast = generators::clique(32, 1).unwrap();
        let slow = generators::clique(32, 8).unwrap();
        let rf = broadcast(&fast, NodeId::new(0), 3);
        let rs = broadcast(&slow, NodeId::new(0), 3);
        assert!(rf.completed && rs.completed);
        assert!(
            rs.rounds >= 4 * rf.rounds,
            "uniformly slow clique ({}) should be ~8x slower than fast ({})",
            rs.rounds,
            rf.rounds
        );
    }

    #[test]
    fn all_to_all_completes_on_ring_of_cliques() {
        let g = generators::ring_of_cliques(4, 6, 4).unwrap();
        let r = all_to_all(&g, 5);
        assert!(r.completed);
        assert!(r.rounds > 0);
    }

    #[test]
    fn local_broadcast_ignores_edges_above_bound() {
        let g = generators::dumbbell(6, 1000).unwrap();
        // Local broadcast over fast edges only never needs to use the slow bridge.
        let r = local_broadcast(&g, 1, 2);
        assert!(r.completed);
        assert!(r.rounds < 500);
    }

    #[test]
    fn broadcast_from_any_source_completes() {
        let g = generators::binary_tree(31, 2).unwrap();
        for source in [0usize, 15, 30] {
            let r = broadcast(&g, NodeId::new(source), 11);
            assert!(r.completed, "failed from source {source}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::ring_of_cliques(3, 5, 6).unwrap();
        let a = broadcast(&g, NodeId::new(0), 77);
        let b = broadcast(&g, NodeId::new(0), 77);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.activations, b.activations);
    }
}
