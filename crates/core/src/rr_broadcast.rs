//! RR Broadcast (Algorithm 1 of the paper): round-robin dissemination over
//! the out-edges of a directed spanner.
//!
//! Given the directed spanner of `G_k` (the graph restricted to edges of
//! latency ≤ k), every node repeatedly sends everything it knows along its
//! out-edges, one per round, in round-robin order.  Lemma 21 shows that after
//! `O(k·Δ_out + k)` rounds every pair of nodes at distance ≤ k in `G` has
//! exchanged rumors, and Corollary 22 instantiates this with the
//! `O(log n)`-out-degree spanner to obtain an `O(D·log² n)` broadcast phase.

use gossip_graph::spanner::DirectedSpanner;
use gossip_graph::{Graph, Latency, NodeId};
use gossip_sim::{Activity, NodeView, Protocol, RumorSet, SimConfig, Simulation, Termination};
use rand::rngs::SmallRng;

use crate::DisseminationReport;

/// The round-robin broadcast protocol over a directed spanner.
#[derive(Debug, Clone)]
pub struct RrBroadcast {
    /// Out-neighbors (restricted to edges of latency ≤ the parameter k) per node.
    out: Vec<Vec<NodeId>>,
    next: Vec<usize>,
}

impl RrBroadcast {
    /// Creates the protocol from a directed spanner, keeping only out-edges of
    /// latency at most `k` (the `RR Broadcast(k)` parameter of Algorithm 1).
    pub fn new(g: &Graph, spanner: &DirectedSpanner, k: Latency) -> Self {
        let out = g
            .nodes()
            .map(|v| {
                spanner
                    .out_edges(v)
                    .iter()
                    .filter(|(_, e)| g.latency(*e) <= k)
                    .map(|(w, _)| *w)
                    .collect()
            })
            .collect();
        RrBroadcast {
            next: vec![0; g.node_count()],
            out,
        }
    }

    /// The number of rounds Lemma 21 prescribes: `k·Δ_out + k`.
    pub fn prescribed_rounds(&self, k: Latency) -> u64 {
        let max_out = self.out.iter().map(Vec::len).max().unwrap_or(0) as u64;
        k * max_out + k
    }
}

impl Protocol for RrBroadcast {
    fn name(&self) -> &'static str {
        "rr-broadcast"
    }

    // gossip-lint: allow(panic-path): cursor wraps modulo the nonzero degree; deg == 0 returns before any index
    fn on_round(&mut self, view: &NodeView<'_>, _rng: &mut SmallRng) -> Option<NodeId> {
        let i = view.node.index();
        if self.out[i].is_empty() {
            return None;
        }
        let pick = self.next[i] % self.out[i].len();
        self.next[i] += 1;
        Some(self.out[i][pick])
    }

    // gossip-audit: contract(pure)
    fn activity(&self, view: &NodeView<'_>) -> Activity {
        // The out-list is fixed at construction, so a node without spanner
        // out-edges of latency ≤ k never initiates: retire it outright.  (It
        // still receives exchanges initiated by its in-neighbors — delivery
        // does not depend on the scheduler asking the node to act.)
        if self.out[view.node.index()].is_empty() {
            Activity::Quiescent
        } else {
            Activity::Active
        }
    }
}

/// Materialises the spanner's edge set as a standalone graph for the phase
/// simulation.  Every target RR Broadcast can pick is a spanner edge, so
/// simulating over the sparse subgraph (`O(n·log n)` edges) instead of the
/// full parent graph (`O(n²)` on dense families) produces an identical
/// round/activation trace while the engine's per-edge state shrinks from
/// `O(m)` to `O(n·log n)`.
fn phase_graph(g: &Graph, spanner: &DirectedSpanner) -> Graph {
    spanner
        .to_graph(g)
        .expect("spanner edges are a subset of a valid graph")
}

/// Runs RR Broadcast over `spanner` with parameter `k` until all-to-all
/// dissemination completes (or the Lemma-21 round budget, scaled by the
/// spanner stretch, is exhausted).
///
/// The phase simulation runs over the spanner subgraph, not the full parent
/// graph — see [`RrBroadcast::new`]'s out-lists: no other edge can carry an
/// exchange.
pub fn all_to_all(
    g: &Graph,
    spanner: &DirectedSpanner,
    k: Latency,
    seed: u64,
) -> DisseminationReport {
    let mut protocol = RrBroadcast::new(g, spanner, k);
    let budget = budget(g, &protocol, k);
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowAll)
        .max_rounds(budget);
    let sim_graph = phase_graph(g, spanner);
    let report = Simulation::new(&sim_graph, config).run(&mut protocol);
    DisseminationReport::single(
        "rr-broadcast",
        report.rounds,
        report.activations,
        report.completed,
    )
}

/// Runs RR Broadcast starting from the given rumor sets; returns the report
/// and the final rumor sets.  Used by the guess-and-double driver, which needs
/// to carry knowledge across doubling phases.
///
/// # Panics
///
/// Panics if `rumors.len()` differs from the node count of `g`.
pub fn run_with_rumors(
    g: &Graph,
    spanner: &DirectedSpanner,
    k: Latency,
    seed: u64,
    rumors: Vec<RumorSet>,
) -> (DisseminationReport, Vec<RumorSet>) {
    let mut protocol = RrBroadcast::new(g, spanner, k);
    let budget = budget(g, &protocol, k);
    let config = SimConfig::new(seed)
        .termination(Termination::AllKnowAll)
        .max_rounds(budget);
    let sim_graph = phase_graph(g, spanner);
    let mut sim = Simulation::with_rumors(&sim_graph, config, rumors);
    let report = sim.run(&mut protocol);
    let out = DisseminationReport::single(
        "rr-broadcast",
        report.rounds,
        report.activations,
        report.completed,
    );
    (out, sim.into_rumors())
}

fn budget(g: &Graph, protocol: &RrBroadcast, k: Latency) -> u64 {
    // Lemma 21 runs RR Broadcast(k) for k·Δout + k rounds; the callers already
    // pass k = O(D·log n), so doubling the prescribed count is a generous cap
    // that still keeps a failed guess (in the guess-and-double driver) from
    // burning more than O(k·polylog) rounds.
    let n = g.node_count() as u64;
    protocol.prescribed_rounds(k).saturating_mul(2).max(n) + 50
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanner::log_spanner;
    use gossip_graph::generators;
    use gossip_graph::metrics;

    #[test]
    fn rr_broadcast_completes_on_spanner_of_clique() {
        let g = generators::clique(24, 1).unwrap();
        let s = log_spanner(&g, 1);
        let d = metrics::weighted_diameter(&g).unwrap();
        let r = all_to_all(&g, &s, d * 8, 1);
        assert!(r.completed);
    }

    #[test]
    fn rr_broadcast_completes_on_weighted_families() {
        for g in [
            generators::dumbbell(6, 12).unwrap(),
            generators::ring_of_cliques(4, 4, 6).unwrap(),
            generators::grid(4, 4, 3).unwrap(),
        ] {
            let s = log_spanner(&g, 3);
            let d = metrics::weighted_diameter(&g).unwrap();
            // The spanner has stretch ≤ 2k-1, so pass a k large enough to cover it.
            let r = all_to_all(&g, &s, d * 16, 5);
            assert!(
                r.completed,
                "rr-broadcast failed on {} nodes",
                g.node_count()
            );
        }
    }

    #[test]
    fn k_filter_excludes_slow_out_edges() {
        let g = generators::dumbbell(4, 1000).unwrap();
        let s = log_spanner(&g, 2);
        let protocol = RrBroadcast::new(&g, &s, 1);
        // No node may have the latency-1000 bridge among its k=1 out-edges.
        for v in g.nodes() {
            for &w in &protocol.out[v.index()] {
                let e = g.find_edge(v, w).unwrap();
                assert!(g.latency(e) <= 1);
            }
        }
    }

    #[test]
    fn prescribed_rounds_formula() {
        let g = generators::star(9, 2).unwrap();
        let s = log_spanner(&g, 1);
        let protocol = RrBroadcast::new(&g, &s, 2);
        let max_out = protocol.out.iter().map(Vec::len).max().unwrap() as u64;
        assert_eq!(protocol.prescribed_rounds(2), 2 * max_out + 2);
    }

    #[test]
    fn run_with_rumors_carries_prior_knowledge() {
        let g = generators::path(5, 2).unwrap();
        let s = log_spanner(&g, 1);
        let n = g.node_count();
        let rumors: Vec<RumorSet> = (0..n)
            .map(|i| gossip_sim::RumorSet::singleton(n, gossip_sim::RumorId::from(i)))
            .collect();
        let (r, final_rumors) = run_with_rumors(&g, &s, 20, 3, rumors);
        assert!(r.completed);
        assert!(final_rumors.iter().all(RumorSet::is_full));
    }
}
