//! Rumors and per-node rumor sets.
//!
//! Every node in an information-dissemination instance can originate one
//! rumor; rumor `i` is "the rumor whose source is node `i`".  A node's state
//! with respect to dissemination is the set of rumors it currently knows,
//! which we store as a fixed-width bitset.

use std::fmt;

use gossip_graph::NodeId;

/// Identifier of a rumor.  Rumor `i` originates at node `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RumorId(pub u32);

impl RumorId {
    /// The rumor originating at `node`.
    pub fn of_node(node: NodeId) -> Self {
        RumorId(node.index() as u32)
    }

    /// Dense index of this rumor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for RumorId {
    fn from(i: usize) -> Self {
        RumorId(u32::try_from(i).expect("rumor index exceeds u32::MAX"))
    }
}

impl fmt::Display for RumorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A set of rumors, stored as a bitset over the rumor universe `0..universe`.
#[derive(Clone, PartialEq, Eq)]
pub struct RumorSet {
    universe: usize,
    words: Vec<u64>,
}

impl RumorSet {
    /// Creates an empty rumor set over a universe of `universe` rumors.
    pub fn empty(universe: usize) -> Self {
        RumorSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates a singleton set containing only `rumor`.
    ///
    /// # Panics
    ///
    /// Panics if `rumor` is outside the universe.
    pub fn singleton(universe: usize, rumor: RumorId) -> Self {
        let mut s = Self::empty(universe);
        s.insert(rumor);
        s
    }

    /// Size of the rumor universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a rumor; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the rumor is outside the universe.
    pub fn insert(&mut self, rumor: RumorId) -> bool {
        let i = rumor.index();
        assert!(
            i < self.universe,
            "rumor {i} outside universe of size {}",
            self.universe
        );
        let (word, bit) = (i / 64, i % 64);
        let was_set = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !was_set
    }

    /// Returns `true` if the set contains `rumor`.
    pub fn contains(&self, rumor: RumorId) -> bool {
        let i = rumor.index();
        if i >= self.universe {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of rumors in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the set contains every rumor of the universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Unions `other` into `self`; returns `true` if any new rumor was added.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn union_with(&mut self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                changed = true;
                *a = new;
            }
        }
        changed
    }

    /// Returns `true` if `self` is a superset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn is_superset(&self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Iterator over the rumors present in the set, in increasing id order.
    ///
    /// Runs in `O(universe/64 + len)` — it walks whole words and peels set
    /// bits — so materialising a sparse set is cheap even for large universes
    /// (the engine uses this to seed per-node acquisition logs).
    pub fn iter(&self) -> RumorIter<'_> {
        RumorIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the rumors of a [`RumorSet`], in increasing id order.
///
/// Produced by [`RumorSet::iter`].
#[derive(Debug, Clone)]
pub struct RumorIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for RumorIter<'_> {
    type Item = RumorId;

    fn next(&mut self) -> Option<RumorId> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(RumorId((self.word_index * 64) as u32 + bit))
    }
}

impl fmt::Debug for RumorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RumorSet({}/{}: ", self.len(), self.universe)?;
        f.debug_set().entries(self.iter().map(|r| r.0)).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_membership() {
        let s = RumorSet::singleton(10, RumorId(3));
        assert!(s.contains(RumorId(3)));
        assert!(!s.contains(RumorId(4)));
        assert!(!s.contains(RumorId(99)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(!s.is_full());
    }

    #[test]
    fn insert_reports_novelty() {
        let mut s = RumorSet::empty(5);
        assert!(s.insert(RumorId(2)));
        assert!(!s.insert(RumorId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_superset() {
        let mut a = RumorSet::singleton(100, RumorId(1));
        let b = RumorSet::singleton(100, RumorId(70));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(RumorId(70)));
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_set_detection() {
        let mut s = RumorSet::empty(3);
        for i in 0..3 {
            s.insert(RumorId(i));
        }
        assert!(s.is_full());
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![RumorId(0), RumorId(1), RumorId(2)]
        );
    }

    #[test]
    fn empty_universe_is_trivially_full() {
        let s = RumorSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full());
    }

    #[test]
    fn rumor_of_node_matches_index() {
        assert_eq!(RumorId::of_node(NodeId::new(5)), RumorId(5));
        assert_eq!(RumorId::from(9usize).index(), 9);
        assert_eq!(format!("{}", RumorId(4)), "r4");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = RumorSet::empty(4);
        s.insert(RumorId(4));
    }

    #[test]
    #[should_panic(expected = "must share a universe")]
    fn union_of_mismatched_universes_panics() {
        let mut a = RumorSet::empty(4);
        let b = RumorSet::empty(5);
        a.union_with(&b);
    }

    #[test]
    fn iter_walks_words_in_order() {
        // Rumors spread across multiple 64-bit words, including word edges.
        let ids = [0usize, 1, 63, 64, 127, 128, 200];
        let mut s = RumorSet::empty(201);
        for &i in &ids {
            s.insert(RumorId::from(i));
        }
        let got: Vec<usize> = s.iter().map(RumorId::index).collect();
        assert_eq!(got, ids);
        assert!(RumorSet::empty(0).iter().next().is_none());
        assert!(RumorSet::empty(100).iter().next().is_none());
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let s = RumorSet::singleton(4, RumorId(1));
        let repr = format!("{s:?}");
        assert!(repr.contains("RumorSet"));
        assert!(repr.contains('1'));
    }
}
