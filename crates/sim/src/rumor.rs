//! Rumors and per-node rumor sets.
//!
//! Every node in an information-dissemination instance can originate one
//! rumor; rumor `i` is "the rumor whose source is node `i`".  A node's state
//! with respect to dissemination is the set of rumors it currently knows,
//! which we store as a fixed-width bitset.

use std::fmt;

use gossip_graph::NodeId;

/// Identifier of a rumor.  Rumor `i` originates at node `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RumorId(pub u32);

impl RumorId {
    /// The rumor originating at `node`.
    pub fn of_node(node: NodeId) -> Self {
        RumorId(node.index() as u32)
    }

    /// Dense index of this rumor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for RumorId {
    fn from(i: usize) -> Self {
        RumorId(u32::try_from(i).expect("rumor index exceeds u32::MAX"))
    }
}

impl fmt::Display for RumorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A set of rumors, stored as a bitset over the rumor universe `0..universe`.
#[derive(Clone, PartialEq, Eq)]
pub struct RumorSet {
    universe: usize,
    words: Vec<u64>,
}

impl RumorSet {
    /// Creates an empty rumor set over a universe of `universe` rumors.
    pub fn empty(universe: usize) -> Self {
        RumorSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates a singleton set containing only `rumor`.
    ///
    /// # Panics
    ///
    /// Panics if `rumor` is outside the universe.
    pub fn singleton(universe: usize, rumor: RumorId) -> Self {
        let mut s = Self::empty(universe);
        s.insert(rumor);
        s
    }

    /// Size of the rumor universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a rumor; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if the rumor is outside the universe.
    pub fn insert(&mut self, rumor: RumorId) -> bool {
        let i = rumor.index();
        assert!(
            i < self.universe,
            "rumor {i} outside universe of size {}",
            self.universe
        );
        let (word, bit) = (i / 64, i % 64);
        let was_set = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !was_set
    }

    /// Returns `true` if the set contains `rumor`.
    pub fn contains(&self, rumor: RumorId) -> bool {
        let i = rumor.index();
        if i >= self.universe {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of rumors in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the set contains every rumor of the universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Unions `other` into `self`; returns `true` if any new rumor was added.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn union_with(&mut self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                changed = true;
                *a = new;
            }
        }
        changed
    }

    /// Returns `true` if `self` is a superset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn is_superset(&self, other: &RumorSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "rumor sets must share a universe"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Iterator over the rumors present in the set, in increasing id order.
    ///
    /// Runs in `O(universe/64 + len)` — it walks whole words and peels set
    /// bits — so materialising a sparse set is cheap even for large universes
    /// (the engine uses this to seed per-node acquisition logs).
    pub fn iter(&self) -> RumorIter<'_> {
        RumorIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Inserts the `len` consecutive rumors `first, first+1, …, first+len-1`,
    /// pushing every rumor that was *not* already present onto `out_new` in
    /// increasing id order.
    ///
    /// This is the word-level workhorse of the engine's interval-log merge:
    /// one run of consecutive rumor ids is unioned in `O(len/64 + new)` time
    /// instead of `len` individual inserts.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the universe.
    pub fn insert_consecutive(&mut self, first: RumorId, len: u32, out_new: &mut Vec<RumorId>) {
        if len == 0 {
            return;
        }
        let lo = first.index();
        let hi = lo + len as usize;
        assert!(
            hi <= self.universe,
            "run {lo}..{hi} outside universe of size {}",
            self.universe
        );
        let words = &mut self.words;
        for_each_word_mask(lo, len as usize, |w, mask| {
            let mut new = mask & !words[w];
            words[w] |= mask;
            while new != 0 {
                let bit = new.trailing_zeros();
                new &= new - 1;
                out_new.push(RumorId((w * 64) as u32 + bit));
            }
        });
    }

    /// Unions a raw word slice (same universe layout) into the set, pushing
    /// every newly inserted rumor onto `out_new` in increasing id order.
    /// Used by the engine to merge a peer's delayed bitset shadow.
    pub(crate) fn union_words_collect_new(&mut self, words: &[u64], out_new: &mut Vec<RumorId>) {
        debug_assert_eq!(words.len(), self.words.len(), "universe mismatch");
        for (w, (a, &b)) in self.words.iter_mut().zip(words).enumerate() {
            let mut new = b & !*a;
            *a |= b;
            while new != 0 {
                let bit = new.trailing_zeros();
                new &= new - 1;
                out_new.push(RumorId((w * 64) as u32 + bit));
            }
        }
    }

    /// Number of 64-bit words a shadow bitset over this universe needs.
    pub(crate) fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// Calls `f(word_index, mask)` for every 64-bit word overlapped by the bit
/// range `lo..lo+len`, with `mask` covering exactly the in-range bits of
/// that word.  Shared by the consecutive-run set operations so the boundary
/// arithmetic (including the `1 << 64` full-word case) lives in one place.
fn for_each_word_mask(lo: usize, len: usize, mut f: impl FnMut(usize, u64)) {
    if len == 0 {
        return;
    }
    let hi = lo + len;
    for w in lo / 64..=(hi - 1) / 64 {
        let a = lo.max(w * 64) - w * 64;
        let b = hi.min(w * 64 + 64) - w * 64;
        let mask = if b - a == 64 {
            !0u64
        } else {
            ((1u64 << (b - a)) - 1) << a
        };
        f(w, mask);
    }
}

/// Sets the bits `lo..lo+len` in a raw bitset word slice (the engine uses
/// this to replay consecutive log runs into a delayed shadow).
pub(crate) fn set_words_range(words: &mut [u64], lo: usize, len: usize) {
    for_each_word_mask(lo, len, |w, mask| words[w] |= mask);
}

/// One run of an [`AcquisitionLog`]: the entries at positions
/// `start .. next run's start` hold the consecutive rumor ids
/// `first, first + 1, …`.  The run length is implicit in the neighbor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    /// Absolute log position of the run's first entry.
    start: u32,
    /// Rumor id of the run's first entry.
    first: u32,
}

/// A run-length-compressed, truncatable acquisition log.
///
/// Conceptually this is an append-only sequence of [`RumorId`]s — the rumors
/// a node learned, in learn order — addressed by *absolute position*.  Two
/// things make it cheap at scale:
///
/// * **Interval runs.**  Maximal stretches of *consecutive* rumor ids are
///   stored as a single 8-byte run.  Acquisition orders in dissemination
///   workloads are bursty (a merge copies its peer's runs, so runs propagate
///   and grow), and on structured families — star hubs relaying
///   `leaf 1, leaf 2, …`, clique all-to-all — whole logs collapse to a
///   handful of runs.
/// * **Prefix truncation.**  [`truncate_below`](Self::truncate_below) drops
///   runs that lie entirely below a position; reads below the truncation
///   frontier are a contract violation (the engine serves them from a delayed
///   bitset shadow instead).  Positions stay absolute across truncation, so
///   snapshots and watermarks taken earlier remain valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquisitionLog {
    runs: Vec<Run>,
    /// Index into `runs` of the first retained run (earlier runs are dropped
    /// lazily and compacted away once they dominate the vector).
    head: usize,
    /// Total number of entries ever appended (`==` the owning node's rumor count).
    len: u32,
    /// Absolute position of the first retained entry (`== len` when empty).
    front: u32,
}

impl AcquisitionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AcquisitionLog {
            runs: Vec::new(),
            head: 0,
            len: 0,
            front: 0,
        }
    }

    /// Creates a log seeded with the rumors of `set` in increasing id order
    /// (the canonical initial-state order; consecutive ids coalesce into runs).
    pub fn from_set(set: &RumorSet) -> Self {
        let mut log = AcquisitionLog::new();
        for rumor in set.iter() {
            log.push(rumor);
        }
        log
    }

    /// Total number of entries ever appended (including truncated ones).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Absolute position of the first retained entry: reads below this
    /// position panic in debug builds.
    pub fn front(&self) -> u32 {
        self.front
    }

    /// Number of runs currently retained (the log's live memory, 8 bytes each).
    pub fn retained_runs(&self) -> usize {
        self.runs.len() - self.head
    }

    /// End position of the retained run at `runs` index `i`.
    fn run_end(&self, i: usize) -> u32 {
        if i + 1 < self.runs.len() {
            self.runs[i + 1].start
        } else {
            self.len
        }
    }

    /// Appends one entry.  Returns `true` if the entry started a new run
    /// (`false` when it extended the last run — extensions are free, the run
    /// length is implicit).
    pub fn push(&mut self, rumor: RumorId) -> bool {
        let pos = self.len;
        self.len += 1;
        if self.head < self.runs.len() {
            let last = self.runs[self.runs.len() - 1];
            if u64::from(last.first) + u64::from(pos - last.start) == u64::from(rumor.0) {
                return false;
            }
        }
        self.runs.push(Run {
            start: pos,
            first: rumor.0,
        });
        true
    }

    /// Number of retained runs that lie entirely below `pos` — exactly what
    /// [`truncate_below`](Self::truncate_below) would reclaim.
    pub fn runs_entirely_below(&self, pos: u32) -> usize {
        let live = &self.runs[self.head..];
        let k = live.partition_point(|r| r.start < pos);
        if k == 0 {
            return 0;
        }
        // The k-th run (index k-1) starts below `pos` but may extend past it.
        let end = self.run_end(self.head + k - 1);
        if end <= pos {
            k
        } else {
            k - 1
        }
    }

    /// Drops every run lying entirely below `pos` and returns how many were
    /// reclaimed.  A run straddling `pos` is kept whole, so positions
    /// `>= pos` always stay readable.
    pub fn truncate_below(&mut self, pos: u32) -> usize {
        let mut dropped = 0usize;
        while self.head < self.runs.len() && self.run_end(self.head) <= pos {
            self.head += 1;
            dropped += 1;
        }
        self.front = if self.head < self.runs.len() {
            self.runs[self.head].start
        } else {
            self.len
        };
        // Compact once dropped runs dominate, and release oversized capacity
        // so truncation frees real memory, not just indices.
        if self.head > 32 && self.head * 2 >= self.runs.len() {
            self.runs.drain(..self.head);
            self.head = 0;
            if self.runs.capacity() > 4 * self.runs.len().max(8) {
                self.runs.shrink_to(2 * self.runs.len().max(8));
            }
        }
        dropped
    }

    /// Calls `f(first_rumor, segment_len)` for the consecutive-id segments
    /// covering positions `from..to`, in position order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `from` lies below the truncation frontier or
    /// `to` past the end.
    pub fn for_each_segment(&self, from: u32, to: u32, mut f: impl FnMut(RumorId, u32)) {
        if from >= to {
            return;
        }
        debug_assert!(
            from >= self.front,
            "reading truncated log positions ({from} < front {})",
            self.front
        );
        debug_assert!(to <= self.len, "reading past the log ({to} > {})", self.len);
        let live = &self.runs[self.head..];
        let mut i = live.partition_point(|r| r.start <= from).saturating_sub(1);
        while i < live.len() {
            let run = live[i];
            if run.start >= to {
                break;
            }
            let end = self.run_end(self.head + i);
            let s = run.start.max(from);
            let e = end.min(to);
            if s < e {
                f(RumorId(run.first + (s - run.start)), e - s);
            }
            i += 1;
        }
    }

    /// The entry at absolute position `pos` (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is truncated or out of range.
    pub fn get(&self, pos: u32) -> RumorId {
        assert!(pos >= self.front && pos < self.len, "position out of range");
        let live = &self.runs[self.head..];
        let i = live.partition_point(|r| r.start <= pos) - 1;
        RumorId(live[i].first + (pos - live[i].start))
    }
}

impl Default for AcquisitionLog {
    fn default() -> Self {
        AcquisitionLog::new()
    }
}

/// Iterator over the rumors of a [`RumorSet`], in increasing id order.
///
/// Produced by [`RumorSet::iter`].
#[derive(Debug, Clone)]
pub struct RumorIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for RumorIter<'_> {
    type Item = RumorId;

    fn next(&mut self) -> Option<RumorId> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(RumorId((self.word_index * 64) as u32 + bit))
    }
}

impl fmt::Debug for RumorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RumorSet({}/{}: ", self.len(), self.universe)?;
        f.debug_set().entries(self.iter().map(|r| r.0)).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_membership() {
        let s = RumorSet::singleton(10, RumorId(3));
        assert!(s.contains(RumorId(3)));
        assert!(!s.contains(RumorId(4)));
        assert!(!s.contains(RumorId(99)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(!s.is_full());
    }

    #[test]
    fn insert_reports_novelty() {
        let mut s = RumorSet::empty(5);
        assert!(s.insert(RumorId(2)));
        assert!(!s.insert(RumorId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_superset() {
        let mut a = RumorSet::singleton(100, RumorId(1));
        let b = RumorSet::singleton(100, RumorId(70));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(RumorId(70)));
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_set_detection() {
        let mut s = RumorSet::empty(3);
        for i in 0..3 {
            s.insert(RumorId(i));
        }
        assert!(s.is_full());
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![RumorId(0), RumorId(1), RumorId(2)]
        );
    }

    #[test]
    fn empty_universe_is_trivially_full() {
        let s = RumorSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full());
    }

    #[test]
    fn rumor_of_node_matches_index() {
        assert_eq!(RumorId::of_node(NodeId::new(5)), RumorId(5));
        assert_eq!(RumorId::from(9usize).index(), 9);
        assert_eq!(format!("{}", RumorId(4)), "r4");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = RumorSet::empty(4);
        s.insert(RumorId(4));
    }

    #[test]
    #[should_panic(expected = "must share a universe")]
    fn union_of_mismatched_universes_panics() {
        let mut a = RumorSet::empty(4);
        let b = RumorSet::empty(5);
        a.union_with(&b);
    }

    #[test]
    fn iter_walks_words_in_order() {
        // Rumors spread across multiple 64-bit words, including word edges.
        let ids = [0usize, 1, 63, 64, 127, 128, 200];
        let mut s = RumorSet::empty(201);
        for &i in &ids {
            s.insert(RumorId::from(i));
        }
        let got: Vec<usize> = s.iter().map(RumorId::index).collect();
        assert_eq!(got, ids);
        assert!(RumorSet::empty(0).iter().next().is_none());
        assert!(RumorSet::empty(100).iter().next().is_none());
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let s = RumorSet::singleton(4, RumorId(1));
        let repr = format!("{s:?}");
        assert!(repr.contains("RumorSet"));
        assert!(repr.contains('1'));
    }

    #[test]
    fn insert_consecutive_matches_individual_inserts() {
        let mut a = RumorSet::empty(200);
        a.insert(RumorId(70));
        a.insert(RumorId(128));
        let mut b = a.clone();

        let mut new = Vec::new();
        a.insert_consecutive(RumorId(60), 80, &mut new);
        let mut expected_new = Vec::new();
        for i in 60..140u32 {
            if b.insert(RumorId(i)) {
                expected_new.push(RumorId(i));
            }
        }
        assert_eq!(a, b);
        assert_eq!(new, expected_new);
        assert!(!new.contains(&RumorId(70)));
        assert!(new.contains(&RumorId(139)));

        // Zero-length runs are a no-op.
        new.clear();
        a.insert_consecutive(RumorId(0), 0, &mut new);
        assert!(new.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_consecutive_past_universe_panics() {
        let mut s = RumorSet::empty(10);
        s.insert_consecutive(RumorId(8), 3, &mut Vec::new());
    }

    #[test]
    fn union_words_collects_exactly_the_new_rumors() {
        let mut dst = RumorSet::singleton(130, RumorId(5));
        let mut src = RumorSet::singleton(130, RumorId(5));
        src.insert(RumorId(0));
        src.insert(RumorId(64));
        src.insert(RumorId(129));
        let mut new = Vec::new();
        dst.union_words_collect_new(&src.words, &mut new);
        assert_eq!(new, vec![RumorId(0), RumorId(64), RumorId(129)]);
        assert!(dst.is_superset(&src));
        new.clear();
        dst.union_words_collect_new(&src.words, &mut new);
        assert!(new.is_empty(), "second union adds nothing");
    }

    #[test]
    fn set_words_range_sets_exactly_the_range() {
        let mut words = vec![0u64; 4];
        set_words_range(&mut words, 60, 10); // spans the 0/1 word boundary
        set_words_range(&mut words, 128, 64); // a full word
        set_words_range(&mut words, 0, 0); // no-op
        let mut expected = RumorSet::empty(256);
        for i in 60..70 {
            expected.insert(RumorId(i));
        }
        for i in 128..192 {
            expected.insert(RumorId(i));
        }
        assert_eq!(words, expected.words);
    }

    #[test]
    fn log_coalesces_consecutive_ids_into_runs() {
        let mut log = AcquisitionLog::new();
        for i in [7u32, 8, 9, 10, 3, 4, 42] {
            log.push(RumorId(i));
        }
        assert_eq!(log.len(), 7);
        assert_eq!(log.retained_runs(), 3, "7..=10, 3..=4, 42");
        let entries: Vec<u32> = (0..7).map(|p| log.get(p).0).collect();
        assert_eq!(entries, vec![7, 8, 9, 10, 3, 4, 42]);
    }

    #[test]
    fn log_from_set_compresses_dense_sets() {
        let mut set = RumorSet::empty(1000);
        for i in 0..1000 {
            if i != 500 {
                set.insert(RumorId(i));
            }
        }
        let log = AcquisitionLog::from_set(&set);
        assert_eq!(log.len(), 999);
        assert_eq!(log.retained_runs(), 2, "0..500 and 501..1000");
        assert_eq!(log.get(0), RumorId(0));
        assert_eq!(log.get(500), RumorId(501));
    }

    #[test]
    fn log_segments_cover_arbitrary_ranges() {
        let mut log = AcquisitionLog::new();
        for i in [10u32, 11, 12, 50, 51, 90] {
            log.push(RumorId(i));
        }
        let collect = |from, to| {
            let mut out = Vec::new();
            log.for_each_segment(from, to, |first, len| out.push((first.0, len)));
            out
        };
        assert_eq!(collect(0, 6), vec![(10, 3), (50, 2), (90, 1)]);
        assert_eq!(collect(1, 5), vec![(11, 2), (50, 2)]);
        assert_eq!(collect(4, 4), vec![]);
        assert_eq!(collect(5, 6), vec![(90, 1)]);
    }

    #[test]
    fn log_truncation_reclaims_whole_runs_and_keeps_positions_absolute() {
        let mut log = AcquisitionLog::new();
        for i in [10u32, 11, 12, 50, 51, 90] {
            log.push(RumorId(i));
        }
        assert_eq!(log.runs_entirely_below(3), 1);
        assert_eq!(log.runs_entirely_below(4), 1, "run 50..52 straddles pos 4");
        assert_eq!(log.runs_entirely_below(5), 2);
        assert_eq!(log.runs_entirely_below(6), 3);

        assert_eq!(log.truncate_below(4), 1);
        assert_eq!(log.front(), 3, "straddling run kept whole");
        assert_eq!(log.retained_runs(), 2);
        // Absolute positions survive truncation.
        assert_eq!(log.get(4), RumorId(51));
        let mut out = Vec::new();
        log.for_each_segment(4, 6, |first, len| out.push((first.0, len)));
        assert_eq!(out, vec![(51, 1), (90, 1)]);

        assert_eq!(log.truncate_below(6), 2);
        assert_eq!(log.retained_runs(), 0);
        assert_eq!(log.front(), 6);
        // Appending after full truncation starts a fresh run.
        assert!(log.push(RumorId(91)));
        assert_eq!(log.get(6), RumorId(91));
        assert_eq!(log.len(), 7);
    }

    #[test]
    fn log_compaction_frees_dropped_runs() {
        let mut log = AcquisitionLog::new();
        // 200 singleton runs (even ids never coalesce).
        for i in 0..200u32 {
            log.push(RumorId(2 * i));
        }
        assert_eq!(log.retained_runs(), 200);
        let dropped = log.truncate_below(150);
        assert_eq!(dropped, 150);
        assert_eq!(log.retained_runs(), 50);
        // Internal compaction must not disturb reads.
        assert_eq!(log.get(150), RumorId(300));
        assert_eq!(log.get(199), RumorId(398));
        assert_eq!(AcquisitionLog::default().len(), 0);
    }
}
